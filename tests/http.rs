//! End-to-end suite for the `scales-http` front end: real TCP loopback
//! connections against a served deployed engine.
//!
//! The headline contract (ISSUE 7 acceptance): a PPM posted over a real
//! socket comes back as `200` with an encoded upscaled image
//! **byte-identical** to encoding `Session::infer` of the same decoded
//! tensor directly — the network edge adds transport, not numerics. On
//! top of that: `/metrics` scrapes parse and count completed requests,
//! keep-alive serves several requests per connection, `Expect:
//! 100-continue` gets its interim response, hostile requests get typed
//! 4xx/5xx statuses without ever killing a worker or hanging a
//! connection, and shutdown drains cleanly and hands back the final
//! runtime stats.

use scales::core::Method;
use scales::data::codec::{decode_image, encode_image};
use scales::data::{Image, WireFormat};
use scales::http::{HttpConfig, HttpServer};
use scales::models::{srresnet, SrConfig};
use scales::runtime::{Runtime, RuntimeConfig};
use scales::serve::{Engine, Precision, SrRequest};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Run `f` on a helper thread and fail the test if it has not finished
/// within `secs` — a hung connection anywhere must be a clean test
/// failure, not a stuck CI job.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog runner");
    let result = rx
        .recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {label} did not finish within {secs}s"));
    runner.join().expect("watchdog runner panicked");
    result
}

fn probe(h: usize, w: usize, seed: u64) -> Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

fn engine(seed: u64) -> Engine<'static> {
    let net =
        srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
            .unwrap();
    Engine::builder().model(net).precision(Precision::Deployed).build().unwrap()
}

fn server(seed: u64) -> HttpServer {
    let runtime = Runtime::spawn(
        engine(seed),
        RuntimeConfig { workers: 2, ..RuntimeConfig::default() },
    )
    .unwrap();
    HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default()).unwrap()
}

/// Read one full HTTP response (status, lowercased headers, body).
fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read response head");
        assert!(n > 0, "connection closed before the response head finished");
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head[..head.len() - 4]).expect("response head is UTF-8");
    let mut lines = text.split("\r\n");
    let status_line = lines.next().expect("status line");
    assert!(status_line.starts_with("HTTP/1.1 "), "bad status line: {status_line}");
    let status: u16 = status_line.split(' ').nth(1).expect("status code").parse().unwrap();
    let headers: Vec<(String, String)> = lines
        .map(|line| {
            let (name, value) = line.split_once(':').expect("header line");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    let length: usize = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map_or(0, |(_, value)| value.parse().unwrap());
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read response body");
    (status, headers, body)
}

/// One-shot request over a fresh connection.
fn send(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw).expect("write request");
    read_response(&mut stream)
}

fn post_image(path: &str, format: WireFormat, payload: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n",
        format.content_type(),
        payload.len()
    )
    .into_bytes();
    raw.extend_from_slice(payload);
    raw
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// The acceptance headline: wire round trip == direct `Session::infer`,
/// byte for byte, and `/metrics` records the request.
#[test]
fn upscale_over_tcp_matches_direct_session_byte_for_byte() {
    with_watchdog(120, "tcp-bit-identity", || {
        let server = server(11);
        let addr = server.addr();
        let posted = encode_image(&probe(14, 11, 3), WireFormat::Ppm).unwrap();

        let (status, headers, wire_body) =
            send(addr, &post_image("/v1/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&wire_body));
        assert_eq!(header(&headers, "content-type"), Some("image/x-portable-pixmap"));

        // The same computation without the network: decode what was
        // posted, infer on an identical serial engine, encode.
        let (decoded, format) = decode_image(&posted).unwrap();
        assert_eq!(format, WireFormat::Ppm);
        let serial = engine(11);
        let direct = serial.session().infer(SrRequest::single(decoded)).unwrap();
        let direct_body = encode_image(&direct.images()[0], WireFormat::Ppm).unwrap();
        assert_eq!(
            wire_body, direct_body,
            "wire response must be byte-identical to the direct inference encoding"
        );

        // The scrape parses and shows the completed request.
        let (status, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).expect("metrics are UTF-8");
        let mut completed = None;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            let value: f64 = value.parse().unwrap_or_else(|_| {
                panic!("metric value must parse as a number: {line:?}")
            });
            if name == "scales_runtime_requests_completed_total" {
                completed = Some(value);
            }
        }
        assert!(
            completed.expect("scrape includes the completed counter") >= 1.0,
            "at least the upscale request must be counted"
        );
        let stats = server.shutdown();
        assert_eq!(stats.failed, 0);
        assert!(stats.completed >= 1);
    });
}

#[test]
fn png_round_trip_over_the_wire() {
    with_watchdog(120, "png-wire", || {
        let server = server(12);
        let posted = encode_image(&probe(10, 13, 5), WireFormat::Png).unwrap();
        let (status, headers, wire_body) =
            send(server.addr(), &post_image("/v1/upscale", WireFormat::Png, &posted));
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&wire_body));
        assert_eq!(header(&headers, "content-type"), Some("image/png"));

        let (decoded, _) = decode_image(&posted).unwrap();
        let direct = engine(12).session().infer(SrRequest::single(decoded)).unwrap();
        assert_eq!(wire_body, encode_image(&direct.images()[0], WireFormat::Png).unwrap());
        let _ = server.shutdown();
    });
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    with_watchdog(120, "keep-alive", || {
        let server = server(13);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, headers, body) = read_response(&mut stream);
        assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
        assert_eq!(header(&headers, "connection"), Some("keep-alive"));

        // Second request — an actual inference — on the same socket.
        let posted = encode_image(&probe(9, 9, 1), WireFormat::Ppm).unwrap();
        stream.write_all(&post_image("/v1/upscale", WireFormat::Ppm, &posted)).unwrap();
        let (status, _, _) = read_response(&mut stream);
        assert_eq!(status, 200);

        // And a third, asking the server to close.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "connection"), Some("close"));
        let _ = server.shutdown();
    });
}

#[test]
fn expect_continue_gets_the_interim_response() {
    with_watchdog(120, "expect-continue", || {
        let server = server(14);
        let payload = encode_image(&probe(8, 8, 2), WireFormat::Ppm).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream
            .write_all(
                format!(
                    "POST /v1/upscale HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
                    payload.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, _, body) = read_response(&mut stream);
        assert_eq!(status, 100, "interim response first");
        assert!(body.is_empty());
        stream.write_all(&payload).unwrap();
        let (status, _, _) = read_response(&mut stream);
        assert_eq!(status, 200);
        let _ = server.shutdown();
    });
}

/// Hostile traffic: every malformed request maps to its typed status and
/// the server keeps serving afterwards — no worker panic, no hang.
#[test]
fn hostile_requests_get_typed_statuses_and_the_server_survives() {
    with_watchdog(240, "hostile", || {
        let server = server(15);
        let addr = server.addr();
        let good_ppm = encode_image(&probe(8, 8, 4), WireFormat::Ppm).unwrap();
        let good_png = encode_image(&probe(8, 8, 4), WireFormat::Png).unwrap();

        // (label, raw request, expected status)
        let mut cases: Vec<(&str, Vec<u8>, u16)> = vec![
            ("garbage body", post_image("/v1/upscale", WireFormat::Ppm, b"not an image"), 415),
            (
                "truncated ppm",
                post_image("/v1/upscale", WireFormat::Ppm, &good_ppm[..good_ppm.len() - 3]),
                400,
            ),
            (
                "absurd ppm dimensions",
                post_image("/v1/upscale", WireFormat::Ppm, b"P6\n999999 999999\n255\n\0"),
                400,
            ),
            ("no content-length", b"POST /v1/upscale HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(), 411),
            (
                "chunked framing",
                b"POST /v1/upscale HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"
                    .to_vec(),
                501,
            ),
            (
                "oversized declared body",
                b"POST /v1/upscale HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999999\r\n\r\n"
                    .to_vec(),
                413,
            ),
            ("bad request line", b"WHAT\r\n\r\n".to_vec(), 400),
            ("http/2 preface", b"GET /healthz HTTP/2\r\n\r\n".to_vec(), 505),
            ("wrong method", b"GET /v1/upscale HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(), 405),
            ("unknown route", b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(), 404),
        ];
        // PNG with one IDAT payload byte flipped: the chunk CRC catches it.
        let mut corrupt = good_png.clone();
        let idat = corrupt.windows(4).position(|w| w == b"IDAT").expect("IDAT chunk") + 6;
        corrupt[idat] ^= 0xff;
        cases.push(("png crc mismatch", post_image("/v1/upscale", WireFormat::Png, &corrupt), 400));

        for (label, raw, expected) in cases {
            let (status, _, body) = send(addr, &raw);
            assert_eq!(
                status,
                expected,
                "{label}: body {}",
                String::from_utf8_lossy(&body)
            );
            assert!(!body.is_empty(), "{label}: error responses carry the typed Display text");
        }

        // Wrong-method answers advertise what is allowed.
        let (_, headers, _) = send(addr, b"DELETE /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(header(&headers, "allow"), Some("GET, HEAD"));

        // After all of that, the server still upscales.
        let (status, _, _) = send(addr, &post_image("/v1/upscale", WireFormat::Ppm, &good_ppm));
        assert_eq!(status, 200, "server must survive hostile traffic");
        let stats = server.shutdown();
        assert_eq!(stats.failed, 0, "hostile wire input must never reach a worker as a failure");
    });
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    with_watchdog(120, "shutdown", || {
        let server = server(16);
        let addr = server.addr();
        let posted = encode_image(&probe(8, 8, 6), WireFormat::Ppm).unwrap();
        for _ in 0..3 {
            let (status, _, _) = send(addr, &post_image("/v1/upscale", WireFormat::Ppm, &posted));
            assert_eq!(status, 200);
        }
        let stats = server.shutdown();
        assert!(stats.completed >= 3);
        assert_eq!(stats.failed, 0);
        // The listener is gone: a fresh connection cannot complete a
        // request (connect may succeed briefly on some stacks, but no
        // response ever comes).
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        if let Ok(mut stream) = refused {
            stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 1];
            assert!(
                !matches!(stream.read(&mut buf), Ok(n) if n > 0),
                "a shut-down server must not answer"
            );
        }
    });
}

/// The SLO surface over the wire: a tenant tag rides in on
/// `X-Scales-Tenant` and comes back out as per-tenant Prometheus series,
/// an invalid tenant is a `400` before any decode work, and an
/// already-expired `X-Scales-Deadline-Ms` is a `504 Gateway Timeout`
/// (no `Retry-After` — the peer needs a bigger budget, not a backoff).
#[test]
fn slo_headers_drive_tenants_deadlines_and_typed_statuses() {
    with_watchdog(120, "slo-surface", || {
        let server = server(19);
        let addr = server.addr();
        let posted = encode_image(&probe(9, 8, 7), WireFormat::Ppm).unwrap();
        let tagged_post = |extra: &str| {
            let mut raw = format!(
                "POST /v1/upscale HTTP/1.1\r\nHost: t\r\nContent-Type: {}\r\n{extra}Content-Length: {}\r\n\r\n",
                WireFormat::Ppm.content_type(),
                posted.len()
            )
            .into_bytes();
            raw.extend_from_slice(&posted);
            raw
        };

        // A tagged upscale serves normally.
        let (status, _, body) = send(addr, &tagged_post("X-Scales-Tenant: acme\r\n"));
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));

        // An invalid tenant name is refused before any decoding.
        let (status, _, body) = send(addr, &tagged_post("X-Scales-Tenant: not ok\r\n"));
        assert_eq!(status, 400);
        assert!(
            String::from_utf8_lossy(&body).contains("tenant"),
            "the 400 names the offending header: {}",
            String::from_utf8_lossy(&body)
        );

        // A deadline that is already due is a gateway timeout, served
        // without inviting a retry.
        let (status, headers, body) =
            send(addr, &tagged_post("X-Scales-Deadline-Ms: 0\r\n"));
        assert_eq!(status, 504, "body: {}", String::from_utf8_lossy(&body));
        assert_eq!(
            header(&headers, "retry-after"),
            None,
            "a missed deadline is the caller's budget, not server overload"
        );
        assert!(
            String::from_utf8_lossy(&body).contains("deadline"),
            "the 504 explains the expiry: {}",
            String::from_utf8_lossy(&body)
        );

        // The scrape carries the tenant lane and the expired refusal.
        let (status, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).unwrap();
        for needle in [
            "scales_runtime_tenant_requests_completed_total{tenant=\"acme\"} 1",
            "scales_runtime_tenant_queue_depth{tenant=\"acme\"} 0",
            "scales_runtime_tenant_weight{tenant=\"acme\"} 1",
            "scales_runtime_requests_expired_total 1",
        ] {
            assert!(text.contains(needle), "metrics must contain {needle}:\n{text}");
        }

        let stats = server.shutdown();
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
    });
}

/// The tracing contract end to end (ISSUE 10 acceptance): a traced POST
/// echoes its `X-Scales-Request-Id`, its trace lands in the flight
/// recorder with all eight stage spans telescoping exactly to the
/// total, and `/metrics` gains the per-stage histograms — while an
/// invalid client id is replaced, never refused.
#[test]
fn traced_requests_echo_ids_and_land_in_the_flight_recorder() {
    use scales::telemetry::{Stage, STAGES};

    with_watchdog(120, "trace-e2e", || {
        let server = server(21);
        let addr = server.addr();
        let posted = encode_image(&probe(12, 10, 9), WireFormat::Ppm).unwrap();
        let tagged = |id: &str| {
            let mut raw = format!(
                "POST /v1/upscale HTTP/1.1\r\nHost: t\r\nX-Scales-Request-Id: {id}\r\nContent-Length: {}\r\n\r\n",
                posted.len()
            )
            .into_bytes();
            raw.extend_from_slice(&posted);
            raw
        };

        // A valid client id is echoed verbatim.
        let (status, headers, body) = send(addr, &tagged("e2e-trace-1"));
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
        assert_eq!(header(&headers, "x-scales-request-id"), Some("e2e-trace-1"));

        // An invalid id is replaced with a generated one — the request
        // still serves and every response still carries *an* id.
        let (status, headers, _) = send(addr, &tagged("not%20an%20id"));
        assert_eq!(status, 200);
        let minted = header(&headers, "x-scales-request-id").expect("every response carries an id");
        assert_ne!(minted, "not%20an%20id");

        // Even a malformed head gets an id on its 400.
        let (status, headers, _) = send(addr, b"WHAT\r\n\r\n");
        assert_eq!(status, 400);
        assert!(header(&headers, "x-scales-request-id").is_some());

        // The trace is recorded after the response is written; poll the
        // typed API briefly rather than racing it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let trace = loop {
            if let Some(t) =
                server.traces().into_iter().find(|t| t.id.as_str() == "e2e-trace-1")
            {
                break t;
            }
            assert!(std::time::Instant::now() < deadline, "trace must appear in the recorder");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(trace.status, 200);
        assert!(trace.total_ns > 0);
        assert_eq!(
            trace.stage_ns.iter().sum::<u64>(),
            trace.total_ns,
            "telescoping spans must sum exactly to the total: {:?}",
            trace.stage_ns
        );
        for stage in [Stage::Parse, Stage::Decode, Stage::Infer, Stage::Encode, Stage::Write] {
            assert!(
                trace.stage(stage) > 0,
                "stage {} must have measurable time: {:?}",
                STAGES[stage as usize],
                trace.stage_ns
            );
        }

        // The same trace is retrievable over the wire, with every stage
        // key present in the JSON document.
        let (status, headers, body) =
            send(addr, b"GET /v1/debug/traces HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "content-type"), Some("application/json"));
        let doc = String::from_utf8(body).unwrap();
        assert!(doc.contains("\"id\":\"e2e-trace-1\""), "trace must be in the document: {doc}");
        for name in STAGES {
            assert!(doc.contains(&format!("\"{name}\":")), "stage key {name} missing: {doc}");
        }

        // The scrape now carries the per-stage histograms on both sides
        // of the queue.
        let (_, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        let text = String::from_utf8(metrics).unwrap();
        for needle in [
            "scales_http_stage_seconds_bucket{stage=\"decode\",le=",
            "scales_http_stage_seconds_bucket{stage=\"encode\",le=",
            "scales_http_stage_seconds_bucket{stage=\"write\",le=",
            "scales_runtime_stage_seconds_bucket{stage=\"queue_wait\",le=",
            "scales_runtime_stage_seconds_bucket{stage=\"infer\",le=",
            "scales_http_refused_total 0",
        ] {
            assert!(text.contains(needle), "metrics must contain {needle}");
        }

        let stats = server.shutdown();
        assert_eq!(stats.failed, 0);
    });
}

/// The flight recorder's rings over the wire: a 2× burst wraps the
/// recent ring at exactly its capacity, and the slow ring (threshold
/// forced to 1 ns so everything qualifies) retains its own bounded set.
#[test]
fn flight_recorder_rings_wrap_over_the_wire() {
    with_watchdog(120, "ring-wrap", || {
        let runtime = Runtime::spawn(
            engine(22),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let server = HttpServer::bind(
            "127.0.0.1:0",
            runtime,
            HttpConfig {
                trace_capacity: 4,
                slow_threshold: Duration::from_nanos(1),
                slow_trace_capacity: 2,
                ..HttpConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        for _ in 0..8 {
            let (status, _, _) = send(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            assert_eq!(status, 200);
        }
        // Recording happens just after the response write; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.traces().len() < 4 || server.slow_traces().len() < 2 {
            assert!(std::time::Instant::now() < deadline, "rings must fill");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.traces().len(), 4, "the recent ring holds exactly its capacity");
        assert_eq!(server.slow_traces().len(), 2, "the slow ring is bounded separately");

        // The wire view agrees.
        let (status, _, body) =
            send(addr, b"GET /v1/debug/traces?slow=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            String::from_utf8(body).unwrap().starts_with("{\"count\":2,"),
            "the slow document reports its bounded count"
        );
        let _ = server.shutdown();
    });
}

/// Hostile sweep over the debug endpoints: bad queries are 400s, wrong
/// methods are 405s advertising `Allow`, HEAD answers headers-only, an
/// unknown fleet model is a 404, and unknown debug paths stay 404.
#[test]
fn debug_endpoints_survive_hostile_queries_and_methods() {
    use scales::models::SrNetwork;
    use scales::router::{ModelRouter, RouterConfig};

    with_watchdog(240, "debug-hostile", || {
        // Single-runtime server first.
        let server = server(23);
        let addr = server.addr();
        let cases: [(&str, &[u8], u16); 5] = [
            (
                "bad traces query",
                b"GET /v1/debug/traces?bogus=1 HTTP/1.1\r\nHost: t\r\n\r\n",
                400,
            ),
            (
                "bad profile query",
                b"GET /v1/debug/profile?x HTTP/1.1\r\nHost: t\r\n\r\n",
                400,
            ),
            (
                "model query without a fleet",
                b"GET /v1/debug/profile?model=alpha HTTP/1.1\r\nHost: t\r\n\r\n",
                400,
            ),
            ("unknown debug path", b"GET /v1/debug/nope HTTP/1.1\r\nHost: t\r\n\r\n", 404),
            (
                "wrong method",
                b"POST /v1/debug/traces HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
                405,
            ),
        ];
        for (label, raw, expected) in cases {
            let (status, headers, body) = send(addr, raw);
            assert_eq!(status, expected, "{label}: {}", String::from_utf8_lossy(&body));
            assert!(
                header(&headers, "x-scales-request-id").is_some(),
                "{label}: refusals carry a trace id too"
            );
            if expected == 405 {
                assert_eq!(header(&headers, "allow"), Some("GET, HEAD"), "{label}");
            }
        }

        // HEAD answers the head only: full Content-Length, no body.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream
            .write_all(b"HEAD /v1/debug/traces HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            let n = stream.read(&mut byte).expect("read HEAD response head");
            assert!(n > 0, "connection closed before the head finished");
            raw.push(byte[0]);
        }
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "HEAD must succeed: {text}");
        assert!(!text.lines().any(|l| l.starts_with("Content-Length: 0")), "{text}");
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "HEAD must not send a body");

        // The server survives the sweep.
        let (status, _, _) = send(addr, b"GET /v1/debug/traces HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let _ = server.shutdown();

        // Fleet mode: ?model routes, and an unknown name is a 404.
        let router = ModelRouter::new(RouterConfig {
            runtime: RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
            ..RouterConfig::default()
        })
        .unwrap();
        router.register_model("alpha", fleet_net(24).lower().unwrap()).unwrap();
        let fleet =
            HttpServer::bind_router("127.0.0.1:0", router, HttpConfig::default()).unwrap();
        let (status, _, body) =
            send(fleet.addr(), b"GET /v1/debug/profile?model=alpha HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let doc = String::from_utf8(body).unwrap();
        assert!(doc.contains("\"model\":\"alpha\""), "{doc}");
        let (status, _, _) =
            send(fleet.addr(), b"GET /v1/debug/profile?model=nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404, "unknown model on the profile endpoint");
        let _ = fleet.shutdown();
    });
}

/// The opt-in profiler over the wire: with `profile_ops` on, the debug
/// endpoint attributes forward wall time to named op kinds and the
/// scrape carries the `scales_plan_op_*` series.
#[test]
fn opt_in_profiler_reports_per_op_time_over_the_wire() {
    with_watchdog(120, "profiler-e2e", || {
        let runtime = Runtime::spawn(
            engine(25),
            RuntimeConfig { workers: 1, profile_ops: true, ..RuntimeConfig::default() },
        )
        .unwrap();
        let server = HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default()).unwrap();
        let addr = server.addr();
        let posted = encode_image(&probe(10, 10, 2), WireFormat::Ppm).unwrap();
        let (status, _, _) = send(addr, &post_image("/v1/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 200);

        let (status, _, body) =
            send(addr, b"GET /v1/debug/profile HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let doc = String::from_utf8(body).unwrap();
        assert!(doc.contains("\"model\":null"), "single-runtime profile has no model: {doc}");
        for needle in ["\"op\":\"body_conv\"", "\"op\":\"bicubic_up\"", "\"total_ns\":"] {
            assert!(doc.contains(needle), "profile must contain {needle}: {doc}");
        }
        assert!(!doc.contains("\"total_ns\":0,"), "profiled ops must carry time: {doc}");

        let (_, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        let text = String::from_utf8(metrics).unwrap();
        for needle in ["scales_plan_op_calls_total{op=\"body_conv\"}", "scales_plan_op_seconds_total{op="] {
            assert!(text.contains(needle), "metrics must contain {needle}");
        }
        let _ = server.shutdown();
    });
}

/// Build a deployable network whose output is bitwise distinguishable
/// per seed: freshly built nets all answer exactly the bicubic baseline
/// (the tail conv is zero-initialised), so every parameter gets a tiny
/// deterministic seed-dependent nudge — a stand-in for training.
fn fleet_net(seed: u64) -> impl scales::models::SrNetwork {
    use scales::nn::Module;
    let net =
        srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
            .unwrap();
    #[allow(clippy::cast_precision_loss)]
    let nudge = (seed as f32) * 1e-5;
    for p in net.params() {
        p.update_value(|t| t.map_inplace(|v| v + nudge));
    }
    net
}

/// The fleet surface end to end: list as JSON, route by name
/// byte-identically to a direct session over the same artifact, typed
/// 404/405/409 refusals, a zero-downtime reload over the wire, and
/// per-model Prometheus series.
#[test]
fn fleet_routes_lists_reloads_and_reports_per_model_metrics() {
    use scales::models::SrNetwork;
    use scales::router::{ModelRouter, RouterConfig};

    with_watchdog(240, "fleet", || {
        let dir = std::env::temp_dir().join(format!("scales-http-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("alpha.dep.sca");
        scales::io::save_artifact(&artifact, &fleet_net(71).lower().unwrap()).unwrap();

        let router = ModelRouter::new(RouterConfig {
            memory_budget: None,
            runtime: RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
            ..RouterConfig::default()
        })
        .unwrap();
        router.register_path("alpha", &artifact).unwrap();
        router.register_model("beta", fleet_net(72).lower().unwrap()).unwrap();
        let server = HttpServer::bind_router("127.0.0.1:0", router, HttpConfig::default()).unwrap();
        let addr = server.addr();

        // The fleet document is JSON with both models serving.
        let (status, headers, body) = send(addr, b"GET /v1/models HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "content-type"), Some("application/json"));
        let list = String::from_utf8(body).unwrap();
        for needle in [
            "\"name\":\"alpha\"",
            "\"name\":\"beta\"",
            "\"arch\":\"SRResNet\"",
            "\"state\":\"serving\"",
            "\"reloadable\":true",
            "\"reloadable\":false",
            "\"version\":1",
        ] {
            assert!(list.contains(needle), "fleet document must contain {needle}: {list}");
        }

        // Routing by name over the wire is byte-identical to a direct
        // serial engine over the same artifact.
        let posted = encode_image(&probe(10, 9, 8), WireFormat::Ppm).unwrap();
        let (decoded, _) = decode_image(&posted).unwrap();
        let direct = |path: &std::path::Path| {
            let engine = Engine::builder().model_path(path).build().unwrap();
            let out = engine.session().infer(SrRequest::single(decoded.clone())).unwrap();
            encode_image(&out.images()[0], WireFormat::Ppm).unwrap()
        };
        let want_v1 = direct(&artifact);
        let (status, _, wire) =
            send(addr, &post_image("/v1/models/alpha/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&wire));
        assert_eq!(wire, want_v1, "routed response must match the direct engine byte-for-byte");

        let (status, _, beta_wire) =
            send(addr, &post_image("/v1/models/beta/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 200);
        assert_ne!(beta_wire, want_v1, "the two models must answer differently");

        // Typed refusals on the fleet surface.
        let (status, _, body) =
            send(addr, &post_image("/v1/models/nope/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 404, "unknown model: {}", String::from_utf8_lossy(&body));
        let (status, _, body) = send(addr, &post_image("/v1/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 404, "single-runtime route in fleet mode: {}",
            String::from_utf8_lossy(&body));
        let (status, headers, _) =
            send(addr, b"GET /v1/models/alpha/upscale HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        assert_eq!(header(&headers, "allow"), Some("POST"));
        let (status, _, body) =
            send(addr, b"POST /v1/models/beta/reload HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(status, 409, "pinned model reload: {}", String::from_utf8_lossy(&body));

        // Hot-swap over the wire: replace the artifact, reload, and the
        // route serves the new version.
        scales::io::save_artifact(&artifact, &fleet_net(73).lower().unwrap()).unwrap();
        let want_v2 = direct(&artifact);
        assert_ne!(want_v1, want_v2, "the swapped artifact must be distinguishable");
        let (status, _, body) =
            send(addr, b"POST /v1/models/alpha/reload HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
        let reloaded = String::from_utf8(body).unwrap();
        assert_eq!(status, 200, "reload: {reloaded}");
        assert!(reloaded.contains("\"version\":2"), "reload reports the new version: {reloaded}");
        let (status, _, wire) =
            send(addr, &post_image("/v1/models/alpha/upscale", WireFormat::Ppm, &posted));
        assert_eq!(status, 200);
        assert_eq!(wire, want_v2, "post-reload responses must be the new version");

        // The scrape carries per-model series.
        let (status, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).unwrap();
        for needle in [
            "scales_model_requests_completed_total{model=\"alpha\"}",
            "scales_model_requests_completed_total{model=\"beta\"}",
            "scales_model_memory_bytes{model=\"alpha\"}",
            "scales_model_version{model=\"alpha\"} 2",
            "scales_model_swaps_total{model=\"alpha\"} 1",
            "scales_http_requests_total",
        ] {
            assert!(text.contains(needle), "metrics must contain {needle}");
        }

        let stats = server.shutdown();
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.completed, 3, "both alpha versions and beta served one upscale each");
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

/// Regression (ISSUE 8 bugfix): an unroutable request that declares a
/// body must get its final status *immediately* — no `100 Continue`
/// inviting a doomed upload — and the connection closes so the unread
/// body cannot desynchronize keep-alive framing.
#[test]
fn unroutable_requests_with_bodies_get_the_final_status_immediately() {
    with_watchdog(120, "no-continue-on-unroutable", || {
        let server = server(17);
        let addr = server.addr();

        // (label, request head declaring a body that is never sent, expected status)
        let cases: [(&str, &str, u16); 3] = [
            (
                "unknown route",
                "POST /nope HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: 64\r\n\r\n",
                404,
            ),
            (
                "wrong method on upscale",
                "PUT /v1/upscale HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\nContent-Length: 64\r\n\r\n",
                405,
            ),
            (
                "wrong method on metrics",
                "POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n",
                405,
            ),
        ];
        for (label, head, expected) in cases {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            stream.write_all(head.as_bytes()).unwrap();
            // The *first* thing on the wire is the final status — not 100.
            let (status, headers, _) = read_response(&mut stream);
            assert_eq!(status, expected, "{label}: final status, never an interim 100");
            assert_eq!(
                header(&headers, "connection"),
                Some("close"),
                "{label}: the unread body forces the connection closed"
            );
            // And the server really does close rather than waiting for
            // the declared body.
            let mut probe_buf = [0u8; 1];
            assert_eq!(
                stream.read(&mut probe_buf).unwrap_or(0),
                0,
                "{label}: connection must close without the body"
            );
        }

        // The server is unharmed.
        let (status, _, _) = send(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let _ = server.shutdown();
    });
}

/// Regression (ISSUE 8 bugfix): refusing connections off a full backlog
/// happens on a detached thread, so a refused peer that never reads its
/// `503` cannot stall the accept loop — refusals keep flowing and the
/// occupied worker keeps serving.
#[test]
fn full_backlog_refusals_do_not_block_the_accept_loop() {
    with_watchdog(120, "backlog-refusal", || {
        let runtime = Runtime::spawn(
            engine(18),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let server = HttpServer::bind(
            "127.0.0.1:0",
            runtime,
            HttpConfig { workers: 1, max_pending: 1, ..HttpConfig::default() },
        )
        .unwrap();
        let addr = server.addr();

        // Occupy the single worker and fill the one-slot backlog with
        // idle connections that send nothing.
        let mut occupant = TcpStream::connect(addr).unwrap();
        occupant.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // A slow reader: refused, but never reads its 503. With the
        // refusal written synchronously on the accept thread, this peer
        // could wedge `accept()` for everyone; it must not.
        let stalled = TcpStream::connect(addr).unwrap();

        // Every further connection is promptly refused with a 503 — one
        // after another, which is exactly what a blocked accept loop
        // could not deliver.
        for i in 0..3 {
            let mut refused = TcpStream::connect(addr).unwrap();
            refused.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let (status, headers, body) = read_response(&mut refused);
            assert_eq!(status, 503, "refusal {i}: {}", String::from_utf8_lossy(&body));
            assert_eq!(
                header(&headers, "retry-after"),
                Some("1"),
                "refusal {i}: overload refusals must tell the peer when to come back"
            );
            assert!(
                header(&headers, "x-scales-request-id").is_some(),
                "refusal {i}: even edge refusals carry a trace id"
            );
        }

        // The occupied worker was never disturbed: the first connection
        // still gets served, and closing it lets the queued one through.
        occupant.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut occupant);
        assert_eq!(status, 200, "the occupant connection is still live");
        drop(occupant);
        queued.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut queued);
        assert_eq!(status, 200, "the queued connection gets a worker after the occupant leaves");

        // The refusals are no longer invisible: the scrape counts them.
        drop(queued);
        let (status, _, metrics) = send(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).unwrap();
        let refused_line = text
            .lines()
            .find(|l| l.starts_with("scales_http_refused_total"))
            .expect("the scrape exposes the refused counter");
        let count: u64 = refused_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= 3, "all three refusals must be counted: {refused_line}");

        drop(stalled);
        let stats = server.shutdown();
        assert_eq!(stats.failed, 0);
    });
}
