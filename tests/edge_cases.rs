//! Edge-case and failure-injection tests across the workspace: degenerate
//! geometries, saturated binarizers, NaN containment, and protocol
//! boundaries.

use scales::autograd::Var;
use scales::core::{DeployedScalesConv2d, Method, ScalesConv2d, ScalesComponents};
use scales::data::{Benchmark, Image, TrainSet};
use scales::metrics::{psnr_y, ssim_y};
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::nn::init::rng;
use scales::nn::Module;
use scales::tensor::Tensor;

#[test]
fn one_pixel_lr_input_superresolves() {
    // Degenerate geometry: 1×1 LR input through a full model.
    let net = srresnet(SrConfig { channels: 4, blocks: 1, scale: 2, method: Method::scales(), seed: 1 }).unwrap();
    let lr = Image::from_tensor(Tensor::full(&[3, 1, 1], 0.5)).unwrap();
    let sr = net.super_resolve(&lr).unwrap();
    assert_eq!((sr.height(), sr.width()), (2, 2));
    assert!(sr.tensor().data().iter().all(|v| v.is_finite()));
}

#[test]
fn all_positive_activation_saturates_plain_sign_but_not_lsf() {
    // The failure mode motivating the β threshold: a ReLU-like all-positive
    // activation collapses under sign() to a constant map.
    let x = Var::new(Tensor::from_vec(vec![0.2, 0.5, 0.9, 1.4], &[1, 1, 2, 2]).unwrap());
    let plain = x.sign_ste().value();
    assert!(plain.data().iter().all(|&v| v == 1.0), "plain sign saturates");
    let lsf = scales::core::LsfBinarizer::new(1);
    lsf.beta().set_value(Tensor::from_vec(vec![0.7], &[1, 1, 1, 1]).unwrap());
    let adaptive = lsf.forward(&x).unwrap().value();
    let positives = adaptive.data().iter().filter(|&&v| v > 0.0).count();
    assert!(positives > 0 && positives < 4, "threshold preserves structure");
}

#[test]
fn constant_image_yields_finite_metrics() {
    let a = Image::from_tensor(Tensor::full(&[3, 16, 16], 0.4)).unwrap();
    let b = Image::from_tensor(Tensor::full(&[3, 16, 16], 0.6)).unwrap();
    let p = psnr_y(&a, &b, 2).unwrap();
    assert!(p.is_finite() && p > 0.0);
    // SSIM of two constant (zero-variance) images is driven by the
    // luminance term only and stays in (0, 1].
    let s = ssim_y(&a, &b, 2).unwrap();
    assert!(s > 0.0 && s <= 1.0, "ssim {s}");
}

#[test]
fn nan_input_does_not_poison_weights() {
    // A NaN in a forward input must not corrupt parameters unless backward
    // is run — forward is pure.
    let mut r = rng(4);
    let layer = ScalesConv2d::new(2, 2, 3, &mut r);
    let before: Vec<f32> = layer.weight().value().data().to_vec();
    let mut bad = Tensor::ones(&[1, 2, 4, 4]);
    bad.data_mut()[3] = f32::NAN;
    let _ = layer.forward(&Var::new(bad));
    assert_eq!(layer.weight().value().data(), &before[..]);
}

#[test]
fn deployed_layer_handles_extreme_alpha() {
    // α clamped near zero must not produce NaNs in the deployed kernel.
    let mut r = rng(5);
    let layer = ScalesConv2d::with_components(4, 4, 3, ScalesComponents::lsf_only(), true, &mut r);
    layer.lsf().unwrap().alpha().set_value(Tensor::from_vec(vec![1e-9], &[1]).unwrap());
    let deployed = DeployedScalesConv2d::from_trained(&layer).unwrap();
    let y = deployed.forward(&Tensor::ones(&[1, 4, 4, 4])).unwrap();
    assert!(y.data().iter().all(|v| v.is_finite()));
}

#[test]
fn benchmark_sets_have_disjoint_content() {
    // Train/eval hygiene: the four benchmark sets must not share images
    // with each other (different seeds and configurations).
    let s5 = Benchmark::SynSet5.build(2, 32).unwrap();
    let s14 = Benchmark::SynSet14.build(2, 32).unwrap();
    for a in s5.pairs() {
        for b in s14.pairs() {
            assert_ne!(a.hr, b.hr);
        }
    }
}

#[test]
fn train_stream_does_not_replay_eval_images() {
    // The DIV2K stand-in must not leak evaluation images.
    let eval = Benchmark::SynUrban100.build(2, 32).unwrap();
    let mut train = TrainSet::new(0xD172, 32);
    for _ in 0..16 {
        let scene = train.next_scene();
        for p in eval.pairs() {
            assert_ne!(scene, p.hr);
        }
    }
}

#[test]
fn zero_iteration_training_is_identity() {
    let net = srresnet(SrConfig { channels: 4, blocks: 1, scale: 2, method: Method::E2fif, seed: 1 }).unwrap();
    let before: Vec<Vec<f32>> = net.params().iter().map(|p| p.value().data().to_vec()).collect();
    let stats = scales::train::train(
        &net,
        scales::train::TrainConfig { iters: 0, batch: 1, lr_patch: 8, lr: 1e-3, halve_every: 1, seed: 1 },
    )
    .unwrap();
    assert!(stats.history.is_empty());
    for (p, b) in net.params().iter().zip(before.iter()) {
        assert_eq!(p.value().data(), &b[..]);
    }
}

#[test]
fn images_saturate_gracefully_outside_unit_range() {
    // SR outputs can overshoot [0, 1]; clamping plus metrics must behave.
    let wild = Image::from_tensor(
        Tensor::from_vec(
            (0..3 * 16 * 16).map(|i| (i as f32 * 0.37).sin() * 3.0).collect(),
            &[3, 16, 16],
        )
        .unwrap(),
    )
    .unwrap();
    let clamped = wild.clamped();
    assert!(clamped.tensor().min() >= 0.0 && clamped.tensor().max() <= 1.0);
    let hr = Image::zeros(16, 16);
    assert!(psnr_y(&wild, &hr, 2).unwrap().is_finite());
}

#[test]
fn method_display_round_trips_table_rows() {
    // Report labels used across benches must stay stable (they key the
    // Table V shape assertions).
    assert_eq!(Method::scales().to_string(), "SCALES");
    assert_eq!(Method::E2fif.to_string(), "E2FIF");
    assert_eq!(Method::Scales(ScalesComponents::lsf_channel()).to_string(), "LSF+chl");
}
