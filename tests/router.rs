//! Integration suite for the `scales-router` model fleet: per-request
//! routing, zero-downtime hot-swap, and the memory budget.
//!
//! The headline contracts (ISSUE 8 acceptance):
//!
//! - routing by name is **bit-identical** to serving the same model
//!   through a direct serial [`Session`](scales::serve::Session) — the
//!   router adds dispatch, not numerics;
//! - a hot-swap under concurrent submitters drops **zero** requests:
//!   every submit returns a served response that bit-matches either the
//!   old or the new version, never garbage, never an error;
//! - the byte budget evicts the least-recently-used path-backed model,
//!   and a request to an evicted model transparently reloads it.

use scales::core::Method;
use scales::data::Image;
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::router::{ModelRouter, ModelState, RouterConfig, RouterError};
use scales::runtime::RuntimeConfig;
use scales::serve::{Engine, SrRequest};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run `f` on a helper thread and fail the test if it has not finished
/// within `secs` — a stuck drain or deadlocked sweep must be a clean
/// test failure, not a hung CI job.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog runner");
    let result = rx
        .recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {label} did not finish within {secs}s"));
    runner.join().expect("watchdog runner panicked");
    result
}

fn probe(h: usize, w: usize, seed: u64) -> Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

/// A small deployable network whose output is bitwise distinguishable
/// per seed. Freshly built nets all answer exactly the bicubic baseline
/// (the tail conv is zero-initialised), so every parameter gets a tiny
/// deterministic seed-dependent nudge — a stand-in for training that
/// keeps distinct seeds distinguishable on any probe.
fn net(seed: u64) -> impl SrNetwork {
    use scales::nn::Module;
    let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
        .unwrap();
    #[allow(clippy::cast_precision_loss)]
    let nudge = (seed as f32) * 1e-5;
    for p in net.params() {
        p.update_value(|t| t.map_inplace(|v| v + nudge));
    }
    net
}

/// Reference output: the same artifact served through a direct serial
/// engine — what every routed response must bit-match.
fn direct_from_path(path: &std::path::Path, input: &Image) -> Image {
    let engine = Engine::builder().model_path(path).build().unwrap();
    engine.session().infer(SrRequest::single(input.clone())).unwrap().into_images().remove(0)
}

fn assert_bit_identical(got: &Image, want: &Image, label: &str) {
    assert_eq!(got.tensor().shape(), want.tensor().shape(), "{label}: shape");
    for (i, (a, b)) in got.tensor().data().iter().zip(want.tensor().data().iter()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: value {i} differs bitwise: {a} vs {b}"
        );
    }
}

fn bit_matches(got: &Image, want: &Image) -> bool {
    got.tensor().shape() == want.tensor().shape()
        && got
            .tensor()
            .data()
            .iter()
            .zip(want.tensor().data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

/// Fresh per-test scratch directory (removed on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("scales-router-test-{label}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_runtime() -> RuntimeConfig {
    RuntimeConfig { workers: 1, queue_capacity: 16, max_batch: 4, ..RuntimeConfig::default() }
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// Routing adds dispatch, not numerics: a fleet of two models — one
/// path-backed, one in-memory — answers each name bit-identically to a
/// direct serial session over the same model, and never crosses wires.
#[test]
fn routing_by_name_is_bit_identical_to_direct_sessions() {
    with_watchdog(120, "route-bit-identity", || {
        let scratch = Scratch::new("route");
        let path_a = scratch.path("a.dep.sca");
        scales::io::save_artifact(&path_a, &net(21).lower().unwrap()).unwrap();

        let router = ModelRouter::new(RouterConfig {
            memory_budget: None,
            runtime: small_runtime(),
            ..RouterConfig::default()
        })
        .unwrap();
        router.register_path("model-a", &path_a).unwrap();
        router.register_model("model-b", net(22).lower().unwrap()).unwrap();

        let input = probe(9, 7, 5);
        let want_a = direct_from_path(&path_a, &input);
        let want_b = {
            // The same construction seed rebuilds the identical network.
            let engine = Engine::builder().model(net(22)).build().unwrap();
            engine.session().infer(SrRequest::single(input.clone())).unwrap().into_images().remove(0)
        };
        assert!(
            !bit_matches(&want_a, &want_b),
            "the two models must be distinguishable for this test to mean anything"
        );

        let got_a = router
            .submit_wait_timeout("model-a", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        let got_b = router
            .submit_wait_timeout("model-b", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        assert_bit_identical(&got_a.images()[0], &want_a, "model-a routed");
        assert_bit_identical(&got_b.images()[0], &want_b, "model-b routed");

        // The fleet report shows both models serving with sane identity.
        let list = router.list();
        assert_eq!(
            list.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            ["model-a", "model-b"],
            "list is sorted by name"
        );
        for m in &list {
            assert_eq!(m.state, ModelState::Serving);
            assert_eq!(m.version, 1);
            assert_eq!(m.scale, 2);
            assert!(m.weight_bytes > 0, "{}: weight bytes charged", m.name);
            assert!(m.resident_bytes >= m.weight_bytes, "{}: resident >= weights", m.name);
            assert_ne!(m.fingerprint, 0, "{}: fingerprint recorded", m.name);
        }
        assert!(list[0].reloadable, "path-backed model is reloadable");
        assert!(!list[1].reloadable, "in-memory model is pinned");

        let stats = router.shutdown();
        let merged = stats.merged_runtime();
        assert_eq!(merged.failed, 0);
        assert_eq!(merged.completed, 2);
    });
}

/// The zero-downtime headline: while submitter threads hammer one model,
/// the artifact file is replaced and hot-swapped. Every single submit —
/// before, during, and after the swap — must come back served and
/// bit-match exactly one of the two versions; after the swap settles,
/// responses must be the new version's.
#[test]
fn hot_swap_under_concurrent_load_drops_and_corrupts_nothing() {
    with_watchdog(240, "hot-swap", || {
        let scratch = Scratch::new("swap");
        let path = scratch.path("model.dep.sca");
        scales::io::save_artifact(&path, &net(31).lower().unwrap()).unwrap();

        let input = probe(8, 8, 9);
        let want_v1 = direct_from_path(&path, &input);
        let want_v2 = {
            let engine = Engine::builder().model(net(32)).build().unwrap();
            engine.session().infer(SrRequest::single(input.clone())).unwrap().into_images().remove(0)
        };
        assert!(!bit_matches(&want_v1, &want_v2), "versions must be distinguishable");

        let router = ModelRouter::new(RouterConfig {
            memory_budget: None,
            runtime: RuntimeConfig {
                workers: 2,
                queue_capacity: 16,
                max_batch: 4,
                ..RuntimeConfig::default()
            },
            ..RouterConfig::default()
        })
        .unwrap();
        let registered = router.register_path("sr", &path).unwrap();
        assert_eq!((registered.version, registered.swaps), (1, 0));

        let stop = Arc::new(AtomicBool::new(false));
        let submitters: Vec<_> = (0..2)
            .map(|t| {
                let router = router.clone();
                let stop = Arc::clone(&stop);
                let input = input.clone();
                let (want_v1, want_v2) = (want_v1.clone(), want_v2.clone());
                std::thread::Builder::new()
                    .name(format!("swap-submitter-{t}"))
                    .spawn(move || {
                        let mut served = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let response = router
                                .submit_wait_timeout("sr", SrRequest::single(input.clone()), TIMEOUT)
                                .expect("a hot-swap must never refuse a routed request")
                                .expect("a hot-swap must never fail a routed request");
                            let image = &response.images()[0];
                            assert!(
                                bit_matches(image, &want_v1) || bit_matches(image, &want_v2),
                                "response must bit-match exactly one served version"
                            );
                            served += 1;
                        }
                        served
                    })
                    .unwrap()
            })
            .collect();

        // Let traffic build, then swap the artifact under it.
        std::thread::sleep(Duration::from_millis(100));
        scales::io::save_artifact(&path, &net(32).lower().unwrap()).unwrap();
        let swapped = router.reload("sr").unwrap();
        assert_eq!((swapped.version, swapped.swaps), (2, 1));
        assert_eq!(swapped.state, ModelState::Serving);

        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let mut served = 0;
        for t in submitters {
            served += t.join().expect("submitter panicked");
        }
        assert!(served >= 2, "submitters must have gotten real traffic through");

        // The swap has settled: a fresh request is the new version, bitwise.
        let after = router
            .submit_wait_timeout("sr", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        assert_bit_identical(&after.images()[0], &want_v2, "post-swap response");

        // Nothing was dropped anywhere: every request either version
        // accepted was completed, across both the retired and live runtimes.
        let stats = router.shutdown();
        let merged = stats.merged_runtime();
        assert_eq!(merged.failed, 0, "zero failed requests through the swap");
        assert_eq!(merged.rejected, 0, "zero rejected requests through the swap");
        assert_eq!(
            merged.submitted, merged.completed,
            "every accepted request was served (zero drops)"
        );
        assert_eq!(
            merged.completed,
            served + 1,
            "the folded record covers every submitter request plus the post-swap probe"
        );
    });
}

/// The byte budget: loading a second model over budget drains the
/// least-recently-used path-backed one; a request routed to the evicted
/// model transparently reloads it (and evicts the other in turn), and
/// pinned in-memory models are never victims.
#[test]
fn memory_budget_evicts_lru_and_requests_reload_transparently() {
    with_watchdog(240, "lru-eviction", || {
        let scratch = Scratch::new("lru");
        let path_a = scratch.path("a.dep.sca");
        let path_b = scratch.path("b.dep.sca");
        scales::io::save_artifact(&path_a, &net(41).lower().unwrap()).unwrap();
        scales::io::save_artifact(&path_b, &net(42).lower().unwrap()).unwrap();
        let size_a = usize::try_from(std::fs::metadata(&path_a).unwrap().len()).unwrap();
        let size_b = usize::try_from(std::fs::metadata(&path_b).unwrap().len()).unwrap();

        // Room for either model alone, never for both.
        let router = ModelRouter::new(RouterConfig {
            memory_budget: Some(size_a + size_b - 1),
            runtime: small_runtime(),
            ..RouterConfig::default()
        })
        .unwrap();
        router.register_path("a", &path_a).unwrap();
        let b = router.register_path("b", &path_b).unwrap();
        assert_eq!(b.state, ModelState::Serving, "the just-loaded model always serves");

        let a = router.model("a").unwrap();
        assert_eq!(a.state, ModelState::Evicted, "the colder model was drained");
        assert_eq!(a.evictions, 1);
        assert_eq!(a.resident_bytes, 0, "an evicted model charges nothing");
        assert!(router.resident_bytes() < size_a + size_b, "fleet fits the budget");

        // Routing to the evicted model reloads it — the response is still
        // bit-identical to its artifact — and now `b` is the LRU victim.
        let input = probe(8, 8, 7);
        let want_a = direct_from_path(&path_a, &input);
        let got_a = router
            .submit_wait_timeout("a", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        assert_bit_identical(&got_a.images()[0], &want_a, "reloaded model-a");

        let a = router.model("a").unwrap();
        assert_eq!(a.state, ModelState::Serving);
        assert_eq!(a.version, 2, "the lazy reload is a new version");
        let b = router.model("b").unwrap();
        assert_eq!(b.state, ModelState::Evicted);
        assert_eq!(b.evictions, 1);

        // A pinned in-memory model is never a victim, even over budget.
        router.register_model("pinned", net(43).lower().unwrap()).unwrap();
        let pinned = router.model("pinned").unwrap();
        assert_eq!(pinned.state, ModelState::Serving);
        assert!(!pinned.reloadable);
        let got_pinned = router
            .submit_wait_timeout("pinned", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        assert_eq!(got_pinned.images()[0].height(), 16);
        assert_eq!(
            router.model("pinned").unwrap().state,
            ModelState::Serving,
            "pinned models survive every budget sweep"
        );

        let stats = router.shutdown();
        let merged = stats.merged_runtime();
        assert_eq!(merged.failed, 0);
        assert_eq!(merged.submitted, merged.completed);
    });
}

/// Typed refusals: unknown names, duplicate registrations, reloading a
/// pinned model, and routing after shutdown each get their own variant.
#[test]
fn typed_errors_for_unknown_duplicate_pinned_and_shutdown() {
    with_watchdog(120, "typed-errors", || {
        let router =
            ModelRouter::new(RouterConfig { memory_budget: None, runtime: small_runtime(), ..RouterConfig::default() })
                .unwrap();
        router.register_model("only", net(51).lower().unwrap()).unwrap();

        let unknown =
            router.submit_wait_timeout("nope", SrRequest::single(probe(8, 8, 1)), TIMEOUT);
        assert!(
            matches!(&unknown, Err(RouterError::UnknownModel { name }) if name == "nope"),
            "unknown model must be a typed refusal: {:?}",
            unknown.map(|r| r.map(|_| "served"))
        );

        let duplicate = router.register_model("only", net(52).lower().unwrap());
        assert!(
            matches!(&duplicate, Err(RouterError::DuplicateModel { name }) if name == "only"),
            "duplicate registration must be refused: {duplicate:?}"
        );

        let pinned = router.reload("only");
        assert!(
            matches!(&pinned, Err(RouterError::NotReloadable { name }) if name == "only"),
            "reloading an in-memory model must be refused: {pinned:?}"
        );

        let _ = router.shutdown();
        let closed = router.submit_wait_timeout("only", SrRequest::single(probe(8, 8, 1)), TIMEOUT);
        assert!(
            matches!(&closed, Err(RouterError::ShuttingDown)),
            "routing after shutdown must be refused: {:?}",
            closed.map(|r| r.map(|_| "served"))
        );
        // Shutdown is idempotent through any clone of the handle.
        let again = router.clone().shutdown();
        assert_eq!(again.models.len(), 1);
    });
}

/// A failed reload never disturbs the serving version: corrupt the
/// artifact file, reload → typed `Load` error, and the model keeps
/// answering bit-identically on the original weights.
#[test]
fn failed_reload_leaves_the_serving_version_untouched() {
    with_watchdog(120, "failed-reload", || {
        let scratch = Scratch::new("badswap");
        let path = scratch.path("model.dep.sca");
        scales::io::save_artifact(&path, &net(61).lower().unwrap()).unwrap();
        let input = probe(8, 8, 3);
        let want = direct_from_path(&path, &input);

        let router =
            ModelRouter::new(RouterConfig { memory_budget: None, runtime: small_runtime(), ..RouterConfig::default() })
                .unwrap();
        router.register_path("sr", &path).unwrap();

        std::fs::write(&path, b"definitely not an artifact").unwrap();
        let failed = router.reload("sr");
        assert!(
            matches!(&failed, Err(RouterError::Load { name, .. }) if name == "sr"),
            "a corrupt artifact must be a typed load error: {failed:?}"
        );

        let m = router.model("sr").unwrap();
        assert_eq!((m.state, m.version, m.swaps), (ModelState::Serving, 1, 0));
        let got = router
            .submit_wait_timeout("sr", SrRequest::single(input.clone()), TIMEOUT)
            .unwrap()
            .unwrap();
        assert_bit_identical(&got.images()[0], &want, "post-failed-reload response");
        let _ = router.shutdown();
    });
}
