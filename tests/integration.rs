//! Cross-crate integration tests: data pipeline → models → training →
//! metrics, plus the deployment path against the training path.

use scales::autograd::Var;
use scales::binary::{BinaryConv2d, BinaryLinear};
use scales::core::{Method, ScalesComponents};
use scales::data::Benchmark;
use scales::models::{edsr, srresnet, swinir, SrConfig, SrNetwork};
use scales::nn::Module;
use scales::tensor::Tensor;
use scales::train::{evaluate, evaluate_bicubic, train, TrainConfig};

fn quick_train_config(iters: usize) -> TrainConfig {
    TrainConfig { iters, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 3 }
}

#[test]
fn training_reduces_loss_and_stays_near_bicubic_start() {
    // The untrained model *is* the bicubic baseline (zero-init tail), so at
    // a quick-test budget we assert direction (loss falls) and sanity (eval
    // stays within a band of the strong start) — the beats-bicubic claim is
    // checked at full budget in `trained_model_beats_bicubic` below.
    let set = Benchmark::SynSet5.build(2, 32).unwrap();
    let config = SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 };
    let untrained = srresnet(config).unwrap();
    let before = evaluate(&untrained, &set).unwrap();
    let bicubic = evaluate_bicubic(&set).unwrap();
    assert!(
        (before.psnr - bicubic.psnr).abs() < 1e-6,
        "untrained model must equal the bicubic baseline: {:.2} vs {:.2}",
        before.psnr,
        bicubic.psnr
    );
    let net = srresnet(config).unwrap();
    let stats = train(&net, quick_train_config(60)).unwrap();
    assert!(stats.improved(), "training loss must fall: {stats:?}");
    let after = evaluate(&net, &set).unwrap();
    assert!(
        after.psnr > bicubic.psnr - 3.0,
        "quick training must not destroy the model: {:.2} vs bicubic {:.2}",
        after.psnr,
        bicubic.psnr
    );
}

/// Full-budget check of the paper's central claim at reproduction scale:
/// a trained binary SCALES network beats bicubic interpolation. Takes a
/// few minutes; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full training budget (minutes); run explicitly with --ignored"]
fn trained_model_beats_bicubic() {
    let set = Benchmark::SynB100.build(2, 32).unwrap();
    let net = srresnet(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
    train(
        &net,
        TrainConfig { iters: 800, batch: 8, lr_patch: 12, lr: 1e-3, halve_every: 300, seed: 3 },
    )
    .unwrap();
    let ours = evaluate(&net, &set).unwrap();
    let bicubic = evaluate_bicubic(&set).unwrap();
    assert!(
        ours.psnr > bicubic.psnr,
        "trained SCALES must beat bicubic: {:.2} vs {:.2}",
        ours.psnr,
        bicubic.psnr
    );
    assert!(ours.ssim > bicubic.ssim);
}

#[test]
fn deployment_binary_conv_matches_training_path_on_signs() {
    // The autograd binary path (sign act ⊛ binarized weight) and the packed
    // XNOR kernel must agree exactly when the activation scale is 1.
    let mut rng = scales::nn::init::rng(7);
    let weight = scales::nn::init::kaiming_normal(&[6, 4, 3, 3], 36, &mut rng);
    let input = scales::nn::init::kaiming_normal(&[1, 4, 8, 8], 1, &mut rng);

    // Training path.
    let xb = Var::new(input.clone()).sign_ste();
    let wb = Var::param(weight.clone()).binarize_weight_per_channel().unwrap();
    let reference = xb
        .conv2d(&wb, scales::tensor::ops::Conv2dSpec::same(3))
        .unwrap()
        .value();

    // Deployment path (packed, same per-channel scales by construction).
    let packed = BinaryConv2d::from_float_weight(&weight).unwrap();
    let fast = packed.forward(&input).unwrap();
    assert_eq!(fast.shape(), reference.shape());
    for (a, b) in fast.data().iter().zip(reference.data().iter()) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}

#[test]
fn deployment_binary_linear_matches_training_path() {
    let mut rng = scales::nn::init::rng(8);
    let weight = scales::nn::init::xavier_uniform(&[5, 12], 12, 5, &mut rng);
    let input = scales::nn::init::kaiming_normal(&[3, 12], 1, &mut rng);
    let xb = Var::new(input.clone()).sign_ste();
    let wb = Var::param(weight.clone()).binarize_weight_per_channel().unwrap();
    let reference = xb.matmul(&wb.permute(&[1, 0]).unwrap()).unwrap().value();
    let packed = BinaryLinear::from_float_weight(&weight).unwrap();
    let fast = packed.forward(&input).unwrap();
    for (a, b) in fast.data().iter().zip(reference.data().iter()) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn all_cnn_methods_train_one_step_without_nan() {
    for method in [Method::FullPrecision, Method::Bam, Method::Btm, Method::E2fif, Method::scales()] {
        let net = edsr(SrConfig { channels: 6, blocks: 1, scale: 2, method, seed: 9 }).unwrap();
        let stats = train(&net, quick_train_config(5)).unwrap();
        assert!(stats.history.iter().all(|l| l.is_finite()), "{method} produced NaN loss");
    }
}

#[test]
fn transformer_methods_train_one_step_without_nan() {
    for method in [Method::FullPrecision, Method::Bibert, Method::scales()] {
        let net = swinir(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 9 }).unwrap();
        let stats = train(&net, quick_train_config(4)).unwrap();
        assert!(stats.history.iter().all(|l| l.is_finite()), "{method} produced NaN loss");
    }
}

#[test]
fn ablation_components_order_cost_correctly() {
    // Table V structure: OPs(LSF) < OPs(LSF+chl) < OPs(LSF+spatial+chl).
    let mk = |c: ScalesComponents| {
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 4, method: Method::Scales(c), seed: 2 }).unwrap();
        net.cost(128, 128).effective_ops()
    };
    let lsf = mk(ScalesComponents::lsf_only());
    let chl = mk(ScalesComponents::lsf_channel());
    let spa = mk(ScalesComponents::lsf_spatial());
    let full = mk(ScalesComponents::full());
    assert!(lsf < chl && chl < full, "{lsf} {chl} {full}");
    assert!(lsf < spa && spa < full, "{lsf} {spa} {full}");
}

#[test]
fn scales_alpha_moves_during_training() {
    // The layer-wise scaling factor must actually learn (not stay at init).
    let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
    let alphas_before: Vec<f32> = net
        .params()
        .iter()
        .filter(|p| p.shape() == vec![1])
        .map(|p| p.value().data()[0])
        .collect();
    train(&net, quick_train_config(30)).unwrap();
    let alphas_after: Vec<f32> = net
        .params()
        .iter()
        .filter(|p| p.shape() == vec![1])
        .map(|p| p.value().data()[0])
        .collect();
    assert!(
        alphas_before.iter().zip(&alphas_after).any(|(a, b)| (a - b).abs() > 1e-4),
        "no layer scale moved: {alphas_before:?} -> {alphas_after:?}"
    );
    assert!(alphas_after.iter().all(|&a| a > 0.0), "alphas must stay positive");
}

#[test]
fn eval_protocol_consistency_psnr_vs_identity() {
    let set = Benchmark::SynSet14.build(2, 32).unwrap();
    // An oracle that returns the ground truth scores infinite PSNR, SSIM 1.
    for pair in set.pairs() {
        let p = scales::metrics::psnr_y(&pair.hr, &pair.hr, 2).unwrap();
        let s = scales::metrics::ssim_y(&pair.hr, &pair.hr, 2).unwrap();
        assert_eq!(p, f64::INFINITY);
        assert!((s - 1.0).abs() < 1e-9);
    }
}

#[test]
fn x4_pipeline_shapes_end_to_end() {
    let set = Benchmark::SynB100.build(4, 32).unwrap();
    let net = srresnet(SrConfig { channels: 6, blocks: 1, scale: 4, method: Method::E2fif, seed: 5 }).unwrap();
    let sr = net.super_resolve(&set.pairs()[0].lr).unwrap();
    assert_eq!((sr.height(), sr.width()), (32, 32));
    let tensor = Tensor::zeros(&[1, 3, 8, 8]);
    let y = net.forward(&Var::new(tensor)).unwrap();
    assert_eq!(y.shape(), vec![1, 3, 32, 32]);
}
