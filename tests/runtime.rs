//! Concurrency-correctness suite for the `scales-runtime` worker pool.
//!
//! The headline contract: responses served by the concurrent runtime —
//! coalesced across callers by the dynamic batcher, executed by whichever
//! worker got there first — are **bit-identical** (`f32::to_bits`) to a
//! serial `Session::infer` of the same request, across the CNN method
//! registry and all three compute backends. On top of that: per-caller response
//! ordering under many submitter threads, typed backpressure when the
//! bounded queue fills, independence from the process-global backend
//! selection, and deadlock-free graceful shutdown under load (every test
//! is bounded by a watchdog).

use scales::core::Method;
use scales::data::Image;
use scales::models::{srresnet, SrConfig};
use scales::nn::init::rng;
use scales::runtime::{Runtime, RuntimeConfig, ServeError, ShedPolicy, SubmitError, Ticket};
use scales::serve::{Engine, Precision, SrRequest};
use scales::tensor::backend::{self, Backend};
use std::time::Duration;

/// Run `f` on a helper thread and fail the test if it has not finished
/// within `secs` — a deadlock anywhere in submit/dispatch/shutdown must
/// show up as a clean test failure, not a hung CI job.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog runner");
    let result = rx
        .recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {label} did not finish within {secs}s"));
    runner.join().expect("watchdog runner panicked");
    result
}

fn probe(h: usize, w: usize, seed: u64) -> Image {
    scales::data::synth::scene(h, w, scales::data::synth::SceneConfig::default(), &mut rng(seed))
}

fn engine_for(method: Method, backend: Backend, seed: u64) -> Engine<'static> {
    let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed }).unwrap();
    Engine::builder()
        .model(net)
        .precision(Precision::Deployed)
        .backend(backend)
        .build()
        .unwrap()
}

fn assert_images_bit_identical(got: &[Image], want: &[Image], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: image count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.tensor().shape(), w.tensor().shape(), "{label}: image {i} shape");
        for (j, (a, b)) in g.tensor().data().iter().zip(w.tensor().data().iter()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label}: image {i}, value {j} differs bitwise: {a} vs {b}"
            );
        }
    }
}

/// Bit-identity of runtime serving vs serial `Session::infer`, for every
/// CNN registry method on all three backends, with mixed-size requests that the
/// batcher is free to coalesce.
#[test]
fn runtime_matches_serial_session_bitwise_across_the_method_registry() {
    with_watchdog(240, "registry-bit-identity", || {
        for method in Method::cnn_registry() {
            for be in [Backend::Scalar, Backend::Parallel, Backend::Simd] {
                let label = format!("{method}, {} backend", be.name());
                // Two engines built from identical networks: one serves
                // serially, one through the pool.
                let serial = engine_for(method, be, 1234);
                let concurrent = engine_for(method, be, 1234);
                let requests: Vec<SrRequest> = vec![
                    SrRequest::single(probe(8, 8, 41)),
                    SrRequest::batch(vec![probe(6, 10, 42), probe(8, 8, 43)]),
                    SrRequest::single(probe(10, 6, 44)),
                    SrRequest::batch(vec![probe(8, 8, 45), probe(8, 8, 46)]),
                ];
                let session = serial.session();
                let want: Vec<Vec<Image>> = requests
                    .iter()
                    .map(|r| session.infer(r.clone()).unwrap().into_images())
                    .collect();
                let runtime = Runtime::spawn(
                    concurrent,
                    RuntimeConfig {
                        workers: 2,
                        queue_capacity: 64,
                        max_batch: 4,
                        max_wait: Duration::from_millis(5),
                        ..RuntimeConfig::default()
                    },
                )
                .unwrap();
                let tickets: Vec<Ticket> =
                    requests.iter().map(|r| runtime.submit(r.clone()).unwrap()).collect();
                for (ticket, want) in tickets.into_iter().zip(&want) {
                    let response = ticket.wait().unwrap();
                    assert_images_bit_identical(response.images(), want, &label);
                }
                let stats = runtime.shutdown();
                assert_eq!(stats.completed, 4, "{label}");
                assert_eq!(stats.images, 6, "{label}");
                assert_eq!(stats.failed, 0, "{label}");
            }
        }
    });
}

/// Many submitter threads, mixed sizes, every CNN registry method
/// sampled: each caller must get exactly its own images back, in its own
/// submission order, bit-identical to serial serving.
#[test]
fn concurrent_submitters_each_get_their_own_responses_in_order() {
    with_watchdog(240, "concurrent-submitters", || {
        // Sample the registry across the stress run (one runtime per
        // method keeps the engine/model relationship honest).
        for (m, method) in Method::cnn_registry().into_iter().enumerate() {
            let serial = engine_for(method, Backend::Scalar, 777);
            let concurrent = engine_for(method, Backend::Scalar, 777);
            let runtime = Runtime::spawn(
                concurrent,
                RuntimeConfig {
                    workers: 3,
                    queue_capacity: 8, // small: submitters hit submit_wait backpressure
                    max_batch: 6,
                    max_wait: Duration::from_millis(1),
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            let sizes = [(6usize, 6usize), (8, 8), (6, 10)];
            let serial_session = serial.session();
            std::thread::scope(|scope| {
                let runtime = &runtime;
                let sizes = &sizes;
                let serial_session = &serial_session;
                let mut submitters = Vec::new();
                for t in 0..4u64 {
                    submitters.push(scope.spawn(move || {
                        let mut pending: Vec<(Ticket, u64, (usize, usize))> = Vec::new();
                        for i in 0..3u64 {
                            let seed = 10_000 + (m as u64) * 100 + t * 10 + i;
                            let (h, w) = sizes[(t as usize + i as usize) % sizes.len()];
                            let ticket = runtime
                                .submit_wait(SrRequest::single(probe(h, w, seed)))
                                .expect("submit_wait only fails on shutdown");
                            pending.push((ticket, seed, (h, w)));
                        }
                        pending
                    }));
                }
                for (t, submitter) in submitters.into_iter().enumerate() {
                    for (ticket, seed, (h, w)) in submitter.join().unwrap() {
                        let got = ticket.wait().unwrap();
                        // The serial reference for this caller's request.
                        let want = serial_session
                            .infer(SrRequest::single(probe(h, w, seed)))
                            .unwrap();
                        assert_images_bit_identical(
                            got.images(),
                            want.images(),
                            &format!("{method}, submitter {t}, seed {seed}"),
                        );
                    }
                }
            });
            let stats = runtime.shutdown();
            assert_eq!(stats.completed, 12, "{method}");
            assert_eq!(stats.failed, 0, "{method}");
            assert!(stats.queue_high_water <= 8, "{method}: bounded queue respected");
        }
    });
}

/// Backpressure contract: a full queue is a typed `QueueFull` error
/// carrying the configured capacity, and the queue bound counts requests,
/// not images.
#[test]
fn a_full_queue_rejects_submissions_with_a_typed_error() {
    with_watchdog(120, "queue-full", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 55),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1, // never coalesce: the worker serves strictly one request at a time
                max_wait: Duration::ZERO,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // A deliberately heavy request occupies the single worker...
        let heavy = runtime
            .submit(SrRequest::batch((0..12).map(|i| probe(24, 24, 900 + i)).collect()))
            .unwrap();
        // ...wait until the worker has actually popped it off the queue.
        while runtime.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Now fill the queue to its bound and overflow it.
        let q1 = runtime.submit(SrRequest::single(probe(6, 6, 920))).unwrap();
        let q2 = runtime.submit(SrRequest::single(probe(6, 6, 921))).unwrap();
        let overflow = runtime.submit(SrRequest::single(probe(6, 6, 922)));
        match overflow {
            Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Everything accepted is still served.
        assert_eq!(heavy.wait().unwrap().images().len(), 12);
        assert!(q1.wait().is_ok());
        assert!(q2.wait().is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.queue_high_water, 2);
    });
}

/// `set_backend` must not affect a running runtime: workers run under the
/// engine's captured backend handle, never the process global.
#[test]
fn global_set_backend_does_not_reach_a_running_runtime() {
    with_watchdog(120, "global-backend-isolation", || {
        let before = backend::active();
        let serial = engine_for(Method::scales(), Backend::Scalar, 66);
        let want = serial.session().infer(SrRequest::single(probe(8, 8, 67))).unwrap();
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 66),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        // Flip the process-global selection while the pool is live.
        backend::set_backend(Backend::Parallel);
        let got = runtime.submit(SrRequest::single(probe(8, 8, 67))).unwrap().wait().unwrap();
        backend::set_backend(before);
        assert_eq!(got.stats().backend, Backend::Scalar, "engine handle wins");
        assert_images_bit_identical(got.images(), want.images(), "backend isolation");
        let _ = runtime.shutdown();
    });
}

/// Graceful shutdown under load: submissions race `shutdown()` from
/// several threads; every ticket that was accepted resolves successfully,
/// every rejection is the typed `ShuttingDown`, and the final stats
/// account for exactly the accepted set.
#[test]
fn graceful_shutdown_under_load_resolves_every_accepted_ticket() {
    with_watchdog(240, "shutdown-under-load", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 88),
            RuntimeConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Submission is microseconds, serving is milliseconds: by the
        // time the burst is accepted the queue still holds most of it, so
        // `shutdown` below really does run against a loaded queue.
        let tickets: Vec<Ticket> = std::thread::scope(|scope| {
            let runtime = &runtime;
            let submitters: Vec<_> = (0..4u64)
                .map(|t| {
                    scope.spawn(move || {
                        (0..8u64)
                            .map(|i| {
                                runtime
                                    .submit_wait(SrRequest::single(probe(6, 6, t * 100 + i)))
                                    .expect("runtime is accepting")
                            })
                            .collect::<Vec<Ticket>>()
                    })
                })
                .collect();
            submitters.into_iter().flat_map(|s| s.join().unwrap()).collect()
        });
        let stats = runtime.shutdown();
        // Every accepted ticket resolved during the drain — none dropped,
        // none left pending.
        for ticket in tickets {
            assert!(ticket.is_ready(), "shutdown returned with a pending ticket");
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.queue_depth, 0, "shutdown drained the queue");
    });
}

/// Same race, but with `shutdown` called concurrently with the
/// submitters (not after): accepted-before-shutdown work still resolves.
#[test]
fn shutdown_racing_submitters_stays_deadlock_free() {
    with_watchdog(240, "shutdown-race", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 99),
            RuntimeConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 4,
                max_wait: Duration::from_millis(2),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let runtime = std::sync::Arc::new(std::sync::Mutex::new(Some(runtime)));
        let mut threads = Vec::new();
        for t in 0..3u64 {
            let runtime = std::sync::Arc::clone(&runtime);
            threads.push(std::thread::spawn(move || {
                for i in 0..6u64 {
                    let ticket = {
                        let guard = runtime.lock().unwrap();
                        let Some(rt) = guard.as_ref() else { return };
                        rt.submit(SrRequest::single(probe(6, 6, 3_000 + t * 10 + i)))
                    };
                    match ticket {
                        Ok(ticket) => assert!(ticket.wait().is_ok()),
                        Err(SubmitError::ShuttingDown) => return,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(3));
        let rt = runtime.lock().unwrap().take().expect("runtime present");
        let stats = rt.shutdown();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(stats.completed + stats.failed, stats.submitted);
        assert_eq!(stats.failed, 0);
    });
}

/// The batcher must actually coalesce: a backlog of single-image
/// requests submitted ahead of the (slow) first dispatch ends up in far
/// fewer dispatches than requests, and the shared-dispatch stats say so.
#[test]
fn dynamic_batching_coalesces_a_backlog_of_single_image_callers() {
    with_watchdog(120, "batching-coalesces", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 11),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Same-shaped singles: ideal coalescing fodder. Submit the whole
        // burst before waiting on anything.
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| runtime.submit(SrRequest::single(probe(8, 8, 500 + i))).unwrap())
            .collect();
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            assert_eq!(response.stats().images, 1, "caller sees its own image count");
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 16);
        // 16 singles with max_batch 8 and a 50 ms window: the burst is
        // already queued when the worker gathers, so dispatches must be
        // far below 16 (ideally 2–3).
        assert!(
            stats.dispatches < 16,
            "batcher never coalesced: {} dispatches for 16 requests",
            stats.dispatches
        );
        assert!(stats.coalesced > 0, "no request shared a dispatch");
        assert!(stats.batch_fill > 0.0);
    });
}

/// Spawn a one-lane runtime (single worker, no coalescing) and wedge its
/// worker with a deliberately heavy request, so everything submitted
/// afterwards sits in the queue under the admission controller's eyes.
fn wedged_runtime(config: RuntimeConfig, seed: u64) -> (Runtime, Ticket) {
    let runtime = Runtime::spawn(
        engine_for(Method::scales(), Backend::Scalar, seed),
        RuntimeConfig { workers: 1, max_batch: 1, max_wait: Duration::ZERO, ..config },
    )
    .unwrap();
    let wedge = runtime
        .submit(SrRequest::batch((0..12).map(|i| probe(24, 24, seed * 100 + i)).collect()))
        .unwrap();
    // Wait until the worker has actually popped it off the queue.
    while runtime.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    (runtime, wedge)
}

/// Deadline contract end to end: an already-expired deadline is refused
/// at the door, a deadline that passes while queued is retracted (the
/// ticket resolves with the typed rejection, the request is never
/// dispatched), and both show up in the `expired` counter — while
/// requests without deadlines are untouched.
#[test]
fn queued_requests_whose_deadline_passes_are_retracted_not_served_late() {
    with_watchdog(120, "deadline-retraction", || {
        let (runtime, wedge) = wedged_runtime(RuntimeConfig::default(), 21);
        // Queued behind the wedge: this deadline expires long before the
        // worker frees up.
        let doomed = runtime
            .submit(SrRequest::single(probe(6, 6, 2_100)).deadline_in(Duration::from_millis(5)))
            .unwrap();
        // Same queue, no deadline: must be served normally.
        let patient = runtime.submit(SrRequest::single(probe(6, 6, 2_101))).unwrap();
        match doomed.wait() {
            Err(ServeError::Rejected(SubmitError::Expired)) => {}
            Err(other) => panic!("expected the expired retraction, got {other:?}"),
            Ok(_) => panic!("an expired request must never be served"),
        }
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        assert!(patient.wait().is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.deadline_misses, 0, "retracted, so never served late");
        assert_eq!(stats.submitted, 3, "the retracted request was accepted");
    });
}

/// Deadline-tagged lane heads outrank the weighted rotation, earliest
/// deadline first: with one queued request per tenant lane and the queue
/// drained strictly one request at a time, the completion order is
/// tightest-deadline → looser-deadline → no-deadline, regardless of
/// submission order. (Within a single lane, order stays FIFO — EDF picks
/// among lane *heads*.)
#[test]
fn deadline_tagged_requests_are_scheduled_earliest_deadline_first() {
    with_watchdog(120, "edf-ordering", || {
        let (runtime, wedge) = wedged_runtime(RuntimeConfig::default(), 22);
        // One lane each, submitted in the *opposite* of the order they
        // must serve.
        let untagged = runtime.submit(SrRequest::single(probe(6, 6, 2_200))).unwrap();
        let loose = runtime
            .submit(
                SrRequest::single(probe(6, 6, 2_201))
                    .tenant("loose")
                    .deadline_in(Duration::from_secs(60)),
            )
            .unwrap();
        let tight = runtime
            .submit(
                SrRequest::single(probe(6, 6, 2_202))
                    .tenant("tight")
                    .deadline_in(Duration::from_secs(30)),
            )
            .unwrap();
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        // Completion stamps: with one worker and max_batch 1 the serving
        // is strictly serial, so resolution order is dispatch order.
        let order = std::thread::scope(|scope| {
            let stamp = |ticket: Ticket, label: &'static str| {
                scope.spawn(move || {
                    assert!(ticket.wait().is_ok(), "{label} must serve");
                    (std::time::Instant::now(), label)
                })
            };
            let handles =
                [stamp(tight, "tight"), stamp(loose, "loose"), stamp(untagged, "untagged")];
            let mut done: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            done.sort();
            done.into_iter().map(|(_, label)| label).collect::<Vec<_>>()
        });
        assert_eq!(order, ["tight", "loose", "untagged"], "EDF order");
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.expired, 0, "generous deadlines never expire");
    });
}

/// Weighted round-robin fairness: a hot low-weight tenant that filled the
/// queue first cannot starve a higher-weight tenant — the weighted lane
/// finishes its backlog well before the hot lane drains, and per-tenant
/// counters account for every request.
#[test]
fn weighted_tenants_are_not_starved_by_a_hot_low_weight_tenant() {
    with_watchdog(120, "wrr-fairness", || {
        let config = RuntimeConfig {
            tenant_weights: vec![("gold".into(), 3), ("bronze".into(), 1)],
            ..RuntimeConfig::default()
        };
        let (runtime, wedge) = wedged_runtime(config, 23);
        // The hot tenant gets its whole burst in FIRST.
        let bronze: Vec<Ticket> = (0..4)
            .map(|i| {
                runtime
                    .submit(SrRequest::single(probe(6, 6, 2_300 + i)).tenant("bronze"))
                    .unwrap()
            })
            .collect();
        let gold: Vec<Ticket> = (0..4)
            .map(|i| {
                runtime
                    .submit(SrRequest::single(probe(6, 6, 2_350 + i)).tenant("gold"))
                    .unwrap()
            })
            .collect();
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        let finished_at = |tickets: Vec<Ticket>| {
            tickets
                .into_iter()
                .map(|t| {
                    assert!(t.wait().is_ok());
                    std::time::Instant::now()
                })
                .max()
                .unwrap()
        };
        let (gold_done, bronze_done) = std::thread::scope(|scope| {
            let g = scope.spawn(move || finished_at(gold));
            let b = scope.spawn(move || finished_at(bronze));
            (g.join().unwrap(), b.join().unwrap())
        });
        // Strict FIFO would drain all of bronze first; weighted
        // round-robin must finish the weight-3 lane before the weight-1
        // lane that got there first.
        assert!(gold_done < bronze_done, "gold (weight 3) must not wait out bronze's backlog");
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 9);
        let tenants: Vec<&str> = stats.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(tenants, ["bronze", "gold"], "tagged lanes reported, sorted");
        for lane in &stats.tenants {
            assert_eq!(lane.submitted, 4, "{}", lane.tenant);
            assert_eq!(lane.completed, 4, "{}", lane.tenant);
        }
        assert_eq!(stats.tenants[1].weight, 3);
    });
}

/// Per-tenant quota: a lane at its quota refuses with the typed
/// `TenantQuota` even while the global queue has room, and the other
/// tenant keeps being admitted.
#[test]
fn a_tenant_at_its_quota_is_refused_without_blocking_other_tenants() {
    with_watchdog(120, "tenant-quota", || {
        let config = RuntimeConfig {
            tenant_quota: Some(2),
            queue_capacity: 64,
            ..RuntimeConfig::default()
        };
        let (runtime, wedge) = wedged_runtime(config, 24);
        let hot: Vec<Ticket> = (0..2)
            .map(|i| {
                runtime.submit(SrRequest::single(probe(6, 6, 2_400 + i)).tenant("hot")).unwrap()
            })
            .collect();
        match runtime.submit(SrRequest::single(probe(6, 6, 2_402)).tenant("hot")) {
            Err(SubmitError::TenantQuota { tenant, quota }) => {
                assert_eq!(tenant, "hot");
                assert_eq!(quota, 2);
            }
            other => panic!("expected TenantQuota, got {other:?}"),
        }
        // The global queue has plenty of room: another tenant sails in.
        let cold = runtime.submit(SrRequest::single(probe(6, 6, 2_403)).tenant("cold")).unwrap();
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        for ticket in hot {
            assert!(ticket.wait().is_ok());
        }
        assert!(cold.wait().is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.quota_rejected, 1);
        assert_eq!(stats.completed, 4);
        let hot_lane = stats.tenants.iter().find(|t| t.tenant == "hot").unwrap();
        assert_eq!(hot_lane.quota_rejected, 1);
        assert_eq!(hot_lane.completed, 2);
    });
}

/// Depth-watermark shedding: once the queue is at the watermark, both the
/// non-blocking and the blocking submit paths refuse immediately with the
/// typed `Shedding` — fail-fast, not wait-out-the-overload.
#[test]
fn the_shed_watermark_refuses_work_before_the_queue_is_full() {
    with_watchdog(120, "shed-watermark", || {
        let config = RuntimeConfig {
            shed: ShedPolicy { queue_watermark: Some(2), ..ShedPolicy::default() },
            queue_capacity: 64,
            ..RuntimeConfig::default()
        };
        let (runtime, wedge) = wedged_runtime(config, 25);
        let q1 = runtime.submit(SrRequest::single(probe(6, 6, 2_500))).unwrap();
        let q2 = runtime.submit(SrRequest::single(probe(6, 6, 2_501))).unwrap();
        for outcome in [
            runtime.submit(SrRequest::single(probe(6, 6, 2_502))).map(|_| ()),
            runtime.submit_wait(SrRequest::single(probe(6, 6, 2_503))).map(|_| ()),
            runtime
                .submit_wait_timeout(
                    SrRequest::single(probe(6, 6, 2_504)),
                    Duration::from_secs(30),
                )
                .map(|_| ()),
        ] {
            match outcome {
                Err(SubmitError::Shedding { reason }) => {
                    assert_eq!(reason, "queue depth watermark");
                }
                other => panic!("expected Shedding, got {other:?}"),
            }
        }
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        assert!(q1.wait().is_ok());
        assert!(q2.wait().is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected, 0, "shedding is its own counter, not `rejected`");
    });
}

/// The p99 trip wire recovers: a tripped wire that drained the queue has
/// no dispatches left to refresh its sample, so the stale reading re-arms
/// admission after `p99_recovery` instead of latching a transient spike
/// into a permanent outage.
#[test]
fn a_tripped_p99_wire_recovers_once_its_reading_goes_stale() {
    with_watchdog(120, "p99-recovery", || {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            // Any completed dispatch trips a 1 ns wire.
            shed: ShedPolicy {
                queue_watermark: None,
                p99_trip: Some(Duration::from_nanos(1)),
                p99_recovery: Duration::from_millis(150),
            },
            ..RuntimeConfig::default()
        };
        let runtime =
            Runtime::spawn(engine_for(Method::scales(), Backend::Scalar, 26), config).unwrap();
        // Serve until the wire trips (the sample is published shortly
        // after the ticket resolves, so poll rather than assume).
        let mut served = 0;
        loop {
            match runtime.submit(SrRequest::single(probe(6, 6, 2_600 + served))) {
                Ok(ticket) => {
                    assert!(ticket.wait().is_ok());
                    served += 1;
                }
                Err(SubmitError::Shedding { reason }) => {
                    assert_eq!(reason, "p99 latency trip wire");
                    break;
                }
                Err(other) => panic!("expected Shedding, got {other:?}"),
            }
        }
        assert!(served >= 1, "at least one dispatch must publish a sample");
        // No dispatches run while tripped; once the reading is older than
        // the recovery window, admission must re-arm on its own.
        std::thread::sleep(Duration::from_millis(500));
        let revived = runtime
            .submit(SrRequest::single(probe(6, 6, 2_690)))
            .expect("a stale trip reading must re-arm admission");
        assert!(revived.wait().is_ok(), "recovered runtime must serve again");
        let stats = runtime.shutdown();
        assert!(stats.shed >= 1, "the trip itself was counted");
        assert_eq!(stats.completed, served + 1);
    });
}

/// The lane table is bounded by `max_tenant_lanes`: a parade of distinct
/// tenant names retires idle lanes instead of growing server state, the
/// retired lanes' counts stay in the global totals, and a *refused*
/// request never creates a lane at all.
#[test]
fn untrusted_tenant_names_cannot_grow_the_lane_table() {
    with_watchdog(120, "lane-cap", || {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            max_tenant_lanes: 2,
            ..RuntimeConfig::default()
        };
        let runtime =
            Runtime::spawn(engine_for(Method::scales(), Backend::Scalar, 27), config).unwrap();
        // Eight distinct tenants, served one at a time so each lane goes
        // idle before the next name arrives.
        for i in 0..8 {
            let ticket = runtime
                .submit(SrRequest::single(probe(6, 6, 2_700 + i)).tenant(format!("tenant-{i}")))
                .unwrap();
            assert!(ticket.wait().is_ok());
        }
        // A refusal must not create a lane either: this tenant only ever
        // shows up with an already-expired deadline.
        match runtime.submit(
            SrRequest::single(probe(6, 6, 2_790)).tenant("ghost").deadline_in(Duration::ZERO),
        ) {
            Err(SubmitError::Expired) => {}
            other => panic!("expected Expired, got {other:?}"),
        }
        let stats = runtime.shutdown();
        assert!(
            stats.tenants.len() <= 2,
            "lane table must stay within max_tenant_lanes, got {:?}",
            stats.tenants.iter().map(|t| t.tenant.as_str()).collect::<Vec<_>>()
        );
        assert!(
            stats.tenants.iter().all(|t| t.tenant != "ghost"),
            "a refused request must not create a lane"
        );
        // Retiring lanes must not lose counts from the global totals.
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.expired, 1, "the ghost refusal is still counted globally");
    });
}

/// Deadline tags cannot buy unbounded priority: EDF runs *within* the
/// weighted rotation, so a tenant stamping every request with a far-away
/// deadline still spends lane credits like everyone else and cannot
/// starve a weighted tenant's untagged backlog.
#[test]
fn deadline_spam_does_not_starve_the_weighted_rotation() {
    with_watchdog(120, "edf-fairness", || {
        let config = RuntimeConfig {
            tenant_weights: vec![("gold".into(), 3)],
            ..RuntimeConfig::default()
        };
        let (runtime, wedge) = wedged_runtime(config, 28);
        // The spammer queues first, every request deadline-tagged with a
        // huge budget — under absolute-priority EDF this backlog would
        // drain completely before any untagged work.
        let spam: Vec<Ticket> = (0..4)
            .map(|i| {
                runtime
                    .submit(
                        SrRequest::single(probe(6, 6, 2_800 + i))
                            .tenant("spam")
                            .deadline_in(Duration::from_secs(3600)),
                    )
                    .unwrap()
            })
            .collect();
        let gold: Vec<Ticket> = (0..4)
            .map(|i| {
                runtime
                    .submit(SrRequest::single(probe(6, 6, 2_850 + i)).tenant("gold"))
                    .unwrap()
            })
            .collect();
        assert_eq!(wedge.wait().unwrap().images().len(), 12);
        let finished_at = |tickets: Vec<Ticket>| {
            tickets
                .into_iter()
                .map(|t| {
                    assert!(t.wait().is_ok());
                    std::time::Instant::now()
                })
                .max()
                .unwrap()
        };
        let (gold_done, spam_done) = std::thread::scope(|scope| {
            let g = scope.spawn(move || finished_at(gold));
            let s = scope.spawn(move || finished_at(spam));
            (g.join().unwrap(), s.join().unwrap())
        });
        assert!(
            gold_done < spam_done,
            "gold (weight 3, no deadlines) must not wait out the deadline spammer's backlog"
        );
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.deadline_misses, 0, "the spam deadlines were generous");
    });
}
