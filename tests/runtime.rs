//! Concurrency-correctness suite for the `scales-runtime` worker pool.
//!
//! The headline contract: responses served by the concurrent runtime —
//! coalesced across callers by the dynamic batcher, executed by whichever
//! worker got there first — are **bit-identical** (`f32::to_bits`) to a
//! serial `Session::infer` of the same request, across the CNN method
//! registry and all three compute backends. On top of that: per-caller response
//! ordering under many submitter threads, typed backpressure when the
//! bounded queue fills, independence from the process-global backend
//! selection, and deadlock-free graceful shutdown under load (every test
//! is bounded by a watchdog).

use scales::core::Method;
use scales::data::Image;
use scales::models::{srresnet, SrConfig};
use scales::nn::init::rng;
use scales::runtime::{Runtime, RuntimeConfig, SubmitError, Ticket};
use scales::serve::{Engine, Precision, SrRequest};
use scales::tensor::backend::{self, Backend};
use std::time::Duration;

/// Run `f` on a helper thread and fail the test if it has not finished
/// within `secs` — a deadlock anywhere in submit/dispatch/shutdown must
/// show up as a clean test failure, not a hung CI job.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog runner");
    let result = rx
        .recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {label} did not finish within {secs}s"));
    runner.join().expect("watchdog runner panicked");
    result
}

fn probe(h: usize, w: usize, seed: u64) -> Image {
    scales::data::synth::scene(h, w, scales::data::synth::SceneConfig::default(), &mut rng(seed))
}

fn engine_for(method: Method, backend: Backend, seed: u64) -> Engine<'static> {
    let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed }).unwrap();
    Engine::builder()
        .model(net)
        .precision(Precision::Deployed)
        .backend(backend)
        .build()
        .unwrap()
}

fn assert_images_bit_identical(got: &[Image], want: &[Image], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: image count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.tensor().shape(), w.tensor().shape(), "{label}: image {i} shape");
        for (j, (a, b)) in g.tensor().data().iter().zip(w.tensor().data().iter()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label}: image {i}, value {j} differs bitwise: {a} vs {b}"
            );
        }
    }
}

/// Bit-identity of runtime serving vs serial `Session::infer`, for every
/// CNN registry method on all three backends, with mixed-size requests that the
/// batcher is free to coalesce.
#[test]
fn runtime_matches_serial_session_bitwise_across_the_method_registry() {
    with_watchdog(240, "registry-bit-identity", || {
        for method in Method::cnn_registry() {
            for be in [Backend::Scalar, Backend::Parallel, Backend::Simd] {
                let label = format!("{method}, {} backend", be.name());
                // Two engines built from identical networks: one serves
                // serially, one through the pool.
                let serial = engine_for(method, be, 1234);
                let concurrent = engine_for(method, be, 1234);
                let requests: Vec<SrRequest> = vec![
                    SrRequest::single(probe(8, 8, 41)),
                    SrRequest::batch(vec![probe(6, 10, 42), probe(8, 8, 43)]),
                    SrRequest::single(probe(10, 6, 44)),
                    SrRequest::batch(vec![probe(8, 8, 45), probe(8, 8, 46)]),
                ];
                let session = serial.session();
                let want: Vec<Vec<Image>> = requests
                    .iter()
                    .map(|r| session.infer(r.clone()).unwrap().into_images())
                    .collect();
                let runtime = Runtime::spawn(
                    concurrent,
                    RuntimeConfig {
                        workers: 2,
                        queue_capacity: 64,
                        max_batch: 4,
                        max_wait: Duration::from_millis(5),
                    },
                )
                .unwrap();
                let tickets: Vec<Ticket> =
                    requests.iter().map(|r| runtime.submit(r.clone()).unwrap()).collect();
                for (ticket, want) in tickets.into_iter().zip(&want) {
                    let response = ticket.wait().unwrap();
                    assert_images_bit_identical(response.images(), want, &label);
                }
                let stats = runtime.shutdown();
                assert_eq!(stats.completed, 4, "{label}");
                assert_eq!(stats.images, 6, "{label}");
                assert_eq!(stats.failed, 0, "{label}");
            }
        }
    });
}

/// Many submitter threads, mixed sizes, every CNN registry method
/// sampled: each caller must get exactly its own images back, in its own
/// submission order, bit-identical to serial serving.
#[test]
fn concurrent_submitters_each_get_their_own_responses_in_order() {
    with_watchdog(240, "concurrent-submitters", || {
        // Sample the registry across the stress run (one runtime per
        // method keeps the engine/model relationship honest).
        for (m, method) in Method::cnn_registry().into_iter().enumerate() {
            let serial = engine_for(method, Backend::Scalar, 777);
            let concurrent = engine_for(method, Backend::Scalar, 777);
            let runtime = Runtime::spawn(
                concurrent,
                RuntimeConfig {
                    workers: 3,
                    queue_capacity: 8, // small: submitters hit submit_wait backpressure
                    max_batch: 6,
                    max_wait: Duration::from_millis(1),
                },
            )
            .unwrap();
            let sizes = [(6usize, 6usize), (8, 8), (6, 10)];
            let serial_session = serial.session();
            std::thread::scope(|scope| {
                let runtime = &runtime;
                let sizes = &sizes;
                let serial_session = &serial_session;
                let mut submitters = Vec::new();
                for t in 0..4u64 {
                    submitters.push(scope.spawn(move || {
                        let mut pending: Vec<(Ticket, u64, (usize, usize))> = Vec::new();
                        for i in 0..3u64 {
                            let seed = 10_000 + (m as u64) * 100 + t * 10 + i;
                            let (h, w) = sizes[(t as usize + i as usize) % sizes.len()];
                            let ticket = runtime
                                .submit_wait(SrRequest::single(probe(h, w, seed)))
                                .expect("submit_wait only fails on shutdown");
                            pending.push((ticket, seed, (h, w)));
                        }
                        pending
                    }));
                }
                for (t, submitter) in submitters.into_iter().enumerate() {
                    for (ticket, seed, (h, w)) in submitter.join().unwrap() {
                        let got = ticket.wait().unwrap();
                        // The serial reference for this caller's request.
                        let want = serial_session
                            .infer(SrRequest::single(probe(h, w, seed)))
                            .unwrap();
                        assert_images_bit_identical(
                            got.images(),
                            want.images(),
                            &format!("{method}, submitter {t}, seed {seed}"),
                        );
                    }
                }
            });
            let stats = runtime.shutdown();
            assert_eq!(stats.completed, 12, "{method}");
            assert_eq!(stats.failed, 0, "{method}");
            assert!(stats.queue_high_water <= 8, "{method}: bounded queue respected");
        }
    });
}

/// Backpressure contract: a full queue is a typed `QueueFull` error
/// carrying the configured capacity, and the queue bound counts requests,
/// not images.
#[test]
fn a_full_queue_rejects_submissions_with_a_typed_error() {
    with_watchdog(120, "queue-full", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 55),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1, // never coalesce: the worker serves strictly one request at a time
                max_wait: Duration::ZERO,
            },
        )
        .unwrap();
        // A deliberately heavy request occupies the single worker...
        let heavy = runtime
            .submit(SrRequest::batch((0..12).map(|i| probe(24, 24, 900 + i)).collect()))
            .unwrap();
        // ...wait until the worker has actually popped it off the queue.
        while runtime.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        // Now fill the queue to its bound and overflow it.
        let q1 = runtime.submit(SrRequest::single(probe(6, 6, 920))).unwrap();
        let q2 = runtime.submit(SrRequest::single(probe(6, 6, 921))).unwrap();
        let overflow = runtime.submit(SrRequest::single(probe(6, 6, 922)));
        match overflow {
            Err(SubmitError::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Everything accepted is still served.
        assert_eq!(heavy.wait().unwrap().images().len(), 12);
        assert!(q1.wait().is_ok());
        assert!(q2.wait().is_ok());
        let stats = runtime.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.queue_high_water, 2);
    });
}

/// `set_backend` must not affect a running runtime: workers run under the
/// engine's captured backend handle, never the process global.
#[test]
fn global_set_backend_does_not_reach_a_running_runtime() {
    with_watchdog(120, "global-backend-isolation", || {
        let before = backend::active();
        let serial = engine_for(Method::scales(), Backend::Scalar, 66);
        let want = serial.session().infer(SrRequest::single(probe(8, 8, 67))).unwrap();
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 66),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        // Flip the process-global selection while the pool is live.
        backend::set_backend(Backend::Parallel);
        let got = runtime.submit(SrRequest::single(probe(8, 8, 67))).unwrap().wait().unwrap();
        backend::set_backend(before);
        assert_eq!(got.stats().backend, Backend::Scalar, "engine handle wins");
        assert_images_bit_identical(got.images(), want.images(), "backend isolation");
        let _ = runtime.shutdown();
    });
}

/// Graceful shutdown under load: submissions race `shutdown()` from
/// several threads; every ticket that was accepted resolves successfully,
/// every rejection is the typed `ShuttingDown`, and the final stats
/// account for exactly the accepted set.
#[test]
fn graceful_shutdown_under_load_resolves_every_accepted_ticket() {
    with_watchdog(240, "shutdown-under-load", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 88),
            RuntimeConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 4,
                max_wait: Duration::from_millis(1),
            },
        )
        .unwrap();
        // Submission is microseconds, serving is milliseconds: by the
        // time the burst is accepted the queue still holds most of it, so
        // `shutdown` below really does run against a loaded queue.
        let tickets: Vec<Ticket> = std::thread::scope(|scope| {
            let runtime = &runtime;
            let submitters: Vec<_> = (0..4u64)
                .map(|t| {
                    scope.spawn(move || {
                        (0..8u64)
                            .map(|i| {
                                runtime
                                    .submit_wait(SrRequest::single(probe(6, 6, t * 100 + i)))
                                    .expect("runtime is accepting")
                            })
                            .collect::<Vec<Ticket>>()
                    })
                })
                .collect();
            submitters.into_iter().flat_map(|s| s.join().unwrap()).collect()
        });
        let stats = runtime.shutdown();
        // Every accepted ticket resolved during the drain — none dropped,
        // none left pending.
        for ticket in tickets {
            assert!(ticket.is_ready(), "shutdown returned with a pending ticket");
            assert!(ticket.wait().is_ok());
        }
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.queue_depth, 0, "shutdown drained the queue");
    });
}

/// Same race, but with `shutdown` called concurrently with the
/// submitters (not after): accepted-before-shutdown work still resolves.
#[test]
fn shutdown_racing_submitters_stays_deadlock_free() {
    with_watchdog(240, "shutdown-race", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 99),
            RuntimeConfig {
                workers: 2,
                queue_capacity: 64,
                max_batch: 4,
                max_wait: Duration::from_millis(2),
            },
        )
        .unwrap();
        let runtime = std::sync::Arc::new(std::sync::Mutex::new(Some(runtime)));
        let mut threads = Vec::new();
        for t in 0..3u64 {
            let runtime = std::sync::Arc::clone(&runtime);
            threads.push(std::thread::spawn(move || {
                for i in 0..6u64 {
                    let ticket = {
                        let guard = runtime.lock().unwrap();
                        let Some(rt) = guard.as_ref() else { return };
                        rt.submit(SrRequest::single(probe(6, 6, 3_000 + t * 10 + i)))
                    };
                    match ticket {
                        Ok(ticket) => assert!(ticket.wait().is_ok()),
                        Err(SubmitError::ShuttingDown) => return,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(3));
        let rt = runtime.lock().unwrap().take().expect("runtime present");
        let stats = rt.shutdown();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(stats.completed + stats.failed, stats.submitted);
        assert_eq!(stats.failed, 0);
    });
}

/// The batcher must actually coalesce: a backlog of single-image
/// requests submitted ahead of the (slow) first dispatch ends up in far
/// fewer dispatches than requests, and the shared-dispatch stats say so.
#[test]
fn dynamic_batching_coalesces_a_backlog_of_single_image_callers() {
    with_watchdog(120, "batching-coalesces", || {
        let runtime = Runtime::spawn(
            engine_for(Method::scales(), Backend::Scalar, 11),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                max_wait: Duration::from_millis(50),
            },
        )
        .unwrap();
        // Same-shaped singles: ideal coalescing fodder. Submit the whole
        // burst before waiting on anything.
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| runtime.submit(SrRequest::single(probe(8, 8, 500 + i))).unwrap())
            .collect();
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            assert_eq!(response.stats().images, 1, "caller sees its own image count");
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 16);
        // 16 singles with max_batch 8 and a 50 ms window: the burst is
        // already queued when the worker gathers, so dispatches must be
        // far below 16 (ideally 2–3).
        assert!(
            stats.dispatches < 16,
            "batcher never coalesced: {} dispatches for 16 requests",
            stats.dispatches
        );
        assert!(stats.coalesced > 0, "no request shared a dispatch");
        assert!(stats.batch_fill > 0.0);
    });
}
