//! Chaos suite: injected failures against the serving stack, proving the
//! robustness contract — **every accepted ticket resolves with a typed
//! outcome and the stack keeps serving** — under worker death, transient
//! artifact IO failures during a hot reload, and a stalled peer while the
//! runtime sheds load.
//!
//! The `scales-faults` registry is process-global and the harness runs
//! `#[test]`s concurrently, so every scenario takes [`CHAOS`] and resets
//! the registry before arming anything.

use scales::core::Method;
use scales::data::codec::encode_image;
use scales::data::{Image, WireFormat};
use scales::http::{HttpConfig, HttpServer};
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::router::{ModelRouter, RouterConfig, RouterError};
use scales::runtime::{Runtime, RuntimeConfig, ServeError, ShedPolicy, Ticket};
use scales::serve::{Engine, Precision, SrRequest};
use scales_faults::{self as faults, FaultAction};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the chaos scenarios: armed faults are process-global state.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    let guard = CHAOS.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    faults::reset();
    guard
}

/// Run `f` on a helper thread and fail the test if it has not finished
/// within `secs` — an unresolved ticket anywhere must be a clean test
/// failure, not a stuck CI job.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog runner");
    let result = rx
        .recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("watchdog: {label} did not finish within {secs}s"));
    runner.join().expect("watchdog runner panicked");
    result
}

fn probe(h: usize, w: usize, seed: u64) -> Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

fn engine(seed: u64) -> Engine<'static> {
    let net =
        srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
            .unwrap();
    Engine::builder().model(net).precision(Precision::Deployed).build().unwrap()
}

/// A worker panics mid-dispatch under sustained load: the poisoned
/// dispatch resolves as a typed failure (never a hang), every other
/// ticket is served, and the survivor worker keeps the runtime open for
/// business afterwards.
#[test]
fn a_worker_panic_mid_dispatch_resolves_its_ticket_and_service_continues() {
    let _chaos = chaos_lock();
    with_watchdog(120, "worker-panic", || {
        let runtime = Runtime::spawn(
            engine(31),
            RuntimeConfig {
                workers: 2,
                max_batch: 1,
                max_wait: Duration::ZERO,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Exactly one dispatch dies; max_batch 1 pins the blast radius to
        // one request.
        let _fault = faults::arm_times("runtime.dispatch", FaultAction::Panic, 1);

        let tickets: Vec<Ticket> = (0..16)
            .map(|i| runtime.submit(SrRequest::single(probe(6, 6, 3_100 + i))).unwrap())
            .collect();
        let mut served = 0u64;
        let mut failed = 0u64;
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => served += 1,
                Err(ServeError::Infer(e)) => {
                    assert!(
                        e.to_string().contains("panicked"),
                        "the poisoned dispatch must name the worker panic: {e}"
                    );
                    failed += 1;
                }
                Err(other) => panic!("unexpected outcome: {other}"),
            }
        }
        assert_eq!(served + failed, 16, "every accepted ticket resolved");
        assert_eq!(failed, 1, "exactly the poisoned dispatch failed");
        assert!(faults::hits("runtime.dispatch") >= 1);

        // The survivor worker still serves.
        let after = runtime.submit(SrRequest::single(probe(6, 6, 3_199))).unwrap();
        assert!(after.wait().is_ok(), "the runtime must keep serving after a worker death");

        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 17);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.failed, 1);
    });
}

/// A hot reload hits transient artifact-read failures while a client
/// hammers the model: the read is retried with bounded backoff and the
/// swap lands; a *persistently* failing read exhausts its retries into a
/// typed [`RouterError::Load`] that leaves the serving version untouched.
/// Either way the hammering client never sees a failed request.
#[test]
fn reload_retries_transient_reads_under_load_and_fails_typed_when_exhausted() {
    let _chaos = chaos_lock();
    with_watchdog(240, "reload-under-fire", || {
        let dir = std::env::temp_dir().join(format!("scales-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("alpha.dep.sca");
        let net = |seed| {
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
                .unwrap()
                .lower()
                .unwrap()
        };
        scales::io::save_artifact(&artifact, &net(41)).unwrap();

        let router = ModelRouter::new(RouterConfig {
            reload_retries: 2,
            reload_backoff: Duration::from_millis(1),
            runtime: RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
            ..RouterConfig::default()
        })
        .unwrap();
        router.register_path("alpha", &artifact).unwrap();

        // Overload pressure for the whole scenario: a client hammering
        // the model through both reload attempts.
        let stop = Arc::new(AtomicBool::new(false));
        let hammer = {
            let router = router.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Result<u64, String> {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    router
                        .submit_wait_timeout(
                            "alpha",
                            SrRequest::single(probe(6, 6, 4_100 + served)),
                            Duration::from_secs(60),
                        )
                        .map_err(|e| format!("router refused: {e}"))?
                        .map_err(|e| format!("inference failed: {e}"))?;
                    served += 1;
                }
                Ok(served)
            })
        };
        let lane_completed =
            |m: &scales::router::ModelStats| m.runtime.as_ref().map_or(0, |r| r.completed);
        while lane_completed(&router.model("alpha").unwrap()) == 0 {
            std::thread::yield_now();
        }

        // Two transient read failures, then the disk recovers: the retry
        // loop (2 retries = 3 attempts) lands the swap.
        scales::io::save_artifact(&artifact, &net(42)).unwrap();
        {
            let _fault = faults::arm_times(
                "router.read",
                FaultAction::Error("disk glitch".into()),
                2,
            );
            let swapped = router.reload("alpha").expect("retries must absorb transient reads");
            assert_eq!(swapped.version, 2);
            assert_eq!(
                faults::hits("router.read"),
                3,
                "two failed attempts plus the successful third"
            );
        }

        // A read that keeps failing exhausts the budget into a typed
        // error; the serving version is untouched.
        {
            let _fault = faults::arm("router.read", FaultAction::Error("disk gone".into()));
            match router.reload("alpha") {
                Err(RouterError::Load { name, detail }) => {
                    assert_eq!(name, "alpha");
                    assert!(detail.contains("disk gone"), "detail carries the IO error: {detail}");
                }
                other => panic!("expected a typed load failure, got {other:?}"),
            }
        }
        assert_eq!(router.model("alpha").unwrap().version, 2, "failed reload never swaps");

        stop.store(true, Ordering::Relaxed);
        let served = hammer.join().unwrap().expect("no hammered request may fail");
        assert!(served > 0);
        let merged = router.shutdown().merged_runtime();
        assert_eq!(merged.failed, 0, "both reload attempts were invisible to traffic");
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

/// Read one full HTTP response (status, lowercased headers, body).
fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read response head");
        assert!(n > 0, "connection closed before the response head finished");
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head[..head.len() - 4]).expect("response head is UTF-8");
    let mut lines = text.split("\r\n");
    let status: u16 =
        lines.next().expect("status line").split(' ').nth(1).expect("code").parse().unwrap();
    let headers: Vec<(String, String)> = lines
        .map(|line| {
            let (name, value) = line.split_once(':').expect("header line");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    let length: usize = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map_or(0, |(_, value)| value.parse().unwrap());
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read response body");
    (status, headers, body)
}

/// A peer that connects and then goes silent while the runtime is
/// shedding: the stall occupies one HTTP worker and nothing more — other
/// peers keep being served, overload keeps being shed with `503` +
/// `Retry-After`, and every in-flight request still completes.
#[test]
fn a_stalled_peer_does_not_block_shedding_or_in_flight_service() {
    let _chaos = chaos_lock();
    with_watchdog(240, "stalled-peer-shedding", || {
        let runtime = Runtime::spawn(
            engine(51),
            RuntimeConfig {
                workers: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                shed: ShedPolicy { queue_watermark: Some(1), ..ShedPolicy::default() },
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let server =
            HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default()).unwrap();
        let addr = server.addr();
        let payload = encode_image(&probe(8, 8, 9), WireFormat::Ppm).unwrap();
        let post = |extra: &str| {
            let mut raw = format!(
                "POST /v1/upscale HTTP/1.1\r\nHost: t\r\nContent-Type: {}\r\n{extra}Content-Length: {}\r\n\r\n",
                WireFormat::Ppm.content_type(),
                payload.len()
            )
            .into_bytes();
            raw.extend_from_slice(&payload);
            raw
        };

        // The stalled peer: connects, sends nothing, reads nothing.
        let stalled = TcpStream::connect(addr).unwrap();

        // Slow dispatches wedge the single runtime worker so the queue
        // builds deterministically behind the in-flight request.
        let slow = faults::arm("runtime.dispatch", FaultAction::Delay(Duration::from_secs(1)));

        // A occupies the worker (in dispatch), B fills the queue to the
        // watermark; neither response is read yet.
        let mut in_flight = TcpStream::connect(addr).unwrap();
        in_flight.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        in_flight.write_all(&post("")).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        queued.write_all(&post("")).unwrap();
        std::thread::sleep(Duration::from_millis(150));

        // C arrives over the watermark: shed, typed, with a Retry-After —
        // while the stalled peer sits on its worker.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        shed.write_all(&post("Connection: close\r\n")).unwrap();
        let (status, headers, body) = read_response(&mut shed);
        assert_eq!(status, 503, "over the watermark: {}", String::from_utf8_lossy(&body));
        let retry = headers.iter().find(|(n, _)| n == "retry-after").map(|(_, v)| v.as_str());
        assert_eq!(retry, Some("1"));
        assert!(
            String::from_utf8_lossy(&body).contains("shedding"),
            "the 503 names the shed policy: {}",
            String::from_utf8_lossy(&body)
        );

        // The control plane answers on a fresh connection despite the
        // stall and the overload.
        let mut health = TcpStream::connect(addr).unwrap();
        health.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        health.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut health);
        assert_eq!(status, 200, "health must answer while shedding around a stalled peer");

        // Let the wedge clear: both accepted requests complete.
        drop(slow);
        let (status, _, _) = read_response(&mut in_flight);
        assert_eq!(status, 200, "the in-flight request completes");
        let (status, _, _) = read_response(&mut queued);
        assert_eq!(status, 200, "the queued request completes");

        drop(stalled);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert!(stats.shed >= 1, "the refusal was counted as shed");
        assert_eq!(stats.failed, 0);
    });
}
