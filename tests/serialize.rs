//! Persistence round-trip guarantees for the `scales-io` artifact format,
//! enforced end-to-end through `Session::infer`:
//!
//! * **bit-identity** — for every CNN method in the registry and every
//!   lowerable architecture, a reloaded checkpoint and a reloaded
//!   deployed artifact serve outputs with identical `f32::to_bits` to the
//!   in-memory model, at both serving precisions;
//! * **negative paths** — truncated files, wrong magic, future format
//!   versions and arch/method mismatches all surface as typed
//!   `scales::io::Error` variants; a partial read is never accepted.

use scales::core::Method;
use scales::io::{
    load_artifact, load_checkpoint, read_kind, save_artifact, save_checkpoint, ArtifactKind,
    Error, FORMAT_VERSION,
};
use scales::models::{Arch, SrConfig, SrNetwork};
use scales::nn::init::rng;
use scales::serve::{Engine, Precision, Session, SrRequest};
use std::path::PathBuf;

/// Every registry row with a CNN body (bicubic has no network to save).
fn cnn_method_registry() -> Vec<Method> {
    Method::cnn_registry()
}

/// A fresh scratch directory per test (no tempfile crate in this
/// offline build).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scales-io-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn probe_image(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(h, w, scales::data::synth::SceneConfig::default(), &mut rng(seed))
}

/// Build a network and nudge every parameter off its seeded init, so a
/// "round-trip" that silently rebuilt from the seed instead of restoring
/// the stored tensors would be caught.
fn trained_like(arch: Arch, method: Method, seed: u64) -> Box<dyn SrNetwork> {
    let net = arch
        .build(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed })
        .expect("build network");
    for (i, p) in net.params().iter().enumerate() {
        p.update_value(|t| {
            for (j, v) in t.data_mut().iter_mut().enumerate() {
                *v += ((i * 131 + j) as f32 * 0.29).sin() * 0.05;
            }
        });
    }
    net
}

/// Serve a mixed-size request (two shape buckets) and return the images.
fn serve_mixed(session: &Session<'_, '_>) -> Vec<scales::data::Image> {
    let request = SrRequest::batch(vec![
        probe_image(8, 8, 301),
        probe_image(6, 10, 302),
        probe_image(8, 8, 303),
    ]);
    session.infer(request).expect("serve").into_images()
}

fn assert_bit_identical(
    a: &[scales::data::Image],
    b: &[scales::data::Image],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!((x.height(), x.width()), (y.height(), y.width()), "{label} image {i}");
        for (p, q) in x.tensor().data().iter().zip(y.tensor().data().iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "{label} image {i}");
        }
    }
}

#[test]
fn checkpoint_round_trip_serves_bit_identically_for_every_cnn_method() {
    let dir = scratch("ckpt-methods");
    for (i, method) in cnn_method_registry().into_iter().enumerate() {
        let net = trained_like(Arch::SrResNet, method, 400 + i as u64);
        let path = dir.join(format!("m{i}.sca"));
        save_checkpoint(&path, net.as_ref()).expect("save");
        assert_eq!(read_kind(&path).unwrap(), ArtifactKind::Checkpoint);
        let loaded = load_checkpoint(&path).expect("load");
        assert_eq!(loaded.config(), net.config(), "{method}");
        for precision in [Precision::Training, Precision::Deployed] {
            let mem =
                Engine::builder().model_ref(net.as_ref()).precision(precision).build().unwrap();
            let disk =
                Engine::builder().model_ref(loaded.as_ref()).precision(precision).build().unwrap();
            assert_eq!(mem.precision(), disk.precision(), "{method}/{precision}");
            let a = serve_mixed(&mem.session());
            let b = serve_mixed(&disk.session());
            assert_bit_identical(&a, &b, &format!("checkpoint {method} at {precision}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_round_trip_serves_bit_identically_for_every_cnn_method() {
    let dir = scratch("artifact-methods");
    for (i, method) in cnn_method_registry().into_iter().enumerate() {
        let net = trained_like(Arch::SrResNet, method, 500 + i as u64);
        let lowered = net.lower().expect("lower");
        let path = dir.join(format!("m{i}.sca"));
        save_artifact(&path, &lowered).expect("save");
        assert_eq!(read_kind(&path).unwrap(), ArtifactKind::Deployed);
        let loaded = load_artifact(&path).expect("load");
        assert_eq!(loaded.packed_layers(), lowered.packed_layers(), "{method}");
        let mem = Engine::builder().model(lowered).build().unwrap();
        let disk = Engine::builder().model(loaded).build().unwrap();
        assert_eq!(disk.precision(), Precision::Deployed);
        let a = serve_mixed(&mem.session());
        let b = serve_mixed(&disk.session());
        assert_bit_identical(&a, &b, &format!("artifact {method}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_lowerable_arch_round_trips_both_forms() {
    let dir = scratch("archs");
    for (i, arch) in Arch::CNN.into_iter().enumerate() {
        for method in [Method::FullPrecision, Method::scales()] {
            let net = trained_like(arch, method, 600 + i as u64);
            let ckpt = dir.join(format!("{arch}-{i}.ckpt.sca"));
            let dep = dir.join(format!("{arch}-{i}.dep.sca"));
            save_checkpoint(&ckpt, net.as_ref()).unwrap();
            save_artifact(&dep, &net.lower().unwrap()).unwrap();
            let reference = Engine::builder()
                .model_ref(net.as_ref())
                .precision(Precision::Deployed)
                .build()
                .unwrap();
            let label = format!("{arch}/{method}");
            let a = serve_mixed(&reference.session());
            // load_checkpoint(save_checkpoint(net)) serves bit-identically.
            let from_ckpt = Engine::builder()
                .model(load_checkpoint(&ckpt).unwrap())
                .precision(Precision::Deployed)
                .build()
                .unwrap();
            assert!(from_ckpt.fallback().is_none(), "{label}");
            assert_bit_identical(&a, &serve_mixed(&from_ckpt.session()), &label);
            // load_artifact(save_artifact(lower(net))) serves bit-identically.
            let from_dep = Engine::builder().model(load_artifact(&dep).unwrap()).build().unwrap();
            assert_bit_identical(&a, &serve_mixed(&from_dep.session()), &label);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transformer_checkpoints_round_trip_and_fall_back_like_the_source() {
    let dir = scratch("transformer");
    for (i, arch) in [Arch::SwinIr, Arch::Hat].into_iter().enumerate() {
        let net = trained_like(arch, Method::Bibert, 700 + i as u64);
        let path = dir.join(format!("{arch}.sca"));
        save_checkpoint(&path, net.as_ref()).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.arch(), arch);
        let mem =
            Engine::builder().model_ref(net.as_ref()).precision(Precision::Training).build().unwrap();
        let disk = Engine::builder()
            .model_ref(loaded.as_ref())
            .precision(Precision::Training)
            .build()
            .unwrap();
        // Window-aligned sizes (transformer inputs must divide WINDOW).
        let serve_aligned = |session: &Session<'_, '_>| {
            session
                .infer(SrRequest::batch(vec![
                    probe_image(8, 8, 304),
                    probe_image(4, 8, 305),
                    probe_image(8, 8, 306),
                ]))
                .expect("serve")
                .into_images()
        };
        let a = serve_aligned(&mem.session());
        let b = serve_aligned(&disk.session());
        assert_bit_identical(&a, &b, arch.name());
        // A deployed request on a reloaded transformer degrades with a
        // report, exactly like the in-memory model.
        let fallback =
            Engine::builder().model_ref(loaded.as_ref()).precision(Precision::Deployed).build().unwrap();
        assert_eq!(fallback.precision(), Precision::Training);
        assert!(fallback.fallback().is_some(), "{arch}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn model_path_sniffs_and_serves_either_kind() {
    let dir = scratch("model-path");
    let net = trained_like(Arch::SrResNet, Method::scales(), 800);
    let ckpt = dir.join("model.ckpt.sca");
    let dep = dir.join("model.dep.sca");
    save_checkpoint(&ckpt, net.as_ref()).unwrap();
    save_artifact(&dep, &net.lower().unwrap()).unwrap();
    let reference =
        Engine::builder().model_ref(net.as_ref()).precision(Precision::Deployed).build().unwrap();
    let a = serve_mixed(&reference.session());
    // Checkpoint path: usable at either precision.
    let from_ckpt = Engine::builder().model_path(&ckpt).build().unwrap();
    assert_eq!(from_ckpt.scale(), 2);
    assert_eq!(from_ckpt.precision(), Precision::Deployed);
    assert_bit_identical(&a, &serve_mixed(&from_ckpt.session()), "model_path checkpoint");
    let training = Engine::builder().model_path(&ckpt).precision(Precision::Training).build().unwrap();
    assert_eq!(training.precision(), Precision::Training);
    // Deployed-artifact path: already packed.
    let from_dep = Engine::builder().model_path(&dep).build().unwrap();
    assert_eq!(from_dep.precision(), Precision::Deployed);
    assert!(from_dep.fallback().is_none());
    assert_bit_identical(&a, &serve_mixed(&from_dep.session()), "model_path artifact");
    // A packed graph has no training path — same error as the in-memory case.
    assert!(Engine::builder().model_path(&dep).precision(Precision::Training).build().is_err());
    // Exactly one model source must be set.
    assert!(Engine::builder()
        .model_ref(net.as_ref())
        .model_path(&ckpt)
        .build()
        .is_err());
    // Missing files surface as build errors, not panics.
    assert!(Engine::builder().model_path(dir.join("absent.sca")).build().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Negative paths: every malformed file maps to a typed scales::io::Error.
// ---------------------------------------------------------------------

fn checkpoint_bytes() -> Vec<u8> {
    let net = trained_like(Arch::SrResNet, Method::scales(), 900);
    scales::io::checkpoint_to_bytes(net.as_ref())
}

#[test]
fn truncated_files_are_typed_errors_for_both_kinds() {
    let dir = scratch("truncated");
    let net = trained_like(Arch::SrResNet, Method::scales(), 901);
    let bytes = scales::io::checkpoint_to_bytes(net.as_ref());
    let dep_bytes = scales::io::artifact_to_bytes(&net.lower().unwrap());
    for (label, bytes, path) in
        [("checkpoint", &bytes, dir.join("c.sca")), ("artifact", &dep_bytes, dir.join("a.sca"))]
    {
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = match label {
                "checkpoint" => load_checkpoint(&path).map(|_| ()).unwrap_err(),
                _ => load_artifact(&path).map(|_| ()).unwrap_err(),
            };
            assert!(matches!(err, Error::Truncated { .. }), "{label} cut at {cut}: {err}");
        }
        // Cutting inside the header is BadMagic (it cannot even be
        // identified as a SCALES file).
        std::fs::write(&path, &bytes[..4]).unwrap();
        assert!(matches!(read_kind(&path), Err(Error::BadMagic { .. })), "{label}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let dir = scratch("magic");
    let mut bytes = checkpoint_bytes();
    bytes[..4].copy_from_slice(b"PNG\x00");
    let path = dir.join("x.sca");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(read_kind(&path), Err(Error::BadMagic { .. })));
    assert!(matches!(load_checkpoint(&path).map(|_| ()), Err(Error::BadMagic { .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_format_version_is_a_typed_error() {
    let dir = scratch("version");
    let mut bytes = checkpoint_bytes();
    bytes[8..10].copy_from_slice(&(FORMAT_VERSION + 3).to_le_bytes());
    let path = dir.join("x.sca");
    std::fs::write(&path, &bytes).unwrap();
    let err = load_checkpoint(&path).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, Error::UnsupportedVersion { found, supported }
            if found == FORMAT_VERSION + 3 && supported == FORMAT_VERSION),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kind_mismatch_is_a_typed_error() {
    let dir = scratch("kind");
    let net = trained_like(Arch::SrResNet, Method::scales(), 902);
    let ckpt = dir.join("c.sca");
    let dep = dir.join("a.sca");
    save_checkpoint(&ckpt, net.as_ref()).unwrap();
    save_artifact(&dep, &net.lower().unwrap()).unwrap();
    assert!(matches!(
        load_checkpoint(&dep).map(|_| ()),
        Err(Error::WrongKind { expected: ArtifactKind::Checkpoint, found: ArtifactKind::Deployed })
    ));
    assert!(matches!(
        load_artifact(&ckpt).map(|_| ()),
        Err(Error::WrongKind { expected: ArtifactKind::Deployed, found: ArtifactKind::Checkpoint })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn arch_and_method_mismatches_are_typed_errors() {
    let dir = scratch("mismatch");
    let bytes = checkpoint_bytes();
    let name_field = 4 + "SRResNet".len(); // u32 length + UTF-8
    // (a) Unknown method tag: the byte right after name + 3×u32 + u64 seed.
    let method_offset = 12 + name_field + 12 + 8;
    let mut bad_method = bytes.clone();
    bad_method[method_offset] = 250;
    let path = dir.join("m.sca");
    std::fs::write(&path, &bad_method).unwrap();
    assert!(matches!(
        load_checkpoint(&path).map(|_| ()),
        Err(Error::UnknownMethod(250))
    ));
    // (b) Re-labelled architecture whose rebuilt parameters cannot fit.
    let mut relabelled = bytes[..12].to_vec();
    relabelled.extend_from_slice(&3u32.to_le_bytes());
    relabelled.extend_from_slice(b"RDN");
    relabelled.extend_from_slice(&bytes[12 + name_field..]);
    std::fs::write(&path, &relabelled).unwrap();
    assert!(matches!(
        load_checkpoint(&path).map(|_| ()),
        Err(Error::ArchMismatch { arch, .. }) if arch == "RDN"
    ));
    // (c) An architecture the registry has never heard of.
    let mut unknown = bytes[..12].to_vec();
    unknown.extend_from_slice(&4u32.to_le_bytes());
    unknown.extend_from_slice(b"VDSR");
    unknown.extend_from_slice(&bytes[12 + name_field..]);
    std::fs::write(&path, &unknown).unwrap();
    assert!(matches!(
        load_checkpoint(&path).map(|_| ()),
        Err(Error::UnknownArch(name)) if name == "VDSR"
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trailing_bytes_are_a_typed_error() {
    let dir = scratch("trailing");
    let mut bytes = checkpoint_bytes();
    bytes.extend_from_slice(&[0, 1, 2]);
    let path = dir.join("x.sca");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        load_checkpoint(&path).map(|_| ()),
        Err(Error::TrailingBytes { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
