//! Planned-executor equivalence: `DeployedNetwork::forward_planned` must
//! be **bit-identical** (`f32::to_bits`) to the allocating
//! `DeployedNetwork::forward` — across the whole CNN method registry,
//! every lowerable architecture, all three backends, and mixed batch sizes —
//! and a `Session` must build one plan per input shape and reuse it.

use proptest::prelude::*;
use scales::core::Method;
use scales::models::{edsr, rcan, rdn, srresnet, SrConfig, SrNetwork, Workspace};
use scales::nn::init::rng;
use scales::serve::{Engine, Precision, SrRequest};
use scales::tensor::backend::{self, Backend};
use scales::tensor::Tensor;

/// Every registry row with a CNN body (bicubic has no network to lower).
fn cnn_method_registry() -> Vec<Method> {
    Method::cnn_registry()
}

fn probe_batch(n: usize, h: usize, w: usize, seed: f32) -> Tensor {
    Tensor::from_vec(
        (0..n * 3 * h * w).map(|i| ((i as f32 + seed) * 0.13).sin() * 0.4 + 0.5).collect(),
        &[n, 3, h, w],
    )
    .unwrap()
}

fn assert_planned_is_bit_identical(net: &dyn SrNetwork, batch: &Tensor, label: &str) {
    let deployed = net.lower().unwrap();
    let want = deployed.forward(batch).unwrap();
    let mut ws = Workspace::new();
    // Two rounds so the second runs on warm (stale) workspace buffers.
    for round in 0..2 {
        let got = deployed.forward_planned(batch, &mut ws).unwrap();
        assert_eq!(got.shape(), want.shape(), "{label}");
        for (i, (a, b)) in want.data().iter().zip(got.data().iter()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label}, round {round}: value {i} differs bitwise: {a} vs {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline contract of this PR: the zero-allocation planned
    /// executor reproduces the allocating forward bit-for-bit for every
    /// registry method, on all three backends, across mixed batch sizes.
    #[test]
    fn planned_executor_is_bit_identical_for_every_method_backend_and_batch(
        seed in 0u64..10_000,
        size in 6usize..10,
    ) {
        for method in cnn_method_registry() {
            let net = srresnet(SrConfig {
                channels: 8,
                blocks: 1,
                scale: 2,
                method,
                seed: seed ^ 0x3C3C,
            })
            .unwrap();
            for be in [Backend::Scalar, Backend::Parallel, Backend::Simd] {
                backend::with_backend(be, || {
                    for n in [1usize, 2, 3] {
                        let batch = probe_batch(n, size, size, seed as f32);
                        assert_planned_is_bit_identical(
                            &net,
                            &batch,
                            &format!("{method}, {} backend, batch {n}", be.name()),
                        );
                    }
                });
            }
        }
    }
}

/// Acceptance sweep: every lowerable architecture × every registry row.
#[test]
fn planned_executor_is_bit_identical_on_every_arch_and_method() {
    let batch = probe_batch(1, 6, 6, 40.0);
    for method in cnn_method_registry() {
        let cfg = SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 41 };
        let check = |name: &str, net: &dyn SrNetwork| {
            assert_planned_is_bit_identical(net, &batch, &format!("{name}/{method}"));
        };
        check("SRResNet", &srresnet(cfg).unwrap());
        check("EDSR", &edsr(cfg).unwrap());
        check("RDN", &rdn(cfg).unwrap());
        check("RCAN", &rcan(cfg).unwrap());
    }
}

/// Two different input sizes through one `Session`: one plan per shape,
/// reused on every later request, with the response stats saying so.
#[test]
fn session_reuses_plans_across_mixed_input_sizes() {
    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 1,
        scale: 2,
        method: Method::scales(),
        seed: 42,
    })
    .unwrap();
    let engine = Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
    let session = engine.session();
    let small = scales::data::synth::scene(8, 8, scales::data::synth::SceneConfig::default(), &mut rng(43));
    let wide = scales::data::synth::scene(6, 10, scales::data::synth::SceneConfig::default(), &mut rng(44));

    let first = session.infer(SrRequest::batch(vec![small.clone(), wide.clone()])).unwrap();
    assert_eq!(first.stats().plans_built, 2, "one plan per shape");
    assert_eq!(first.stats().plan_reuses, 0);

    let second = session.infer(SrRequest::batch(vec![wide.clone(), small.clone()])).unwrap();
    assert_eq!(second.stats().plans_built, 0, "no new shapes, no new plans");
    assert_eq!(second.stats().plan_reuses, 2);

    // And the served outputs still match the allocating deployed path.
    let deployed = net.lower().unwrap();
    for (img, sr) in [&small, &wide].into_iter().zip(second.images().iter().rev()) {
        let want = deployed.super_resolve(img).unwrap();
        assert_eq!(want.tensor().data(), sr.tensor().data(), "served == allocating");
    }
}
