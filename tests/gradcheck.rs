//! Systematic numeric gradient checks: every differentiable op used by the
//! models is verified against central finite differences on random inputs.
//!
//! STE binarizers are excluded by design — their backward pass is a
//! surrogate, not the true derivative (that is the point of an STE); their
//! gradient rules are checked analytically in `scales-autograd`'s unit
//! tests instead.

use scales::autograd::Var;
use scales::nn::init::{kaiming_normal, rng};
use scales::tensor::ops::Conv2dSpec;
use scales::tensor::Tensor;

/// Check d(sum(f(x)))/dx against central differences at every coordinate.
fn gradcheck(name: &str, x0: &Tensor, f: impl Fn(&Var) -> Var) {
    let x = Var::param(x0.clone());
    let y = f(&x).sum_all().expect("scalar loss");
    y.backward().expect("backward");
    let g = x.grad().expect("gradient");
    let eps = 1e-2f32;
    for idx in 0..x0.len() {
        let mut p = x0.clone();
        p.data_mut()[idx] += eps;
        let mut m = x0.clone();
        m.data_mut()[idx] -= eps;
        let fp = f(&Var::new(p)).value().sum();
        let fm = f(&Var::new(m)).value().sum();
        let num = (fp - fm) / (2.0 * eps);
        let ana = g.data()[idx];
        let tol = 1e-2 * (1.0 + num.abs());
        assert!(
            (ana - num).abs() < tol,
            "{name}: grad mismatch at {idx}: analytic {ana} vs numeric {num}"
        );
    }
}

fn input(shape: &[usize], seed: u64) -> Tensor {
    let mut r = rng(seed);
    // Keep values away from kinks (|x| = 1 for STE clips, 0 for relu/abs).
    kaiming_normal(shape, 4, &mut r).map(|v| v * 0.8 + 0.05)
}

#[test]
fn gradcheck_elementwise_ops() {
    let x = input(&[2, 3], 1);
    gradcheck("scale", &x, |v| v.scale(2.5));
    gradcheck("neg", &x, |v| v.neg());
    gradcheck("add_scalar", &x, |v| v.add_scalar(0.7));
    gradcheck("sigmoid", &x, |v| v.sigmoid());
    gradcheck("tanh", &x, |v| v.tanh());
    gradcheck("gelu", &x, |v| v.gelu());
    gradcheck("leaky_relu", &x, |v| v.leaky_relu(0.1));
    gradcheck("recip", &x.map(|v| v + 2.0), |v| v.recip());
    gradcheck("sqrt", &x.map(|v| v.abs() + 0.5), |v| v.sqrt());
}

#[test]
fn gradcheck_binary_ops() {
    let x = input(&[2, 3], 2);
    let other = Var::new(input(&[2, 3], 3).map(|v| v + 1.5));
    gradcheck("add", &x, |v| v.add(&other).expect("shapes match"));
    gradcheck("sub", &x, |v| v.sub(&other).expect("shapes match"));
    gradcheck("mul", &x, |v| v.mul(&other).expect("shapes match"));
    gradcheck("div", &x, |v| v.div(&other).expect("shapes match"));
    // Broadcast paths.
    let row = Var::new(input(&[1, 3], 4).map(|v| v + 1.2));
    gradcheck("add broadcast", &x, |v| v.add(&row).expect("broadcast"));
    gradcheck("mul broadcast", &x, |v| v.mul(&row).expect("broadcast"));
}

#[test]
fn gradcheck_reductions_and_shape_ops() {
    let x = input(&[2, 3, 4], 5);
    gradcheck("mean_all", &x, |v| v.mean_all().expect("ok"));
    gradcheck("sum_axis", &x, |v| v.sum_axis(1).expect("ok"));
    gradcheck("mean_axis", &x, |v| v.mean_axis(2).expect("ok"));
    gradcheck("reshape", &x, |v| v.reshape(&[6, 4]).expect("ok"));
    gradcheck("permute", &x, |v| v.permute(&[2, 0, 1]).expect("ok"));
    gradcheck("slice", &x, |v| v.slice_axis(1, 1, 2).expect("ok"));
    gradcheck("softmax", &x, |v| {
        let s = v.softmax_last_axis().expect("ok");
        let w = Var::new(input(&[2, 3, 4], 6));
        s.mul(&w).expect("weighting")
    });
    gradcheck("var_last_axis", &x, |v| v.var_last_axis().expect("ok"));
}

#[test]
fn gradcheck_linalg_ops() {
    let x = input(&[3, 4], 7);
    let w = Var::new(input(&[4, 2], 8));
    gradcheck("matmul lhs", &x, |v| v.matmul(&w).expect("ok"));
    let xb = input(&[2, 3, 4], 9);
    let wb = Var::new(input(&[2, 4, 2], 10));
    gradcheck("batched_matmul lhs", &xb, |v| v.batched_matmul(&wb).expect("ok"));
}

#[test]
fn gradcheck_conv_ops() {
    let x = input(&[1, 2, 5, 5], 11);
    let w = Var::new(input(&[3, 2, 3, 3], 12));
    gradcheck("conv2d input", &x, |v| v.conv2d(&w, Conv2dSpec::same(3)).expect("ok"));
    let wt = input(&[3, 2, 3, 3], 13);
    let xc = Var::new(input(&[1, 2, 5, 5], 14));
    gradcheck("conv2d weight", &wt, |v| xc.conv2d(v, Conv2dSpec::same(3)).expect("ok"));
    let x1 = input(&[1, 1, 9], 15);
    let w1 = Var::new(input(&[1, 1, 5], 16));
    gradcheck("conv1d input", &x1, |v| v.conv1d(&w1, 2).expect("ok"));
}

#[test]
fn gradcheck_image_ops() {
    let x = input(&[1, 4, 4, 4], 17);
    gradcheck("pixel_shuffle", &x, |v| v.pixel_shuffle(2).expect("ok"));
    gradcheck("global_avg_pool", &x, |v| v.global_avg_pool().expect("ok"));
    gradcheck("window round trip", &x, |v| {
        v.window_partition(2)
            .expect("ok")
            .window_merge(1, 4, 4, 4, 2)
            .expect("ok")
    });
}

#[test]
fn gradcheck_composed_layer_stack() {
    // A miniature body: conv → sigmoid gate → residual — exactly the shape
    // of the SCALES re-scaling datapath, checked end to end.
    let x = input(&[1, 2, 4, 4], 18);
    let w = Var::new(input(&[2, 2, 3, 3], 19));
    let gate_w = Var::new(input(&[1, 2, 1, 1], 20));
    gradcheck("scales-like datapath", &x, |v| {
        let y = v.conv2d(&w, Conv2dSpec::same(3)).expect("conv");
        let gate = v
            .conv2d(&gate_w, Conv2dSpec { stride: 1, padding: 0 })
            .expect("1x1")
            .sigmoid();
        y.mul(&gate).expect("rescale").add(v).expect("skip")
    });
}
