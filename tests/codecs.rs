//! Wire-codec suite: PPM/PNG round trips on random images and a hostile
//! negative sweep, mirroring the `tests/serialize.rs` treatment of the
//! on-disk format — every malformed payload is a typed [`CodecError`],
//! never a panic, and truncation at *every* byte offset is caught.

use scales::data::codec::{decode_image, decode_ppm, encode_image, CodecError};
use scales::data::{Image, WireFormat};
use scales::tensor::Tensor;

/// Random image straight from tensor data — unlike the scene
/// synthesizer, this works down to 1×1 and is already in [0, 1].
fn probe(h: usize, w: usize, seed: u64) -> Image {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32
    };
    let data: Vec<f32> = (0..3 * h * w).map(|_| next()).collect();
    Image::from_tensor(Tensor::from_vec(data, &[3, h, w]).unwrap()).unwrap()
}

/// Push an image through encode→decode once, yielding its quantized
/// (8-bit exact) representative.
fn quantized(image: &Image, format: WireFormat) -> Image {
    let (decoded, got) = decode_image(&encode_image(image, format).unwrap()).unwrap();
    assert_eq!(got, format);
    decoded
}

fn assert_bit_identical(a: &Image, b: &Image, label: &str) {
    assert_eq!(a.tensor().shape(), b.tensor().shape(), "{label}: shape");
    for (i, (x, y)) in a.tensor().data().iter().zip(b.tensor().data().iter()).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{label}: value {i} differs: {x} vs {y}");
    }
}

/// Once quantized, both codecs are exact: decode(encode(q)) == q bitwise
/// and re-encoding is byte-identical, across odd sizes down to 1×1.
#[test]
fn round_trips_are_bit_exact_on_random_images() {
    for (i, (h, w)) in [(1usize, 1usize), (2, 3), (8, 8), (5, 17), (31, 9)].iter().enumerate() {
        let image = probe(*h, *w, 100 + i as u64);
        for format in [WireFormat::Ppm, WireFormat::Png] {
            let q = quantized(&image, format);
            let bytes = encode_image(&q, format).unwrap();
            let (again, _) = decode_image(&bytes).unwrap();
            assert_bit_identical(&q, &again, &format!("{format} {h}x{w}"));
            assert_eq!(
                bytes,
                encode_image(&again, format).unwrap(),
                "{format} {h}x{w}: re-encode must be byte-identical"
            );
        }
    }
}

#[test]
fn greyscale_images_round_trip_as_png_and_refuse_ppm() {
    let rgb = probe(6, 7, 9);
    let grey = Image::from_tensor(rgb.to_luma()).unwrap();
    let q = quantized(&grey, WireFormat::Png);
    assert_eq!(q.channels(), 1);
    let bytes = encode_image(&q, WireFormat::Png).unwrap();
    let (again, _) = decode_image(&bytes).unwrap();
    assert_bit_identical(&q, &again, "greyscale png");
    // P6 is RGB by definition: a typed refusal, not a silent channel mangle.
    assert!(matches!(
        encode_image(&q, WireFormat::Ppm).unwrap_err(),
        CodecError::Unencodable { .. }
    ));
}

/// Truncation at every byte offset of a valid payload is a typed error —
/// partial reads are never accepted (`tests/serialize.rs` house rule).
#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let image = probe(4, 5, 42);
    for format in [WireFormat::Ppm, WireFormat::Png] {
        let bytes = encode_image(&image, format).unwrap();
        for len in 0..bytes.len() {
            assert!(
                decode_image(&bytes[..len]).is_err(),
                "{format}: {len}-byte prefix of {} must not decode",
                bytes.len()
            );
        }
    }
}

/// Flipping any single byte of a PNG payload never panics, and never
/// yields a silently different image: chunk CRCs (and the signature
/// check, and the zlib Adler-32) catch the corruption.
#[test]
fn png_single_byte_flips_never_corrupt_silently() {
    let image = probe(4, 4, 7);
    let bytes = encode_image(&image, WireFormat::Png).unwrap();
    let (clean, _) = decode_image(&bytes).unwrap();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        if let Ok((decoded, _)) = decode_image(&corrupt) {
            // A flip that still decodes must decode to the same pixels
            // (not reachable with full CRC coverage, but the contract is
            // "no silent corruption", so state it as such).
            assert_bit_identical(&clean, &decoded, &format!("flip at byte {i}"));
        }
    }
}

#[test]
fn hostile_ppm_headers_are_typed_errors() {
    let cases: [(&[u8], &str); 7] = [
        (b"P5\n2 2\n255\n\0\0\0\0", "P5 is not P6"),
        (b"P6\n2\n255\n", "missing height"),
        (b"P6\n2 2\n65535\n", "16-bit maxval"),
        (b"P6\n-2 2\n255\n", "negative width"),
        (b"P6\n99999999999 1\n255\n", "overflowing width"),
        (b"P6\n40000 40000\n255\n\0", "beyond the dimension caps"),
        (b"P6\n2 2\n255\n\0\0\0\0\0\0\0\0\0\0\0\0junk", "trailing bytes"),
    ];
    for (bytes, label) in cases {
        assert!(decode_ppm(bytes).is_err(), "{label} must be rejected");
    }
    // Comments in headers are legal PPM, though — not hostile.
    let ok = b"P6\n# a comment\n1 1\n255\n\x01\x02\x03";
    let image = decode_ppm(ok).expect("commented header decodes");
    assert_eq!((image.height(), image.width()), (1, 1));
}

/// The dispatching decoder tells the two containers apart and refuses
/// everything else with a typed unknown-format error.
#[test]
fn sniffing_dispatch_and_unknown_formats() {
    let image = probe(3, 3, 1);
    for format in [WireFormat::Ppm, WireFormat::Png] {
        let (_, got) = decode_image(&encode_image(&image, format).unwrap()).unwrap();
        assert_eq!(got, format);
    }
    for junk in [&b""[..], b"GIF89a", b"\xff\xd8\xff\xe0 jpeg", b"BM bitmap"] {
        assert!(matches!(
            decode_image(junk).unwrap_err(),
            CodecError::UnknownFormat { .. }
        ));
    }
}

/// A tensor that was never quantized still encodes deterministically:
/// values clamp to [0, 1] and round to 8 bits, so out-of-range inputs
/// cannot produce out-of-range wire bytes.
#[test]
fn encoding_clamps_out_of_range_values() {
    let tensor = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3, 1, 1]).unwrap();
    let image = Image::from_tensor(tensor).unwrap();
    let bytes = encode_image(&image, WireFormat::Ppm).unwrap();
    let (decoded, _) = decode_image(&bytes).unwrap();
    let data = decoded.tensor().data();
    assert_eq!(data[0], 0.0, "negative clamps to 0");
    assert_eq!(data[2], 1.0, "overrange clamps to 1");
    assert!((data[1] - 0.5).abs() < 1.0 / 255.0);
}
