//! Whole-network deployment equivalence: the packed `DeployedNetwork`
//! must reproduce the training-path forward for **every** method in the
//! `Method` registry, across random inputs and seeds, and tiled serving
//! must reproduce full-image serving.
//!
//! Also the serving-parity suite: `Session::infer` must be bit-identical
//! to each legacy free function (which this file therefore calls on
//! purpose despite their deprecation).
#![allow(deprecated)]

use proptest::prelude::*;
use scales::core::{Method, ScalesComponents};
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::nn::init::rng;
use scales::serve::{Engine, Precision, SrRequest, TilePolicy, TileSpec};
use scales::train::{
    super_resolve_batch, super_resolve_batch_deployed, super_resolve_tiled,
    super_resolve_tiled_deployed,
};

/// Every registry row with a CNN body (bicubic has no network to lower).
fn cnn_method_registry() -> Vec<Method> {
    Method::cnn_registry()
}

fn probe_image(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut rng(seed),
    )
}

fn assert_images_close(a: &scales::data::Image, b: &scales::data::Image, tol: f32, label: &str) {
    assert_eq!((a.height(), a.width()), (b.height(), b.width()), "{label}");
    let mut worst = 0.0f32;
    for (x, y) in a.tensor().data().iter().zip(b.tensor().data().iter()) {
        worst = worst.max((x - y).abs());
    }
    assert!(worst < tol, "{label}: worst |err| = {worst}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline contract: lowered inference matches `super_resolve`
    /// within 1e-4 for every registry method, on random scenes and seeds.
    #[test]
    fn deployed_network_matches_training_path_for_every_method(
        seed in 0u64..10_000,
        size in 6usize..10,
    ) {
        let img = probe_image(size, size, seed);
        for method in cnn_method_registry() {
            let net = srresnet(SrConfig {
                channels: 8,
                blocks: 1,
                scale: 2,
                method,
                seed: seed ^ 0xA5A5,
            })
            .unwrap();
            let deployed = net.lower().unwrap();
            let reference = net.super_resolve(&img).unwrap();
            let fast = deployed.super_resolve(&img).unwrap();
            let label = format!("method {method}, seed {seed}, size {size}");
            prop_assert!(reference.height() == fast.height() && reference.width() == fast.width(),
                "{}: shape mismatch", label);
            let worst = reference
                .tensor()
                .data()
                .iter()
                .zip(fast.tensor().data().iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            prop_assert!(worst < 1e-4, "{}: worst |err| = {}", label, worst);
        }
    }

    /// Tiled serving stitches to exactly the full-image output on
    /// local-only networks, for arbitrary (tile, overlap ≥ receptive
    /// radius) splits and non-divisible image sizes.
    #[test]
    fn tiled_serving_matches_full_image(
        seed in 0u64..10_000,
        h in 12usize..20,
        w in 12usize..20,
        tile in 8usize..13,
    ) {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            // Local-only components: exact stitching (see scales::train::infer docs).
            method: Method::Scales(ScalesComponents::lsf_spatial()),
            seed: seed ^ 0x5A5A,
        })
        .unwrap();
        let deployed = net.lower().unwrap();
        let img = probe_image(h, w, seed);
        let full = deployed.super_resolve(&img).unwrap();
        // Receptive radius: head 1 + body 2 + body-end 1 + tail 1 + bicubic 2 = 7.
        let tiled = super_resolve_tiled_deployed(&deployed, &img, TileSpec::new(tile, 7).unwrap()).unwrap();
        let worst = full
            .tensor()
            .data()
            .iter()
            .zip(tiled.tensor().data().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(worst < 1e-5, "tile {} on {}x{}: worst |err| = {}", tile, h, w, worst);
    }
}

#[test]
fn batched_deployed_serving_matches_per_image() {
    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 1,
        scale: 2,
        method: Method::scales(),
        seed: 404,
    })
    .unwrap();
    let deployed = net.lower().unwrap();
    let images: Vec<_> = (0..3).map(|i| probe_image(8, 8, 600 + i)).collect();
    let batched = super_resolve_batch_deployed(&deployed, &images).unwrap();
    for (img, sr) in images.iter().zip(batched.iter()) {
        let single = deployed.super_resolve(img).unwrap();
        assert_images_close(sr, &single, 1e-5, "batched vs single");
    }
}

fn assert_images_identical(a: &scales::data::Image, b: &scales::data::Image, label: &str) {
    assert_eq!((a.height(), a.width()), (b.height(), b.width()), "{label}");
    let (da, db) = (a.tensor().data(), b.tensor().data());
    for (i, (x, y)) in da.iter().zip(db.iter()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label}: value {i} differs bitwise: {x} vs {y}"
        );
    }
}

/// `Session::infer` must be bit-identical to `super_resolve_batch` /
/// `super_resolve_batch_deployed` for every CNN method in the registry.
#[test]
fn engine_batch_is_bit_identical_to_legacy_for_every_method() {
    let images: Vec<_> = (0..2).map(|i| probe_image(8, 8, 700 + i)).collect();
    for method in cnn_method_registry() {
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 31 }).unwrap();

        let legacy = super_resolve_batch(&net, &images).unwrap();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let served = engine.session().infer(SrRequest::batch(images.clone())).unwrap();
        for (a, b) in legacy.iter().zip(served.images()) {
            assert_images_identical(a, b, &format!("training batch, {method}"));
        }

        let deployed = net.lower().unwrap();
        let legacy = super_resolve_batch_deployed(&deployed, &images).unwrap();
        let engine =
            Engine::builder().model_ref(&deployed).precision(Precision::Deployed).build().unwrap();
        let served = engine.session().infer(SrRequest::batch(images.clone())).unwrap();
        for (a, b) in legacy.iter().zip(served.images()) {
            assert_images_identical(a, b, &format!("deployed batch, {method}"));
        }
    }
}

/// `Session::infer` with a fixed tile policy must be bit-identical to
/// `super_resolve_tiled` / `super_resolve_tiled_deployed`.
#[test]
fn engine_tiled_is_bit_identical_to_legacy_for_every_method() {
    let img = probe_image(14, 11, 808);
    let spec = TileSpec::new(6, 4).unwrap();
    for method in cnn_method_registry() {
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 32 }).unwrap();

        let legacy = super_resolve_tiled(&net, &img, spec).unwrap();
        let engine = Engine::builder()
            .model_ref(&net)
            .precision(Precision::Training)
            .tile_policy(TilePolicy::Fixed(spec))
            .build()
            .unwrap();
        assert_images_identical(
            &legacy,
            &engine.session().super_resolve(&img).unwrap(),
            &format!("training tiled, {method}"),
        );

        let deployed = net.lower().unwrap();
        let legacy = super_resolve_tiled_deployed(&deployed, &img, spec).unwrap();
        let engine = Engine::builder()
            .model_ref(&deployed)
            .tile_policy(TilePolicy::Fixed(spec))
            .build()
            .unwrap();
        assert_images_identical(
            &legacy,
            &engine.session().super_resolve(&img).unwrap(),
            &format!("deployed tiled, {method}"),
        );
    }
}

/// The SIMD backend must serve bit-identically to the scalar backend for
/// every CNN method in the registry, at both precisions: the AVX2 float
/// GEMM keeps the scalar kernel's per-element summation order exactly and
/// the popcount binary GEMM is integer-exact, so `f32::to_bits` equality
/// is the contract, not a tolerance. (On hardware without AVX2 the simd
/// backend degrades toward the scalar loops, so the assertion still holds.)
#[test]
fn simd_backend_serving_is_bit_identical_to_scalar_for_every_method() {
    use scales::tensor::backend::Backend;
    let images: Vec<_> = (0..2).map(|i| probe_image(8, 8, 750 + i)).collect();
    for method in cnn_method_registry() {
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 77 }).unwrap();
        for precision in [Precision::Training, Precision::Deployed] {
            let serve = |backend: Backend| {
                Engine::builder()
                    .model_ref(&net)
                    .precision(precision)
                    .backend(backend)
                    .build()
                    .unwrap()
                    .session()
                    .infer(SrRequest::batch(images.clone()))
                    .unwrap()
            };
            let scalar = serve(Backend::Scalar);
            let simd = serve(Backend::Simd);
            assert_eq!(simd.stats().backend, Backend::Simd);
            assert_eq!(simd.stats().simd, Backend::detected());
            for (a, b) in scalar.images().iter().zip(simd.images()) {
                assert_images_identical(a, b, &format!("{precision} simd vs scalar, {method}"));
            }
        }
    }
}

/// `TilePolicy::Auto` must reproduce the full-image output on local-only
/// networks: the oversized image tiles, the small one batches, and both
/// match an untiled engine.
#[test]
fn auto_tile_policy_matches_full_image_serving() {
    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 1,
        scale: 2,
        // Local-only components: exact stitching (receptive radius 7).
        method: Method::Scales(ScalesComponents::lsf_spatial()),
        seed: 33,
    })
    .unwrap();
    let small = probe_image(8, 8, 900);
    let big = probe_image(18, 13, 901);

    let full_engine =
        Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
    let auto_engine = Engine::builder()
        .model_ref(&net)
        .precision(Precision::Deployed)
        .tile_policy(TilePolicy::Auto { max_side: 9, overlap: 7 })
        .build()
        .unwrap();

    let full = full_engine.session();
    let auto = auto_engine.session();
    let response = auto.infer(SrRequest::batch(vec![small.clone(), big.clone()])).unwrap();
    assert_eq!(response.stats().tiled, 1, "only the oversized image tiles");
    assert_eq!(response.stats().batches, 1);

    assert_images_identical(
        &response.images()[0],
        &full.super_resolve(&small).unwrap(),
        "under-threshold image",
    );
    let reference = full.super_resolve(&big).unwrap();
    let tiled = &response.images()[1];
    assert_eq!((tiled.height(), tiled.width()), (reference.height(), reference.width()));
    let worst = reference
        .tensor()
        .data()
        .iter()
        .zip(tiled.tensor().data().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(worst < 1e-5, "auto-tiled vs full image: worst |err| = {worst}");
}

#[test]
fn deployed_matches_training_on_upscale_x4() {
    let img = probe_image(6, 6, 9);
    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 1,
        scale: 4,
        method: Method::scales(),
        seed: 90,
    })
    .unwrap();
    let deployed = net.lower().unwrap();
    assert_images_close(
        &net.super_resolve(&img).unwrap(),
        &deployed.super_resolve(&img).unwrap(),
        1e-4,
        "x4",
    );
}
