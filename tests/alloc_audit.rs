//! Steady-state allocation audit of the planned executor.
//!
//! A counting global allocator wraps the system allocator; after the
//! warm-up forward has built the plan and grown the workspace buffers,
//! `forward_planned` must allocate **nothing but the returned output
//! tensor** (its data vector plus its shape vector). The allocating
//! `forward` path is measured alongside as a contrast, proving the audit
//! would catch a regression.
//!
//! This file holds exactly one test: the counter is process-global, and
//! the default test harness runs tests concurrently — a sibling test's
//! allocations would pollute the deltas.

//! The audit pins the **scalar** backend: the parallel kernel's
//! `std::thread::scope` workers allocate per spawn (thread stacks), which
//! is a property of OS threads, not of the executor — the arena and
//! scratch reuse are backend-independent.

use scales::core::Method;
use scales::models::{srresnet, SrConfig, SrNetwork, Workspace};
use scales::tensor::backend::{self, Backend};
use scales::tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with an allocation-event counter (frees are not
/// counted; the audit is about acquiring memory on the hot path).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_planned_forward_allocates_only_the_output() {
    backend::with_backend(Backend::Scalar, steady_state_audit);
}

fn steady_state_audit() {
    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 2,
        scale: 2,
        method: Method::scales(),
        seed: 90,
    })
    .unwrap();
    let deployed = net.lower().unwrap();
    let batch = Tensor::from_vec(
        (0..3 * 16 * 16).map(|i| ((i as f32) * 0.11).sin() * 0.4 + 0.5).collect(),
        &[1, 3, 16, 16],
    )
    .unwrap();

    let mut ws = Workspace::new();
    // Warm-up: builds the plan, grows the arena slots and every scratch
    // buffer to their steady-state sizes.
    for _ in 0..2 {
        let _ = deployed.forward_planned(&batch, &mut ws).unwrap();
    }

    const REPS: usize = 5;
    let before = allocations();
    for _ in 0..REPS {
        let out = deployed.forward_planned(&batch, &mut ws).unwrap();
        assert_eq!(out.shape(), &[1, 3, 32, 32]);
    }
    let planned_per_call = (allocations() - before) / REPS;
    // The output tensor is the only permitted acquisition: its data
    // vector plus its shape vector.
    assert!(
        planned_per_call <= 2,
        "steady-state planned forward must allocate only the output tensor, \
         got {planned_per_call} allocations per call"
    );

    // Contrast: the allocating executor pays per-op tensors and per-conv
    // buffers on every request — if this were small too, the audit above
    // would be vacuous.
    let before = allocations();
    for _ in 0..REPS {
        let _ = deployed.forward(&batch).unwrap();
    }
    let allocating_per_call = (allocations() - before) / REPS;
    assert!(
        allocating_per_call > 10 * planned_per_call.max(1),
        "expected the allocating forward to allocate far more than the planned one, \
         got {allocating_per_call} vs {planned_per_call}"
    );
}
