//! Property-based tests (proptest) over the core data structures and
//! numerical invariants of the reproduction.

use proptest::prelude::*;
use scales::autograd::Var;
use scales::binary::PackedBits;
use scales::data::{resize_bicubic_tensor, Image};
use scales::metrics::{psnr_tensor, BoxStats};
use scales::tensor::shape::broadcast_shape;
use scales::tensor::Tensor;

fn small_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_dot_matches_float_dot(a in small_values(), b in small_values()) {
        let n = a.len().min(b.len());
        let a = &a[..n];
        let b = &b[..n];
        let sa: Vec<f32> = a.iter().map(|&v| if v >= 0.0 { 1.0 } else { -1.0 }).collect();
        let sb: Vec<f32> = b.iter().map(|&v| if v >= 0.0 { 1.0 } else { -1.0 }).collect();
        let expect: f32 = sa.iter().zip(sb.iter()).map(|(&x, &y)| x * y).sum();
        let dot = PackedBits::from_signs(a).dot(&PackedBits::from_signs(b));
        prop_assert_eq!(dot, expect as i32);
    }

    #[test]
    fn pack_unpack_roundtrip(v in small_values()) {
        let p = PackedBits::from_signs(&v);
        let back = p.to_signs();
        for (orig, sign) in v.iter().zip(back.iter()) {
            prop_assert_eq!(*sign, if *orig >= 0.0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn sign_ste_output_is_plus_minus_one(v in small_values()) {
        let n = v.len();
        let x = Var::new(Tensor::from_vec(v, &[n]).unwrap());
        let y = x.sign_ste().value();
        prop_assert!(y.data().iter().all(|&s| s == 1.0 || s == -1.0));
    }

    #[test]
    fn lsf_output_magnitude_equals_alpha(v in small_values(), alpha in 0.01f32..4.0) {
        let n = v.len();
        let x = Var::new(Tensor::from_vec(v, &[n]).unwrap());
        let a = Var::param(Tensor::from_vec(vec![alpha], &[1]).unwrap());
        let b = Var::param(Tensor::from_vec(vec![0.0], &[1]).unwrap());
        let y = x.lsf_binarize(&a, &b).unwrap().value();
        prop_assert!(y.data().iter().all(|&s| (s.abs() - alpha).abs() < 1e-6));
    }

    #[test]
    fn broadcast_shape_is_commutative_and_idempotent(
        a in prop::collection::vec(1usize..5, 0..4),
        b in prop::collection::vec(1usize..5, 0..4),
    ) {
        let ab = broadcast_shape(&a, &b);
        let ba = broadcast_shape(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x, &y);
                // Broadcasting the result against itself is identity.
                prop_assert_eq!(broadcast_shape(&x, &x).unwrap(), x);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "commutativity violated"),
        }
    }

    #[test]
    fn tensor_reshape_roundtrip(v in small_values()) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]).unwrap();
        let r = t.reshape(&[1, n]).unwrap().reshape(&[n]).unwrap();
        prop_assert_eq!(t, r);
    }

    #[test]
    fn psnr_identity_is_infinite(v in prop::collection::vec(0.0f32..1.0, 4..64)) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]).unwrap();
        prop_assert_eq!(psnr_tensor(&t, &t).unwrap(), f64::INFINITY);
    }

    #[test]
    fn psnr_monotone_in_noise(base in prop::collection::vec(0.2f32..0.8, 16..64), eps in 0.01f32..0.1) {
        let n = base.len();
        let a = Tensor::from_vec(base.clone(), &[n]).unwrap();
        let small = Tensor::from_vec(base.iter().map(|v| v + eps).collect(), &[n]).unwrap();
        let large = Tensor::from_vec(base.iter().map(|v| v + 2.0 * eps).collect(), &[n]).unwrap();
        prop_assert!(psnr_tensor(&a, &small).unwrap() > psnr_tensor(&a, &large).unwrap());
    }

    #[test]
    fn bicubic_preserves_constant_images(c in 0.0f32..1.0, h in 4usize..12, w in 4usize..12) {
        let t = Tensor::full(&[3, h, w], c);
        let up = resize_bicubic_tensor(&t, h * 2, w * 2).unwrap();
        for &v in up.data() {
            prop_assert!((v - c).abs() < 1e-4);
        }
    }

    #[test]
    fn bicubic_preserves_mean_approximately(v in prop::collection::vec(0.0f32..1.0, 48..48 + 1)) {
        // 4x4x3 image upscaled 2x: mean brightness is approximately kept.
        let t = Tensor::from_vec(v, &[3, 4, 4]).unwrap();
        let up = resize_bicubic_tensor(&t, 8, 8).unwrap();
        prop_assert!((t.mean() - up.mean()).abs() < 0.05);
    }

    #[test]
    fn box_stats_are_ordered(v in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let b = BoxStats::from_samples(&v);
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
    }

    #[test]
    fn luma_stays_in_unit_range(v in prop::collection::vec(0.0f32..1.0, 48..48 + 1)) {
        let img = Image::from_tensor(Tensor::from_vec(v, &[3, 4, 4]).unwrap()).unwrap();
        let y = img.to_luma();
        prop_assert!(y.min() >= -1e-5 && y.max() <= 1.0 + 1e-5);
    }

    #[test]
    fn weight_binarizer_preserves_per_channel_l1(v in prop::collection::vec(-3.0f32..3.0, 8..64)) {
        // ŵ = (‖w‖₁/n)·sign(w) has the same per-channel L1 norm as w.
        let n = v.len();
        let w = Var::param(Tensor::from_vec(v.clone(), &[1, n]).unwrap());
        let wb = w.binarize_weight_per_channel().unwrap().value();
        let l1: f32 = v.iter().map(|x| x.abs()).sum();
        let l1b: f32 = wb.data().iter().map(|x| x.abs()).sum();
        prop_assert!((l1 - l1b).abs() < 1e-2 * l1.max(1.0));
    }
}
