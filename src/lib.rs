//! # scales
//!
//! A complete Rust reproduction of **"SCALES: Boost Binary Neural Network
//! for Image Super-Resolution with Efficient Scalings"** (Wei et al.,
//! DATE 2025, arXiv:2303.12270).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | dense f32 tensors, im2col convolution, broadcasting, [`tensor::backend`] kernel dispatch (scalar / parallel) with a register-blocked GEMM microkernel, [`tensor::workspace`] reusable kernel scratch |
//! | [`autograd`] | reverse-mode tape with STE binarization gradients |
//! | [`nn`] | layers, Adam, losses, init |
//! | [`binary`] | bit-packed XNOR-popcount kernels, BNN cost model |
//! | [`core`] | the SCALES method (LSF + spatial/channel re-scaling), baselines, per-layer deployment lowering |
//! | [`models`] | SRResNet/EDSR/RDN/RCAN/SwinIR/HAT zoo + classifier probes + [`models::DeployedNetwork`] whole-network deployment engine + [`models::Plan`]/[`models::Workspace`] planned zero-allocation executor |
//! | [`data`] | synthetic datasets, bicubic resize, image IO, [`data::codec`] hardened wire codecs (binary PPM, stored/fixed-Huffman PNG subset) |
//! | [`io`] | versioned on-disk model artifacts: [`io::save_checkpoint`] / [`io::save_artifact`] and their loaders, served straight from disk via [`serve::EngineBuilder::model_path`] |
//! | [`metrics`] | PSNR/SSIM, activation-variance analysis |
//! | [`serve`] | the serving API: [`serve::Engine`] / [`serve::Session`] — one `infer` entry point for single/batch/tiled requests in training or deployed precision, per-engine backend |
//! | [`runtime`] | the concurrent serving runtime: [`runtime::Runtime`] worker pool over one shared engine, bounded queue with typed backpressure, cross-request dynamic batching, SLO-aware admission control (request deadlines with EDF scheduling, weighted per-tenant lanes + quotas, [`runtime::ShedPolicy`] load shedding), [`runtime::metrics`] with p50/p99 latency, batch-fill and per-tenant counters in [`runtime::RuntimeStats`] |
//! | [`router`] | multi-model serving: [`router::ModelRouter`] fleet of named engines — per-request routing, zero-downtime hot-swap of artifact versions (transient artifact reads retried with bounded backoff), per-model memory accounting with LRU eviction |
//! | [`http`] | the network edge: [`http::HttpServer`], a std-only HTTP/1.1 front end over the runtime or a model fleet — hardened parser, `POST /v1/upscale` and `/v1/models/{name}/...` wire-image round trips with `X-Scales-Tenant` / `X-Scales-Deadline-Ms` SLO headers and typed 429/503/504 overload statuses, Prometheus `GET /metrics`, `GET /v1/debug/traces` / `GET /v1/debug/profile` observability endpoints, graceful drain |
//! | [`telemetry`] | request-scoped observability: [`telemetry::RequestId`] trace context (`X-Scales-Request-Id`), eight-stage span attribution in [`telemetry::RequestTrace`], the [`telemetry::FlightRecorder`] ring of recent/slow traces, and [`telemetry::OpProfile`] per-op plan profiles |
//! | `scales-faults` | injectable failure plane for chaos tests: named fault points armed with delay/panic/error actions, compiled into test builds only (the `faults` features) — a release build never links it |
//! | [`train`] | trainer, evaluator, experiment harness (legacy free-function serving wrappers in [`train::infer`]) |
//!
//! ## Serving engine
//!
//! All inference goes through one request-oriented API: build an
//! [`serve::Engine`] (model + precision + backend + tile policy), open a
//! [`serve::Session`], and [`infer`](serve::Session::infer). Deployed
//! precision auto-lowers the network to the packed binary graph and falls
//! back to the training path (with a reported
//! [`core::DeployFallback`]) for architectures without a lowering.
//!
//! ```
//! use scales::core::Method;
//! use scales::models::{srresnet, SrConfig};
//! use scales::serve::{Engine, Precision, SrRequest, TilePolicy};
//!
//! # fn main() -> Result<(), scales::tensor::TensorError> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let engine = Engine::builder()
//!     .model(net)                      // auto-lowered: packed XNOR-popcount body
//!     .precision(Precision::Deployed)
//!     .tile_policy(TilePolicy::auto()) // oversized inputs tile transparently
//!     .build()?;
//! let session = engine.session();
//! let lr = scales::data::Image::zeros(8, 8);
//! let sr = session.infer(SrRequest::batch(vec![lr.clone(), lr]))?;
//! assert_eq!(sr.images()[0].height(), 16);
//! # Ok(())
//! # }
//! ```
//!
//! ## Deployment engine
//!
//! A trained network lowers whole to the packed binary path — the Table VI
//! deployment story, end to end:
//!
//! ```
//! use scales::core::Method;
//! use scales::models::{srresnet, SrConfig, SrNetwork};
//!
//! # fn main() -> Result<(), scales::tensor::TensorError> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let deployed = net.lower()?; // packed XNOR-popcount body convs
//! let lr = scales::data::Image::zeros(8, 8);
//! let sr = deployed.super_resolve(&lr)?; // matches net.super_resolve within 1e-4
//! assert_eq!(sr.height(), 16);
//! # Ok(())
//! # }
//! ```
//!
//! ## Artifacts & persistence
//!
//! Both model forms persist to a versioned little-endian binary format
//! (`scales-io`): a **checkpoint** stores trained f32 weights plus the
//! (architecture, config) pair to rebuild through the [`models::Arch`]
//! registry; a **deployed artifact** stores the packed op graph itself.
//! Either file serves straight from disk, bit-identically to the model
//! that was saved:
//!
//! ```
//! use scales::core::Method;
//! use scales::models::{srresnet, SrConfig, SrNetwork};
//! use scales::serve::Engine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let dir = std::env::temp_dir().join(format!("scales-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! scales::io::save_checkpoint(dir.join("model.sca"), &net)?;       // trained weights
//! scales::io::save_artifact(dir.join("model.dep.sca"), &net.lower()?)?; // packed graph
//! let engine = Engine::builder().model_path(dir.join("model.dep.sca")).build()?;
//! let lr = scales::data::Image::zeros(8, 8);
//! assert_eq!(engine.session().super_resolve(&lr)?.height(), 16);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! Hot loops dispatch through [`tensor::backend`]: a scalar reference
//! kernel and a blocked multi-threaded kernel with identical numerics,
//! selected per engine ([`serve::EngineBuilder::backend`]), by the
//! `parallel` cargo feature, by `SCALES_BACKEND=scalar|parallel`
//! (case-insensitive; unrecognized values are a hard error), or by
//! `tensor::backend::set_backend` at runtime.
//!
//! ```
//! use scales::core::Method;
//! use scales::models::{srresnet, SrConfig, SrNetwork};
//!
//! # fn main() -> Result<(), scales::tensor::TensorError> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let lr = scales::data::Image::zeros(8, 8);
//! assert_eq!(net.super_resolve(&lr)?.height(), 16);
//! # Ok(())
//! # }
//! ```

pub use scales_autograd as autograd;
pub use scales_binary as binary;
pub use scales_core as core;
pub use scales_data as data;
pub use scales_http as http;
pub use scales_io as io;
pub use scales_metrics as metrics;
pub use scales_models as models;
pub use scales_nn as nn;
pub use scales_router as router;
pub use scales_runtime as runtime;
pub use scales_serve as serve;
pub use scales_telemetry as telemetry;
pub use scales_tensor as tensor;
pub use scales_train as train;
