//! Qualitative comparison (paper Fig. 9): side-by-side HR / Bicubic /
//! E2FIF / SCALES panels on a SynUrban100 stripe image, written as PPM
//! files under `target/scales-report/`.
//!
//! ```sh
//! cargo run --release --example visual_compare
//! ```

use scales::core::Method;
use scales::data::{upscale, Benchmark, Image};
use scales::metrics::psnr_y;
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::train::{report_dir, train, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let scale = 2;
    let set = Benchmark::SynUrban100.build(scale, budget.hr_eval.max(32))?;
    let pair = &set.pairs()[0];

    let mut panels: Vec<(String, Image)> = vec![
        ("HR".into(), pair.hr.clone()),
        ("Bicubic".into(), upscale(&pair.lr, scale)?),
    ];
    for method in [Method::E2fif, Method::scales()] {
        let net = srresnet(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale,
            method,
            seed: 1234,
        })?;
        train(&net, budget.train_config(42))?;
        panels.push((method.to_string(), net.super_resolve(&pair.lr)?.clamped()));
    }

    println!("Fig. 9-style comparison (SynUrban100 x{scale}, image 1):");
    for (name, img) in &panels[1..] {
        let p = psnr_y(img, &pair.hr, scale)?;
        println!("  {name:<8} PSNR {p:6.2} dB");
    }
    let refs: Vec<&Image> = panels.iter().map(|(_, i)| i).collect();
    let strip = Image::hstack(&refs)?;
    let path = report_dir().join("fig9_panels.ppm");
    strip.save_pnm(&path)?;
    println!("wrote {} (order: HR | Bicubic | E2FIF | SCALES)", path.display());
    Ok(())
}
