//! The unified serving API end to end: build an `Engine` (model +
//! precision + backend + tile policy), open a `Session`, and serve
//! single, batched and tiled requests through one `infer` entry point.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use scales::core::Method;
use scales::models::{srresnet, swinir, SrConfig};
use scales::serve::{Engine, Precision, SrRequest, TilePolicy};
use scales::tensor::backend::Backend;
use scales::train::{train, TrainConfig};

fn scene(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the published SCALES method briefly on the lite profile.
    let config = SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 7 };
    let net = srresnet(config)?;
    let stats = train(
        &net,
        TrainConfig { iters: 30, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 7 },
    )?;
    println!("trained 30 steps: loss {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);

    // 2. Build the serving engine: deployed precision auto-lowers the
    //    whole network to the packed binary graph; the backend handle and
    //    tile policy are engine state, not process state.
    let engine = Engine::builder()
        .model(net)
        .precision(Precision::Deployed)
        .backend(Backend::Parallel)
        .tile_policy(TilePolicy::auto()) // LR sides above 64 px tile transparently
        .build()?;
    println!(
        "engine: precision={} backend={} packed_layers={}",
        engine.precision(),
        engine.backend().name(),
        engine.lowered().map_or(0, scales::models::DeployedNetwork::packed_layers),
    );

    // 3. One entry point serves everything. A mixed-size batch: same-sized
    //    images are micro-batched per shape bucket, the oversized one is
    //    split -> forward -> stitched.
    let session = engine.session();
    let request = SrRequest::batch(vec![
        scene(24, 24, 1),
        scene(24, 24, 2), // same bucket as the first
        scene(32, 20, 3), // its own bucket
        scene(96, 72, 4), // above the auto threshold: tiled
    ]);
    let response = session.infer(request)?;
    let s = response.stats();
    println!(
        "served {} images: {} micro-batches, {} tiled, precision={}, backend={}",
        s.images,
        s.batches,
        s.tiled,
        s.precision,
        s.backend.name()
    );
    for (i, sr) in response.images().iter().enumerate() {
        println!("  image {i}: -> {}x{}", sr.height(), sr.width());
    }

    // 4. Per-request overrides: force full-image serving for one request.
    let exact = session.infer(SrRequest::single(scene(96, 72, 4)).tile_policy(TilePolicy::Off))?;
    println!("override: full-image forward of {}x{}", 96, 72);
    assert_eq!(exact.stats().tiled, 0);
    println!("session totals: {} requests, {} images", session.requests(), session.images_served());

    // 5. Unsupported architectures degrade gracefully: the transformer
    //    family has no deployment lowering, so a Deployed engine falls
    //    back to the training path and says why.
    let swin = swinir(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::FullPrecision, seed: 9 })?;
    let fallback_engine =
        Engine::builder().model(swin).precision(Precision::Deployed).build()?;
    println!(
        "transformer engine: requested={} serving={} ({})",
        fallback_engine.requested_precision(),
        fallback_engine.precision(),
        fallback_engine.fallback().map_or_else(|| "no fallback".into(), ToString::to_string),
    );
    Ok(())
}
