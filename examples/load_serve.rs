//! Serving under load, end to end: train a lite SCALES network, lower it
//! into a deployed engine, put a `scales::runtime` worker pool in front
//! of it, drive concurrent mixed-size traffic from several submitter
//! threads, and read the final `RuntimeStats` — throughput, batch fill,
//! queue high-water, and p50/p99 latency.
//!
//! ```sh
//! cargo run --release --example load_serve
//! ```

use scales::core::Method;
use scales::models::{srresnet, SrConfig};
use scales::runtime::{Runtime, RuntimeConfig, SubmitError};
use scales::serve::{Engine, Precision, SrRequest};
use scales::train::{train, TrainConfig};
use std::time::Duration;

fn scene(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train briefly, then build the deployed serving engine (packed
    //    binary body, planned zero-allocation executor).
    let config = SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 7 };
    let net = srresnet(config)?;
    let stats = train(
        &net,
        TrainConfig { iters: 30, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 7 },
    )?;
    println!("trained 30 steps: loss {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);
    let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;

    // 2. Spawn the worker pool. Each worker owns a private session (plan
    //    cache + workspace); the bounded queue gives explicit
    //    backpressure; the batcher coalesces compatible requests for up
    //    to `max_wait`.
    let runtime = Runtime::spawn(
        engine,
        RuntimeConfig {
            workers: 4,
            queue_capacity: 32,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..RuntimeConfig::default()
        },
    )?;
    println!("runtime: {} workers over one shared engine", runtime.workers());

    // 3. Concurrent mixed-size traffic: three submitter threads, each a
    //    stream of single-image requests of rotating sizes — exactly the
    //    many-small-callers pattern cross-request batching exists for.
    let sizes = [(16usize, 16usize), (24, 24), (16, 24)];
    std::thread::scope(|scope| {
        let runtime = &runtime;
        for t in 0..3u64 {
            scope.spawn(move || {
                for i in 0..20u64 {
                    let (h, w) = sizes[(t as usize + i as usize) % sizes.len()];
                    // submit_wait blocks for queue space: a slow consumer
                    // throttles producers instead of erroring.
                    match runtime.submit_wait(SrRequest::single(scene(h, w, t * 100 + i))) {
                        Ok(ticket) => {
                            let response = ticket.wait().expect("serving failed");
                            assert_eq!(response.images()[0].height(), h * 2);
                        }
                        Err(SubmitError::ShuttingDown) => return,
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    // 4. Graceful shutdown: drain, join, and report.
    let final_stats = runtime.shutdown();
    println!("{final_stats}");
    assert_eq!(final_stats.completed, 60, "every request served");
    assert_eq!(final_stats.failed, 0);
    assert_eq!(final_stats.queue_depth, 0, "queue drained");
    println!(
        "batching saved {} dispatches ({} requests over {} dispatches)",
        final_stats.completed - final_stats.dispatches,
        final_stats.completed,
        final_stats.dispatches
    );
    Ok(())
}
