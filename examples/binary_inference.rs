//! Deployment-path demo: bit-packed XNOR-popcount inference versus the
//! float reference, with the paper's OPs/Params accounting and a wall-clock
//! comparison (the Table VI story on this machine's CPU instead of a
//! Snapdragon 870).
//!
//! ```sh
//! cargo run --release --example binary_inference
//! ```

use scales::binary::count::conv2d_cost;
use scales::binary::BinaryConv2d;
use scales::nn::init::{kaiming_normal, rng};
use scales::tensor::ops::{conv2d, Conv2dSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut r = rng(77);
    let (c, h, w) = (16, 32, 32);
    let weight = kaiming_normal(&[c, c, 3, 3], c * 9, &mut r);
    let input = kaiming_normal(&[1, c, h, w], 1, &mut r);

    // Bit-exactness: the packed kernel must match float conv on ±1 inputs.
    let signs = input.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
    let mut packed = BinaryConv2d::from_float_weight(&weight)?;
    packed.set_scales(vec![1.0; c])?;
    let w_signs = weight.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
    let reference = conv2d(&signs, &w_signs, Conv2dSpec::same(3))?;
    let fast = packed.forward(&signs)?;
    let max_err = fast
        .data()
        .iter()
        .zip(reference.data().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("bit-exactness vs float reference: max |err| = {max_err}");
    assert!(max_err < 1e-4, "packed kernel must be exact");

    // Wall-clock: packed binary vs float convolution.
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = conv2d(&input, &weight, Conv2dSpec::same(3))?;
    }
    let fp_time = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = packed.forward(&input)?;
    }
    let bin_time = t0.elapsed();
    println!("float conv : {:>8.2?} / {reps} reps", fp_time);
    println!("binary conv: {:>8.2?} / {reps} reps", bin_time);

    // The paper's cost model for the same layer.
    let fp_cost = conv2d_cost(c, c, 3, h, w, false, false);
    let bin_cost = conv2d_cost(c, c, 3, h, w, true, false);
    println!("cost model : FP {fp_cost} vs binary {bin_cost}");
    println!(
        "effective OPs ratio = {:.1}x, params ratio = {:.1}x",
        fp_cost.effective_ops() / bin_cost.effective_ops(),
        fp_cost.effective_params() / bin_cost.effective_params()
    );
    Ok(())
}
