//! Component ablation (paper Table V): E2FIF baseline vs LSF vs
//! LSF + channel re-scale vs LSF + spatial re-scale vs full SCALES, on
//! SRResNet ×4, reporting OPs (on a 128×128 input like the paper) and
//! PSNR/SSIM.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use scales::core::{Method, ScalesComponents};
use scales::data::Benchmark;
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::train::{evaluate, train, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let scale = 4;
    let rows = [
        Method::E2fif,
        Method::Scales(ScalesComponents::lsf_only()),
        Method::Scales(ScalesComponents::lsf_channel()),
        Method::Scales(ScalesComponents::lsf_spatial()),
        Method::scales(),
    ];
    let set5 = Benchmark::SynSet5.build(scale, budget.hr_eval)?;
    let urban = Benchmark::SynUrban100.build(scale, budget.hr_eval)?;

    println!("Table V — effect of SCALES components (SRResNet x{scale})");
    println!(
        "{:<16} {:>8}  {:>14}  {:>14}",
        "Method", "OPs", "SynSet5", "SynUrban100"
    );
    for method in rows {
        let net = srresnet(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale,
            method,
            seed: 1234,
        })?;
        train(&net, budget.train_config(42))?;
        let s5 = evaluate(&net, &set5)?;
        let ur = evaluate(&net, &urban)?;
        // The paper computes Table V OPs on a 128×128 input image.
        let ops = net.cost(128, 128).ops_display();
        println!(
            "{:<16} {:>8}  {:>6.2} {:>6.3}  {:>6.2} {:>6.3}",
            method.to_string(),
            ops,
            s5.psnr,
            s5.ssim,
            ur.psnr,
            ur.ssim
        );
    }
    println!("\n(budget: {budget:?}; raise SCALES_BENCH_ITERS for sharper separation)");
    Ok(())
}
