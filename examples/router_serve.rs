//! A model fleet, end to end: two deployed SCALES networks behind one
//! `scales::router::ModelRouter` — one loaded from an on-disk artifact,
//! one registered in memory — served over HTTP by name, hot-swapped to a
//! new artifact version with zero downtime while a client hammers the
//! route, and scraped for per-model Prometheus series.
//!
//! ```sh
//! cargo run --release --example router_serve
//! ```

use scales::core::Method;
use scales::data::codec::encode_image;
use scales::data::WireFormat;
use scales::http::{HttpConfig, HttpServer};
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::router::{ModelRouter, RouterConfig};
use scales::runtime::RuntimeConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scene(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

fn net(seed: u64) -> impl SrNetwork {
    srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
        .expect("srresnet config is valid")
}

/// Minimal client-side response read: status + `Content-Length` body.
fn read_response(stream: &mut TcpStream) -> Result<(u16, Vec<u8>), Box<dyn std::error::Error>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err("server closed mid-response".into());
        }
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head)?;
    let status: u16 = text.split(' ').nth(1).ok_or("no status code")?.parse()?;
    let length: usize = text
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))
        .map_or(Ok(0), |v| v.parse())?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((status, body))
}

/// One-shot request over a fresh connection.
fn send(addr: SocketAddr, raw: &[u8]) -> Result<(u16, Vec<u8>), Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(raw)?;
    read_response(&mut stream)
}

fn post(path: &str, payload: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: fleet\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        WireFormat::Ppm.content_type(),
        payload.len()
    )
    .into_bytes();
    raw.extend_from_slice(payload);
    raw
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two deployed models: "photo" persisted as an on-disk artifact
    //    (reloadable, evictable), "pixel" registered straight from memory
    //    (pinned resident).
    let dir = std::env::temp_dir().join(format!("scales-router-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let artifact = dir.join("photo.dep.sca");
    scales::io::save_artifact(&artifact, &net(11).lower()?)?;

    let router = ModelRouter::new(RouterConfig {
        memory_budget: None,
        runtime: RuntimeConfig { workers: 2, ..RuntimeConfig::default() },
        ..RouterConfig::default()
    })?;
    let photo = router.register_path("photo", &artifact)?;
    router.register_model("pixel", net(22).lower()?)?;
    println!(
        "registered photo v{} (fingerprint {:016x}, {} weight bytes) and pinned pixel",
        photo.version, photo.fingerprint, photo.weight_bytes
    );

    // 2. The HTTP front end in fleet mode.
    let server = HttpServer::bind_router("127.0.0.1:0", router.clone(), HttpConfig::default())?;
    let addr = server.addr();
    println!("serving the fleet on http://{addr}");

    // 3. List the fleet, then upscale through each model by name.
    let (status, body) = send(addr, b"GET /v1/models HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n")?;
    assert_eq!(status, 200, "fleet listing");
    println!("\nGET /v1/models\n  {}", String::from_utf8_lossy(&body).trim());

    let lr = scene(24, 32, 42);
    let payload = encode_image(&lr, WireFormat::Ppm)?;
    for name in ["photo", "pixel"] {
        let (status, body) = send(addr, &post(&format!("/v1/models/{name}/upscale"), &payload))?;
        assert_eq!(status, 200, "{name} upscale: {}", String::from_utf8_lossy(&body));
        println!("POST /v1/models/{name}/upscale -> 200 ({} bytes)", body.len());
    }

    // 4. Hot-swap "photo" to a new artifact version with zero downtime:
    //    a client thread hammers the route through the swap, and every
    //    one of its requests must be served.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        let payload = payload.clone();
        std::thread::spawn(move || -> Result<u64, String> {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = send(addr, &post("/v1/models/photo/upscale", &payload))
                    .map_err(|e| e.to_string())?;
                if status != 200 {
                    return Err(format!("HTTP {status}: {}", String::from_utf8_lossy(&body)));
                }
                served += 1;
            }
            Ok(served)
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    scales::io::save_artifact(&artifact, &net(33).lower()?)?;
    let (status, body) = send(
        addr,
        b"POST /v1/models/photo/reload HTTP/1.1\r\nHost: fleet\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    )?;
    assert_eq!(status, 200, "reload: {}", String::from_utf8_lossy(&body));
    println!("\nPOST /v1/models/photo/reload\n  {}", String::from_utf8_lossy(&body).trim());
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let served = hammer.join().expect("client thread").map_err(|e| -> Box<dyn std::error::Error> {
        format!("a request failed during the hot-swap: {e}").into()
    })?;
    let swapped = router.model("photo")?;
    println!(
        "hot-swapped under load: {served} client requests served, photo now v{} \
         (fingerprint {:016x}, {} swap)",
        swapped.version, swapped.fingerprint, swapped.swaps
    );
    assert_eq!(swapped.version, 2);
    assert_ne!(swapped.fingerprint, photo.fingerprint, "the new version is a new artifact");

    // 5. Scrape the per-model Prometheus series.
    let (status, body) =
        send(addr, b"GET /metrics HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n")?;
    assert_eq!(status, 200, "metrics scrape");
    let text = String::from_utf8(body)?;
    println!("\n/metrics highlights:");
    for line in text.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("scales_model_requests_completed_total")
                || l.starts_with("scales_model_version")
                || l.starts_with("scales_model_swaps_total")
                || l.starts_with("scales_model_memory_bytes"))
    }) {
        println!("  {line}");
    }

    // 6. Graceful shutdown drains every model and reports the fleet's
    //    merged serving record.
    let merged = server.shutdown();
    println!("\nshutdown: {} completed, {} failed across the fleet", merged.completed, merged.failed);
    assert_eq!(merged.failed, 0, "zero failures through registration, routing, and the swap");
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
