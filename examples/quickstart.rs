//! Quickstart: build a binary SRResNet with SCALES, train it for a few
//! hundred iterations on synthetic data, and super-resolve an image.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scales::core::Method;
use scales::data::Benchmark;
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::train::{evaluate, evaluate_bicubic, train, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 2;
    println!("Building SRResNet-SCALES (x{scale}, 1-bit body)...");
    let net = srresnet(SrConfig {
        channels: 16,
        blocks: 2,
        scale,
        method: Method::scales(),
        seed: 1,
    })?;
    let cost = net.cost(640, 360);
    println!("  cost on a 1280x720 HR target: {cost}");

    println!("Training with the paper's protocol (L1 + Adam + LR halving)...");
    let stats = train(
        &net,
        TrainConfig { iters: 250, batch: 4, lr_patch: 12, lr: 2e-3, halve_every: 160, seed: 7 },
    )?;
    println!("  L1 loss: {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);

    let set = Benchmark::SynSet5.build(scale, 32)?;
    let ours = evaluate(&net, &set)?;
    let bicubic = evaluate_bicubic(&set)?;
    println!("SynSet5 x{scale}:");
    println!("  Bicubic        {:6.2} dB / SSIM {:.3}", bicubic.psnr, bicubic.ssim);
    println!("  SRResNet-SCALES {:6.2} dB / SSIM {:.3}", ours.psnr, ours.ssim);

    let sr = net.super_resolve(&set.pairs()[0].lr)?;
    let dir = scales::train::report_dir();
    sr.clamped().save_pnm(&dir.join("quickstart_sr.ppm"))?;
    set.pairs()[0].hr.save_pnm(&dir.join("quickstart_hr.ppm"))?;
    println!("Wrote quickstart_sr.ppm / quickstart_hr.ppm to {}", dir.display());
    Ok(())
}
