//! Train → save → reload in a "fresh process" → serve, bit-identically:
//! the persistence-layer tour.
//!
//! Trains a small binary SCALES SRResNet, saves **both** artifact forms —
//! a checkpoint (trained f32 weights + registry identity) and a deployed
//! artifact (the packed op graph itself) — then drops every in-memory
//! model and serves straight from disk through
//! [`EngineBuilder::model_path`], verifying `f32::to_bits`-identical
//! outputs against the pre-save engine. Ends with the typed error surface
//! a malformed file produces.
//!
//! ```sh
//! cargo run --release --example save_load
//! ```
//!
//! [`EngineBuilder::model_path`]: scales::serve::EngineBuilder::model_path

use scales::core::Method;
use scales::io::{read_kind, save_artifact, save_checkpoint};
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::nn::init::rng;
use scales::serve::{Engine, Precision, SrRequest};
use scales::train::{train, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("scales-save-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let ckpt_path = dir.join("srresnet.ckpt.sca");
    let dep_path = dir.join("srresnet.dep.sca");

    // 1. Train the published SCALES method on the lite profile.
    let config = SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 7 };
    let net = srresnet(config)?;
    let stats = train(
        &net,
        TrainConfig { iters: 30, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 7 },
    )?;
    println!("trained 30 steps: loss {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);

    // 2. Persist both artifact forms.
    save_checkpoint(&ckpt_path, &net)?;
    let lowered = net.lower()?;
    save_artifact(&dep_path, &lowered)?;
    for (label, path) in [("checkpoint", &ckpt_path), ("deployed artifact", &dep_path)] {
        println!(
            "saved {label:<17} {:>8} bytes  kind={}",
            std::fs::metadata(path)?.len(),
            read_kind(path)?,
        );
    }

    // 3. Reference outputs from the in-memory model, then drop it: from
    //    here on the "process" holds no model state — only file paths.
    let images = vec![
        scales::data::synth::scene(16, 16, scales::data::synth::SceneConfig::default(), &mut rng(1)),
        scales::data::synth::scene(12, 20, scales::data::synth::SceneConfig::default(), &mut rng(2)),
    ];
    let reference: Vec<_> = {
        let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;
        engine.session().infer(SrRequest::batch(images.clone()))?.into_images()
    };
    drop(lowered);
    println!("dropped every in-memory model; serving from disk only");

    // 4. Serve each artifact straight from disk and verify bit-identity.
    for (label, path) in [("checkpoint", &ckpt_path), ("deployed artifact", &dep_path)] {
        let engine = Engine::builder().model_path(path).build()?;
        let session = engine.session();
        let served = session.infer(SrRequest::batch(images.clone()))?;
        assert_eq!(served.stats().precision, Precision::Deployed);
        let mut identical = true;
        for (a, b) in reference.iter().zip(served.images()) {
            identical &= a
                .tensor()
                .data()
                .iter()
                .zip(b.tensor().data().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        }
        assert!(identical, "{label} must serve bit-identical outputs");
        println!(
            "{label:<17} served {} image(s) in {} micro-batch(es): bit-identical ✓",
            served.stats().images,
            served.stats().batches,
        );
    }

    // 5. Malformed files fail with typed errors, never partial models.
    let truncated = dir.join("truncated.sca");
    let bytes = std::fs::read(&dep_path)?;
    std::fs::write(&truncated, &bytes[..bytes.len() / 2])?;
    match scales::io::load_artifact(&truncated) {
        Err(e) => println!("truncated file rejected: {e}"),
        Ok(_) => unreachable!("a half file must not load"),
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
