//! Reproduce the paper's motivation study (§III): record body activations
//! of EDSR / ResNet / SwinIR / SwinViT on the same probe images and print
//! the Table II variance comparison plus Fig. 3-style distributions.
//!
//! ```sh
//! cargo run --release --example activation_variance
//! ```

use scales::autograd::Var;
use scales::core::Method;
use scales::data::synth::{scene, SceneConfig};
use scales::metrics::{
    pixel_distributions, variance_report, ActivationRecord, Layout,
};
use scales::models::{edsr, swinir, ResNetTiny, Recorder, SrConfig, SrNetwork, SwinVitTiny};
use scales::nn::init::rng;
use scales::tensor::Tensor;

fn probe_images(n: usize, size: usize) -> Vec<Tensor> {
    let mut r = rng(0xF16);
    (0..n)
        .map(|_| {
            scene(size, size, SceneConfig { layers: 4, structure_bias: 0.6 }, &mut r)
                .into_tensor()
                .reshape(&[1, 3, size, size])
                .expect("volume preserved")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let images = probe_images(4, 16);

    // --- SR networks (no BN / LN on the conv path): large variation.
    let edsr_net = edsr(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 21 })?;
    let mut edsr_records = Vec::new();
    for (i, img) in images.iter().enumerate() {
        let mut rec = Recorder::new();
        edsr_net.forward_recorded(&Var::new(img.clone()), &mut rec)?;
        for (l, t) in rec.into_records().into_iter().enumerate() {
            edsr_records.push(ActivationRecord { layer: l, image: i, activation: t });
        }
    }
    let edsr_var = variance_report(&edsr_records, Layout::Chw)?;

    let swin = swinir(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 22 })?;
    let mut swin_records = Vec::new();
    for (i, img) in images.iter().enumerate() {
        let mut rec = Recorder::new();
        swin.forward_recorded(&Var::new(img.clone()), &mut rec)?;
        for (l, t) in rec.into_records().into_iter().enumerate() {
            if t.shape().len() == 3 {
                // conv input [C,H,W]
                swin_records.push(ActivationRecord { layer: l, image: i, activation: t });
            }
        }
    }
    let swin_var = variance_report(&swin_records, Layout::Chw)?;

    // --- Classification networks (BN / LN): squashed variation.
    let resnet = ResNetTiny::new(16, 2, 10, 23);
    let mut res_records = Vec::new();
    for (i, img) in images.iter().enumerate() {
        let mut rec = Recorder::new();
        resnet.forward_recorded(&Var::new(img.clone()), &mut rec)?;
        for (l, t) in rec.into_records().into_iter().enumerate() {
            res_records.push(ActivationRecord { layer: l, image: i, activation: t });
        }
    }
    let res_var = variance_report(&res_records, Layout::Chw)?;

    let vit = SwinVitTiny::new(16, 2, 10, 24);
    let mut vit_records = Vec::new();
    for (i, img) in images.iter().enumerate() {
        let mut rec = Recorder::new();
        vit.forward_recorded(&Var::new(img.clone()), &mut rec)?;
        for (l, t) in rec.into_records().into_iter().enumerate() {
            if t.shape().len() == 2 {
                vit_records.push(ActivationRecord { layer: l, image: i, activation: t });
            }
        }
    }
    let vit_var = variance_report(&vit_records, Layout::Tokens)?;

    println!("Table II — activation variance comparison");
    println!("{:<16} {:>12} {:>12} {:>12} {:>12}", "", "EDSR", "ResNet", "SwinIR", "SwinViT");
    type Sel = fn(&scales::metrics::VarianceReport) -> f64;
    let selectors: [(&str, Sel); 4] = [
        ("chl-to-chl", |v| v.channel),
        ("pixel-to-pixel", |v| v.pixel),
        ("layer-to-layer", |v| v.layer),
        ("image-to-image", |v| v.image),
    ];
    for (label, f) in selectors {
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            label,
            f(&edsr_var),
            f(&res_var),
            f(&swin_var),
            f(&vit_var)
        );
    }

    println!("\nFig. 3(a)-style: per-pixel activation ranges in EDSR (20 pixels, img 1)");
    let first = &edsr_records[0].activation;
    for (i, b) in pixel_distributions(first, 20)?.iter().enumerate() {
        println!("  pixel {:>2}: [{:+.2}, {:+.2}] median {:+.2}", i + 1, b.min, b.max, b.median);
    }
    Ok(())
}
