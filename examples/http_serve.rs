//! Network serving, end to end: train a lite SCALES network, lower it
//! into a deployed engine behind a `scales::runtime` worker pool, put the
//! `scales::http` front end on an ephemeral loopback port, then act as a
//! client — post a PPM over a plain `TcpStream`, check the upscaled
//! reply, scrape `/metrics`, and shut the stack down gracefully.
//!
//! ```sh
//! cargo run --release --example http_serve
//! ```

use scales::core::Method;
use scales::data::codec::{decode_image, encode_image};
use scales::data::WireFormat;
use scales::http::{HttpConfig, HttpServer};
use scales::models::{srresnet, SrConfig};
use scales::runtime::{Runtime, RuntimeConfig};
use scales::serve::{Engine, Precision};
use scales::train::{train, TrainConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn scene(h: usize, w: usize, seed: u64) -> scales::data::Image {
    scales::data::synth::scene(
        h,
        w,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(seed),
    )
}

/// Minimal client-side response read: status line + headers +
/// `Content-Length` body.
fn read_response(stream: &mut TcpStream) -> Result<(u16, Vec<u8>), Box<dyn std::error::Error>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err("server closed mid-response".into());
        }
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head)?;
    let status: u16 = text.split(' ').nth(1).ok_or("no status code")?.parse()?;
    let length: usize = text
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))
        .map_or(Ok(0), |v| v.parse())?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((status, body))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train briefly, then build the deployed serving engine.
    let config = SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 7 };
    let net = srresnet(config)?;
    let stats = train(
        &net,
        TrainConfig { iters: 30, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 7 },
    )?;
    println!("trained 30 steps: loss {:.4} -> {:.4}", stats.initial_loss, stats.final_loss);
    let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;

    // 2. Worker pool + HTTP front end on an ephemeral loopback port.
    let runtime = Runtime::spawn(
        engine,
        RuntimeConfig { workers: 2, ..RuntimeConfig::default() },
    )?;
    let server = HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default())?;
    let addr = server.addr();
    println!("serving on http://{addr}");

    // 3. Be the client: post a PPM-encoded low-resolution image.
    let lr = scene(24, 32, 42);
    let payload = encode_image(&lr, WireFormat::Ppm)?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(
        format!(
            "POST /v1/upscale HTTP/1.1\r\nHost: localhost\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            WireFormat::Ppm.content_type(),
            payload.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(&payload)?;
    let (status, body) = read_response(&mut stream)?;
    if status != 200 {
        return Err(format!("upscale failed: HTTP {status}: {}", String::from_utf8_lossy(&body))
            .into());
    }
    let (upscaled, format) = decode_image(&body)?;
    println!(
        "posted {}x{} {} ({} bytes) -> received {}x{} ({} bytes)",
        lr.width(),
        lr.height(),
        format,
        payload.len(),
        upscaled.width(),
        upscaled.height(),
        body.len()
    );
    assert_eq!(upscaled.height(), lr.height() * 2, "x2 super-resolution");
    assert_eq!(upscaled.width(), lr.width() * 2);

    // 4. Scrape /metrics like a Prometheus agent would.
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")?;
    let (status, body) = read_response(&mut stream)?;
    assert_eq!(status, 200, "metrics scrape");
    let text = String::from_utf8(body)?;
    println!("\n/metrics highlights:");
    for line in text.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("scales_runtime_requests_completed_total")
                || l.starts_with("scales_runtime_request_latency_seconds_count")
                || l.starts_with("scales_http_"))
    }) {
        println!("  {line}");
    }
    assert!(
        text.contains("scales_runtime_requests_completed_total 1"),
        "the upscale request must be counted"
    );

    // 5. Graceful shutdown drains the stack and reports the record.
    let final_stats = server.shutdown();
    println!(
        "\nshutdown: {} completed, {} failed, p99 {:?}",
        final_stats.completed, final_stats.failed, final_stats.latency.p99()
    );
    assert_eq!(final_stats.failed, 0);
    Ok(())
}
