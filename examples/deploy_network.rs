//! Train → lower → packed whole-network inference: the deployment-engine
//! workflow end to end.
//!
//! Trains a small binary SCALES SRResNet for a few steps, lowers the whole
//! network to a [`DeployedNetwork`] (packed XNOR-popcount body convs, raw
//! float head/tail/skips), verifies the numerical-equivalence contract
//! against the training path, then compares serving latency and runs tiled
//! inference on a larger image.
//!
//! ```sh
//! cargo run --release --example deploy_network
//! ```
//!
//! [`DeployedNetwork`]: scales::models::DeployedNetwork

use scales::core::Method;
use scales::models::{srresnet, SrConfig, SrNetwork};
use scales::nn::init::rng;
use scales::serve::{Engine, SrRequest, TilePolicy, TileSpec};
use scales::tensor::backend;
use scales::train::{train, TrainConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the published SCALES method on the lite profile.
    let config = SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::scales(), seed: 7 };
    let net = srresnet(config)?;
    let stats = train(&net, TrainConfig { iters: 30, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1_000, seed: 7 })?;
    println!("trained {} steps: loss {:.4} -> {:.4}", 30, stats.initial_loss, stats.final_loss);

    // 2. Lower the whole network to the packed deployment engine.
    let deployed = net.lower()?;
    println!(
        "lowered {} ({} ops, {} packed binary layers, backend: {})",
        deployed.name(),
        deployed.num_ops(),
        deployed.packed_layers(),
        backend::active().name(),
    );

    // 3. Numerical-equivalence contract: deployed == training path.
    let lr_img =
        scales::data::synth::scene(24, 24, scales::data::synth::SceneConfig::default(), &mut rng(3));
    let reference = net.super_resolve(&lr_img)?;
    let fast = deployed.super_resolve(&lr_img)?;
    let worst = reference
        .tensor()
        .data()
        .iter()
        .zip(fast.tensor().data().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("equivalence vs training path: worst |err| = {worst:.2e}");
    assert!(worst < 1e-4, "deployment must match training within 1e-4");

    // 4. Serving latency: training path vs deployed engine.
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = net.super_resolve(&lr_img)?;
    }
    let train_time = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = deployed.super_resolve(&lr_img)?;
    }
    let deploy_time = t0.elapsed();
    println!("training path: {train_time:>8.2?} / {reps} reps");
    println!("deployed     : {deploy_time:>8.2?} / {reps} reps");

    // 5. Tiled serving for large inputs, through the unified engine API:
    //    split -> forward -> stitch behind one `Session::infer` call.
    let big = scales::data::synth::scene(48, 48, scales::data::synth::SceneConfig::default(), &mut rng(4));
    let engine = Engine::builder()
        .model(deployed)
        .tile_policy(TilePolicy::Fixed(TileSpec::new(16, 8)?))
        .build()?;
    let sr = engine.session().infer(SrRequest::single(big.clone()))?;
    let sr = &sr.images()[0];
    println!("tiled serving: {}x{} -> {}x{}", big.height(), big.width(), sr.height(), sr.width());
    Ok(())
}
