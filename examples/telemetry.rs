//! The observability layer, end to end: serve a deployed engine behind
//! the HTTP front end with the per-op profiler switched on, post a
//! *traced* upscale (client-chosen `X-Scales-Request-Id`), then read
//! everything the stack recorded about it — the echoed id, the flight
//! recorder's eight-stage trace, the per-op plan profile, and the
//! per-stage Prometheus histograms.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use scales::core::Method;
use scales::data::codec::encode_image;
use scales::data::WireFormat;
use scales::http::{HttpConfig, HttpServer};
use scales::models::{srresnet, SrConfig};
use scales::runtime::{Runtime, RuntimeConfig};
use scales::serve::{Engine, Precision};
use scales::telemetry::{Stage, STAGES};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Status, lowercased header pairs, and the `Content-Length` body.
type Response = (u16, Vec<(String, String)>, Vec<u8>);

/// Minimal client-side response read: status line + lowercased headers +
/// `Content-Length` body.
fn read_response(stream: &mut TcpStream) -> Result<Response, Box<dyn std::error::Error>> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err("server closed mid-response".into());
        }
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head[..head.len() - 4])?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next().ok_or("no status line")?.split(' ').nth(1).ok_or("no status")?.parse()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map_or(Ok(0), |(_, v)| v.parse())?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((status, headers, body))
}

fn get(addr: std::net::SocketAddr, target: &str) -> Result<(u16, Vec<u8>), Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let (status, _, body) = read_response(&mut stream)?;
    Ok((status, body))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deployed engine behind the worker pool, profiler ON (the
    //    opt-in knob; `SCALES_PROFILE_OPS=1` sets the same default).
    let net = srresnet(SrConfig {
        channels: 16,
        blocks: 2,
        scale: 2,
        method: Method::scales(),
        seed: 11,
    })?;
    let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;
    let runtime = Runtime::spawn(
        engine,
        RuntimeConfig { workers: 2, profile_ops: true, ..RuntimeConfig::default() },
    )?;
    let server = HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default())?;
    let addr = server.addr();
    println!("serving on http://{addr} (profiler on)");

    // 2. Post a traced upscale: the client picks its own request id.
    let lr = scales::data::synth::scene(
        24,
        32,
        scales::data::synth::SceneConfig::default(),
        &mut scales::nn::init::rng(3),
    );
    let payload = encode_image(&lr, WireFormat::Ppm)?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(
        format!(
            "POST /v1/upscale HTTP/1.1\r\nHost: localhost\r\nX-Scales-Request-Id: example-trace-1\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            WireFormat::Ppm.content_type(),
            payload.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(&payload)?;
    let (status, headers, body) = read_response(&mut stream)?;
    assert_eq!(status, 200, "upscale failed: {}", String::from_utf8_lossy(&body));
    let echoed = headers
        .iter()
        .find(|(n, _)| n == "x-scales-request-id")
        .map(|(_, v)| v.as_str())
        .expect("every response echoes the trace id");
    assert_eq!(echoed, "example-trace-1", "a valid client id is echoed verbatim");
    println!("upscaled {} bytes, trace id echoed: {echoed}", body.len());

    // 3. The flight recorder has the trace — typed, in-process, with the
    //    eight telescoping stage spans summing exactly to the total.
    let trace = std::iter::repeat_with(|| {
        std::thread::sleep(Duration::from_millis(10));
        server.traces().into_iter().find(|t| t.id.as_str() == "example-trace-1")
    })
    .take(200)
    .flatten()
    .next()
    .expect("the trace must land in the flight recorder");
    println!("\ntrace {} (status {}, total {} ns):", trace.id, trace.status, trace.total_ns);
    for (i, name) in STAGES.iter().enumerate() {
        println!("  {name:<11} {:>12} ns", trace.stage_ns[i]);
    }
    assert_eq!(trace.stage_ns.iter().sum::<u64>(), trace.total_ns, "spans telescope exactly");
    assert!(trace.stage(Stage::Infer) > 0, "the forward must have measurable time");

    // 4. The same trace over the wire, plus the per-op plan profile.
    let (status, traces_doc) = get(addr, "/v1/debug/traces")?;
    assert_eq!(status, 200);
    let traces_doc = String::from_utf8(traces_doc)?;
    assert!(traces_doc.contains("\"id\":\"example-trace-1\""), "wire view has the trace");

    let (status, profile) = get(addr, "/v1/debug/profile")?;
    assert_eq!(status, 200);
    let profile = String::from_utf8(profile)?;
    println!("\n/v1/debug/profile:\n  {profile}");
    assert!(profile.contains("\"op\":\"body_conv\""), "the profiler names the binary convs");

    // 5. And the scrape carries the per-stage histograms on both sides
    //    of the queue plus the per-op series.
    let (status, metrics) = get(addr, "/metrics")?;
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics)?;
    println!("/metrics highlights:");
    for line in metrics.lines().filter(|l| {
        !l.starts_with('#')
            && (l.starts_with("scales_runtime_stage_seconds_count")
                || l.starts_with("scales_http_stage_seconds_count")
                || l.starts_with("scales_plan_op_seconds_total")
                || l.starts_with("scales_build_info"))
    }) {
        println!("  {line}");
    }
    for needle in [
        "scales_runtime_stage_seconds_bucket{stage=\"infer\",le=",
        "scales_http_stage_seconds_bucket{stage=\"decode\",le=",
        "scales_plan_op_calls_total{op=",
        "scales_build_info{version=",
    ] {
        assert!(metrics.contains(needle), "metrics must contain {needle}");
    }

    let final_stats = server.shutdown();
    println!(
        "\nshutdown: {} completed, {} failed, profiled {} op calls",
        final_stats.completed,
        final_stats.failed,
        final_stats.op_profile.total_calls(),
    );
    assert_eq!(final_stats.failed, 0);
    Ok(())
}
