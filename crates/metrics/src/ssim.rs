//! SSIM (Wang et al. 2004) on the Y channel with the standard 11×11
//! Gaussian window, σ = 1.5, K1 = 0.01, K2 = 0.03.

use scales_data::Image;
use scales_tensor::{Result, Tensor, TensorError};

const WINDOW: usize = 11;
const SIGMA: f64 = 1.5;
const K1: f64 = 0.01;
const K2: f64 = 0.03;

fn gaussian_window() -> Vec<f64> {
    let c = (WINDOW / 2) as f64;
    let mut w = Vec::with_capacity(WINDOW * WINDOW);
    for y in 0..WINDOW {
        for x in 0..WINDOW {
            let dy = y as f64 - c;
            let dx = x as f64 - c;
            w.push((-(dx * dx + dy * dy) / (2.0 * SIGMA * SIGMA)).exp());
        }
    }
    let s: f64 = w.iter().sum();
    for v in &mut w {
        *v /= s;
    }
    w
}

/// Mean SSIM between two single-channel `[1, H, W]` tensors in `[0, 1]`,
/// evaluated at every valid (fully-interior) window position.
///
/// # Errors
///
/// Returns an error when shapes differ or the image is smaller than the
/// 11×11 window.
pub fn ssim_tensor(a: &Tensor, b: &Tensor) -> Result<f64> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "ssim",
        });
    }
    if a.rank() != 3 || a.shape()[0] != 1 {
        return Err(TensorError::InvalidArgument("ssim expects [1, H, W] luma tensors".into()));
    }
    let (h, w) = (a.shape()[1], a.shape()[2]);
    if h < WINDOW || w < WINDOW {
        return Err(TensorError::InvalidArgument(format!(
            "image {h}x{w} smaller than the {WINDOW}x{WINDOW} ssim window"
        )));
    }
    let win = gaussian_window();
    let c1 = (K1 * 1.0) * (K1 * 1.0);
    let c2 = (K2 * 1.0) * (K2 * 1.0);
    let mut total = 0.0;
    let mut count = 0usize;
    for y0 in 0..=(h - WINDOW) {
        for x0 in 0..=(w - WINDOW) {
            let mut mu_a = 0.0f64;
            let mut mu_b = 0.0f64;
            let mut aa = 0.0f64;
            let mut bb = 0.0f64;
            let mut ab = 0.0f64;
            for wy in 0..WINDOW {
                for wx in 0..WINDOW {
                    let g = win[wy * WINDOW + wx];
                    let va = f64::from(a.at(&[0, y0 + wy, x0 + wx]));
                    let vb = f64::from(b.at(&[0, y0 + wy, x0 + wx]));
                    mu_a += g * va;
                    mu_b += g * vb;
                    aa += g * va * va;
                    bb += g * vb * vb;
                    ab += g * va * vb;
                }
            }
            let var_a = aa - mu_a * mu_a;
            let var_b = bb - mu_b * mu_b;
            let cov = ab - mu_a * mu_b;
            let s = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
                / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
            total += s;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// SR-protocol SSIM: Y channel with `shave` border pixels removed.
///
/// # Errors
///
/// Returns an error for mismatched sizes or images smaller than the window
/// after shaving.
pub fn ssim_y(sr: &Image, hr: &Image, shave: usize) -> Result<f64> {
    if sr.height() != hr.height() || sr.width() != hr.width() {
        return Err(TensorError::ShapeMismatch {
            lhs: sr.tensor().shape().to_vec(),
            rhs: hr.tensor().shape().to_vec(),
            op: "ssim_y",
        });
    }
    let ya = sr.clamped().to_luma();
    let yb = hr.clamped().to_luma();
    let h = sr.height().saturating_sub(2 * shave);
    let w = sr.width().saturating_sub(2 * shave);
    if h == 0 || w == 0 {
        return Err(TensorError::InvalidArgument("shave removes the whole image".into()));
    }
    let ca = ya.slice_axis(1, shave, h)?.slice_axis(2, shave, w)?;
    let cb = yb.slice_axis(1, shave, h)?.slice_axis(2, shave, w)?;
    ssim_tensor(&ca, &cb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize, f: f32) -> Tensor {
        let mut t = Tensor::zeros(&[1, h, w]);
        for y in 0..h {
            for x in 0..w {
                *t.at_mut(&[0, y, x]) = 0.5 + 0.4 * ((x as f32 * f).sin() * (y as f32 * f).cos());
            }
        }
        t
    }

    #[test]
    fn identical_images_score_one() {
        let t = textured(16, 16, 0.7);
        let s = ssim_tensor(&t, &t).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn noise_lowers_ssim() {
        let a = textured(16, 16, 0.7);
        let b = a.map(|v| (v + 0.15 * (v * 91.0).sin()).clamp(0.0, 1.0));
        let s = ssim_tensor(&a, &b).unwrap();
        assert!(s < 0.99 && s > 0.0, "{s}");
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = textured(16, 16, 0.7);
        let b = textured(16, 16, 0.9);
        let s1 = ssim_tensor(&a, &b).unwrap();
        let s2 = ssim_tensor(&b, &a).unwrap();
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn small_images_rejected() {
        let t = Tensor::zeros(&[1, 8, 8]);
        assert!(ssim_tensor(&t, &t).is_err());
    }

    #[test]
    fn structural_distortion_hurts_more_than_brightness() {
        let a = textured(20, 20, 0.8);
        // Constant brightness offset keeps structure.
        let bright = a.map(|v| (v + 0.03).clamp(0.0, 1.0));
        // Same MSE budget spent destroying structure (shuffle phase).
        let distorted = {
            let mut t = a.clone();
            for y in 0..20 {
                for x in 0..20 {
                    let v = 0.5 + 0.4 * ((x as f32 * 2.3).cos() * (y as f32 * 1.9).sin());
                    *t.at_mut(&[0, y, x]) = 0.7 * t.at(&[0, y, x]) + 0.3 * v;
                }
            }
            t
        };
        let s_b = ssim_tensor(&a, &bright).unwrap();
        let s_d = ssim_tensor(&a, &distorted).unwrap();
        assert!(s_b > s_d, "{s_b} vs {s_d}");
    }
}
