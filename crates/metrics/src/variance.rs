//! Activation-variance analysis — the quantitative backbone of the paper's
//! motivation section (Table II, Figs. 3–5).
//!
//! Protocol (the paper does not spell out its estimator, so we fix one and
//! use it for every network so the *comparison* is apples-to-apples):
//!
//! * **pixel-to-pixel** — per recorded activation, variance across spatial
//!   positions of the per-position channel-mean; averaged over records.
//! * **channel-to-channel** — variance across channels of the per-channel
//!   spatial mean; averaged over records.
//! * **layer-to-layer** — per image, variance across layers of the
//!   per-layer mean activation; averaged over images.
//! * **image-to-image** — per layer, variance across images of the
//!   per-image mean activation; averaged over layers.

use scales_tensor::{Result, Tensor, TensorError};
use std::collections::BTreeMap;

/// One recorded body activation.
#[derive(Debug, Clone)]
pub struct ActivationRecord {
    /// Body layer index (0-based, in forward order).
    pub layer: usize,
    /// Image index within the probe set.
    pub image: usize,
    /// The activation: `[C, H, W]` for CNNs or `[L, C]` for token models.
    pub activation: Tensor,
}

/// Whether an activation tensor is CNN (`[C,H,W]`) or token (`[L,C]`)
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `[C, H, W]`.
    Chw,
    /// `[L, C]` (tokens × channels).
    Tokens,
}

fn split_stats(t: &Tensor, layout: Layout) -> Result<(Vec<f32>, Vec<f32>)> {
    // Returns (per-position channel-means, per-channel position-means).
    match layout {
        Layout::Chw => {
            if t.rank() != 3 {
                return Err(TensorError::RankMismatch { expected: 3, actual: t.rank(), op: "variance chw" });
            }
            let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
            let mut pos = vec![0.0f32; h * w];
            let mut chl = vec![0.0f32; c];
            for (ci, cv) in chl.iter_mut().enumerate() {
                let plane = &t.data()[ci * h * w..(ci + 1) * h * w];
                for (pv, &v) in pos.iter_mut().zip(plane) {
                    *pv += v / c as f32;
                    *cv += v / (h * w) as f32;
                }
            }
            Ok((pos, chl))
        }
        Layout::Tokens => {
            if t.rank() != 2 {
                return Err(TensorError::RankMismatch { expected: 2, actual: t.rank(), op: "variance tokens" });
            }
            let (l, c) = (t.shape()[0], t.shape()[1]);
            let mut pos = vec![0.0f32; l];
            let mut chl = vec![0.0f32; c];
            for (li, pv) in pos.iter_mut().enumerate() {
                let row = &t.data()[li * c..(li + 1) * c];
                for (cv, &v) in chl.iter_mut().zip(row) {
                    *pv += v / c as f32;
                    *cv += v / l as f32;
                }
            }
            Ok((pos, chl))
        }
    }
}

fn variance(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m: f64 = xs.iter().map(|&x| f64::from(x)).sum::<f64>() / xs.len() as f64;
    xs.iter().map(|&x| (f64::from(x) - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// The four variance figures of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceReport {
    /// Channel-to-channel variance.
    pub channel: f64,
    /// Pixel-to-pixel (position-to-position) variance.
    pub pixel: f64,
    /// Layer-to-layer variance.
    pub layer: f64,
    /// Image-to-image variance.
    pub image: f64,
}

/// Compute the Table II report from a set of recorded activations.
///
/// # Errors
///
/// Returns an error for an empty record set or malformed tensors.
pub fn variance_report(records: &[ActivationRecord], layout: Layout) -> Result<VarianceReport> {
    if records.is_empty() {
        return Err(TensorError::InvalidArgument("no activation records".into()));
    }
    let mut pixel_acc = 0.0;
    let mut chl_acc = 0.0;
    // mean activation per (image, layer)
    let mut by_image: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    let mut by_layer: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    for r in records {
        let (pos, chl) = split_stats(&r.activation, layout)?;
        pixel_acc += variance(&pos);
        chl_acc += variance(&chl);
        let mean = r.activation.mean();
        by_image.entry(r.image).or_default().push(mean);
        by_layer.entry(r.layer).or_default().push(mean);
    }
    let n = records.len() as f64;
    let layer = by_image.values().map(|v| variance(v)).sum::<f64>() / by_image.len() as f64;
    let image = by_layer.values().map(|v| variance(v)).sum::<f64>() / by_layer.len() as f64;
    Ok(VarianceReport {
        channel: chl_acc / n,
        pixel: pixel_acc / n,
        layer,
        image,
    })
}

/// Five-number summary of a sample — one "box" of the Fig. 3/4/5 box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f32,
    /// Lower quartile.
    pub q1: f32,
    /// Median.
    pub median: f32,
    /// Upper quartile.
    pub q3: f32,
    /// Maximum.
    pub max: f32,
}

impl BoxStats {
    /// Summarise a sample (empty samples give all-zero stats).
    #[must_use]
    pub fn from_samples(xs: &[f32]) -> Self {
        if xs.is_empty() {
            return Self { min: 0.0, q1: 0.0, median: 0.0, q3: 0.0, max: 0.0 };
        }
        let mut v: Vec<f32> = xs.to_vec();
        v.sort_by(f32::total_cmp);
        let q = |p: f64| -> f32 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = (idx - lo as f64) as f32;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        Self { min: v[0], q1: q(0.25), median: q(0.5), q3: q(0.75), max: *v.last().expect("non-empty") }
    }
}

/// Per-pixel distributions for `n` evenly-sampled spatial positions of a
/// `[C, H, W]` activation — the data behind Fig. 3(a)/(b).
///
/// # Errors
///
/// Returns an error for non-CHW tensors.
pub fn pixel_distributions(activation: &Tensor, n: usize) -> Result<Vec<BoxStats>> {
    if activation.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: activation.rank(), op: "pixel_distributions" });
    }
    let (c, h, w) = (activation.shape()[0], activation.shape()[1], activation.shape()[2]);
    let total = h * w;
    let n = n.min(total).max(1);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let p = k * total / n;
        let sample: Vec<f32> = (0..c).map(|ci| activation.data()[ci * total + p]).collect();
        out.push(BoxStats::from_samples(&sample));
    }
    Ok(out)
}

/// Per-channel distributions for `n` evenly-sampled channels of a
/// `[C, H, W]` activation — the data behind Fig. 3(d).
///
/// # Errors
///
/// Returns an error for non-CHW tensors.
pub fn channel_distributions(activation: &Tensor, n: usize) -> Result<Vec<BoxStats>> {
    if activation.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: activation.rank(), op: "channel_distributions" });
    }
    let (c, hw) = (activation.shape()[0], activation.shape()[1] * activation.shape()[2]);
    let n = n.min(c).max(1);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let ci = k * c / n;
        out.push(BoxStats::from_samples(&activation.data()[ci * hw..(ci + 1) * hw]));
    }
    Ok(out)
}

/// Whole-tensor distribution per record, ordered by layer — the data behind
/// Fig. 3(c) and Fig. 5(c)/(d).
#[must_use]
pub fn layer_distributions(records: &[ActivationRecord]) -> Vec<(usize, BoxStats)> {
    let mut by_layer: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    for r in records {
        by_layer.entry(r.layer).or_default().extend_from_slice(r.activation.data());
    }
    by_layer
        .into_iter()
        .map(|(l, xs)| (l, BoxStats::from_samples(&xs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_sample() {
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn constant_activation_has_zero_variances() {
        let records = vec![
            ActivationRecord { layer: 0, image: 0, activation: Tensor::full(&[2, 2, 2], 3.0) },
            ActivationRecord { layer: 1, image: 0, activation: Tensor::full(&[2, 2, 2], 3.0) },
        ];
        let r = variance_report(&records, Layout::Chw).unwrap();
        assert_eq!(r.channel, 0.0);
        assert_eq!(r.pixel, 0.0);
        assert_eq!(r.layer, 0.0);
        assert_eq!(r.image, 0.0);
    }

    #[test]
    fn layer_variation_detected() {
        // Two layers with very different magnitudes → large layer variance.
        let records = vec![
            ActivationRecord { layer: 0, image: 0, activation: Tensor::full(&[2, 2, 2], 10.0) },
            ActivationRecord { layer: 1, image: 0, activation: Tensor::full(&[2, 2, 2], -10.0) },
        ];
        let r = variance_report(&records, Layout::Chw).unwrap();
        assert!((r.layer - 100.0).abs() < 1e-9);
        assert_eq!(r.pixel, 0.0);
    }

    #[test]
    fn image_variation_detected() {
        let records = vec![
            ActivationRecord { layer: 0, image: 0, activation: Tensor::full(&[2, 2, 2], 1.0) },
            ActivationRecord { layer: 0, image: 1, activation: Tensor::full(&[2, 2, 2], 5.0) },
        ];
        let r = variance_report(&records, Layout::Chw).unwrap();
        assert!((r.image - 4.0).abs() < 1e-9);
    }

    #[test]
    fn channel_vs_pixel_variation_separated() {
        // Channel 0 all zeros, channel 1 all tens: channel variance high,
        // pixel variance zero (every position has the same channel-mean).
        let mut t = Tensor::zeros(&[2, 2, 2]);
        for p in 0..4 {
            t.data_mut()[4 + p] = 10.0;
        }
        let records = vec![ActivationRecord { layer: 0, image: 0, activation: t }];
        let r = variance_report(&records, Layout::Chw).unwrap();
        assert!(r.channel > 20.0);
        assert_eq!(r.pixel, 0.0);
    }

    #[test]
    fn token_layout_supported() {
        let t = Tensor::from_vec(vec![0.0, 0.0, 5.0, 5.0], &[2, 2]).unwrap();
        let records = vec![ActivationRecord { layer: 0, image: 0, activation: t }];
        let r = variance_report(&records, Layout::Tokens).unwrap();
        assert!(r.pixel > 5.0); // token means 0 and 5
        assert_eq!(r.channel, 0.0);
    }

    #[test]
    fn distribution_helpers_shapes() {
        let t = Tensor::from_vec((0..27).map(|i| i as f32).collect(), &[3, 3, 3]).unwrap();
        assert_eq!(pixel_distributions(&t, 5).unwrap().len(), 5);
        assert_eq!(channel_distributions(&t, 2).unwrap().len(), 2);
        let recs = vec![ActivationRecord { layer: 2, image: 0, activation: t }];
        let l = layer_distributions(&recs);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].0, 2);
    }
}
