//! PSNR on the Y channel with border shaving — the standard SR protocol
//! used by the paper's Tables III–VI.

use scales_data::Image;
use scales_tensor::{Result, Tensor, TensorError};

/// Peak signal-to-noise ratio between two tensors of identical shape with
/// values in `[0, 1]`. Returns `f64::INFINITY` for identical inputs.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn psnr_tensor(a: &Tensor, b: &Tensor) -> Result<f64> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "psnr",
        });
    }
    let mse: f64 = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / mse).log10())
}

/// SR-protocol PSNR: Y channel of BT.601 YCbCr, shaving `shave` border
/// pixels (conventionally the SR scale factor) from each side.
///
/// # Errors
///
/// Returns an error when the images differ in size or are smaller than the
/// shave margin.
pub fn psnr_y(sr: &Image, hr: &Image, shave: usize) -> Result<f64> {
    if sr.height() != hr.height() || sr.width() != hr.width() {
        return Err(TensorError::ShapeMismatch {
            lhs: sr.tensor().shape().to_vec(),
            rhs: hr.tensor().shape().to_vec(),
            op: "psnr_y",
        });
    }
    if sr.height() <= 2 * shave || sr.width() <= 2 * shave {
        return Err(TensorError::InvalidArgument(format!(
            "image {}x{} too small for shave {shave}",
            sr.height(),
            sr.width()
        )));
    }
    let ya = sr.clamped().to_luma();
    let yb = hr.clamped().to_luma();
    let h = sr.height() - 2 * shave;
    let w = sr.width() - 2 * shave;
    let ca = ya.slice_axis(1, shave, h)?.slice_axis(2, shave, w)?;
    let cb = yb.slice_axis(1, shave, h)?.slice_axis(2, shave, w)?;
    psnr_tensor(&ca, &cb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_are_infinite() {
        let t = Tensor::full(&[1, 4, 4], 0.5);
        assert_eq!(psnr_tensor(&t, &t).unwrap(), f64::INFINITY);
    }

    #[test]
    fn known_mse_gives_known_psnr() {
        let a = Tensor::zeros(&[1, 2, 2]);
        let b = Tensor::full(&[1, 2, 2], 0.1);
        // MSE = 0.01 → PSNR = 20 dB.
        let p = psnr_tensor(&a, &b).unwrap();
        assert!((p - 20.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Tensor::full(&[1, 8, 8], 0.5);
        let small = a.map(|v| v + 0.01);
        let large = a.map(|v| v + 0.1);
        let p_small = psnr_tensor(&a, &small).unwrap();
        let p_large = psnr_tensor(&a, &large).unwrap();
        assert!(p_small > p_large);
    }

    #[test]
    fn shave_excludes_border_errors() {
        let mut sr = Image::zeros(8, 8);
        let hr = Image::zeros(8, 8);
        // Corrupt only the border.
        for x in 0..8 {
            *sr.pixel_mut(0, 0, x) = 1.0;
        }
        let p = psnr_y(&sr, &hr, 2).unwrap();
        assert_eq!(p, f64::INFINITY);
        let p0 = psnr_y(&sr, &hr, 0).unwrap();
        assert!(p0.is_finite());
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let a = Image::zeros(4, 4);
        let b = Image::zeros(4, 5);
        assert!(psnr_y(&a, &b, 0).is_err());
    }
}
