//! # scales-metrics
//!
//! Image-quality metrics and activation-variance analysis for the SCALES
//! reproduction:
//!
//! * [`psnr_y`] / [`ssim_y`] — the standard SR evaluation protocol (Y
//!   channel of BT.601 YCbCr, shaved borders) used by the paper's
//!   Tables III–VI.
//! * [`variance`] — the pixel/channel/layer/image variance estimators and
//!   box-plot summaries behind the motivation study (Table II, Figs. 3–5).
//!
//! ```
//! use scales_data::Image;
//! use scales_metrics::psnr_y;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let a = Image::zeros(16, 16);
//! assert_eq!(psnr_y(&a, &a, 2)?, f64::INFINITY);
//! # Ok(())
//! # }
//! ```

pub mod psnr;
pub mod ssim;
pub mod variance;

pub use psnr::{psnr_tensor, psnr_y};
pub use ssim::{ssim_tensor, ssim_y};
pub use variance::{
    channel_distributions, layer_distributions, pixel_distributions, variance_report,
    ActivationRecord, BoxStats, Layout, VarianceReport,
};
