//! # scales-autograd
//!
//! Reverse-mode automatic differentiation for the SCALES reproduction.
//!
//! The central type is [`Var`], a shared handle to a tape node. Operations
//! on `Var` build a computation graph; [`Var::backward`] walks it in reverse
//! topological order and accumulates gradients into parameter leaves.
//!
//! Besides the usual arithmetic / activation / convolution ops, the crate
//! provides the binarization operators that make binary-network training
//! possible (see [`ops::binarize`]): clipped and Bi-Real
//! straight-through estimators, the per-channel XNOR-Net weight binarizer,
//! and the paper's layer-wise-scaling-factor binarizer with the Eq. (2)/(3)
//! gradients.
//!
//! ```
//! use scales_autograd::Var;
//! use scales_tensor::Tensor;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let x = Var::param(Tensor::from_vec(vec![0.4, -0.9], &[2])?);
//! let alpha = Var::param(Tensor::from_vec(vec![1.0], &[1])?);
//! let beta = Var::param(Tensor::from_vec(vec![0.0], &[1])?);
//! let y = x.lsf_binarize(&alpha, &beta)?; // SCALES Eq. (1)
//! assert_eq!(y.value().data(), &[1.0, -1.0]);
//! y.sum_all()?.backward()?;
//! assert!(alpha.grad().is_some() && beta.grad().is_some());
//! # Ok(())
//! # }
//! ```

pub mod ops;
mod var;

pub use var::Var;
