//! Reductions and shape-changing ops with gradient rules.

use crate::var::Var;
use scales_tensor::shape::strides;
use scales_tensor::{Result, Tensor};

impl Var {
    /// Sum of all elements, producing a scalar (`[1]`-shaped) node.
    ///
    /// # Errors
    ///
    /// Never fails; `Result` kept for call-site uniformity.
    pub fn sum_all(&self) -> Result<Var> {
        let in_shape = self.shape();
        let value = Tensor::from_vec(vec![self.with_value(Tensor::sum)], &[1])?;
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![Tensor::full(&in_shape, g.data()[0])]
        }))
    }

    /// Mean of all elements, producing a scalar (`[1]`-shaped) node.
    ///
    /// # Errors
    ///
    /// Never fails; `Result` kept for call-site uniformity.
    pub fn mean_all(&self) -> Result<Var> {
        let n = self.len() as f32;
        Ok(self.sum_all()?.scale(1.0 / n))
    }

    /// Sum along one axis, keeping it as extent 1.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Var> {
        let value = self.with_value(|t| t.sum_axis(axis, true))?;
        let in_shape = self.shape();
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            // Broadcast the reduced gradient back across the axis.
            let ones = Tensor::ones(&in_shape);
            vec![ones.zip_map(g, |_, gi| gi).expect("broadcast")]
        }))
    }

    /// Mean along one axis, keeping it as extent 1.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Var> {
        let n = self.shape()[axis] as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / n))
    }

    /// Reshape to an equal-volume shape.
    ///
    /// # Errors
    ///
    /// Returns an error when volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Var> {
        let value = self.with_value(|t| t.reshape(shape))?;
        let in_shape = self.shape();
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.reshape(&in_shape).expect("reshape adjoint")]
        }))
    }

    /// Permute axes; the gradient applies the inverse permutation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<Var> {
        let value = self.with_value(|t| t.permute(perm))?;
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.permute(&inverse).expect("permute adjoint")]
        }))
    }

    /// Slice a window along one axis; the gradient scatters back with zeros
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad axis or window.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Result<Var> {
        let value = self.with_value(|t| t.slice_axis(axis, start, len))?;
        let in_shape = self.shape();
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            let mut full = Tensor::zeros(&in_shape);
            let outer: usize = in_shape[..axis].iter().product();
            let inner: usize = in_shape[axis + 1..].iter().product();
            let ext = in_shape[axis];
            for o in 0..outer {
                for l in 0..len {
                    let src = (o * len + l) * inner;
                    let dst = (o * ext + start + l) * inner;
                    full.data_mut()[dst..dst + inner].copy_from_slice(&g.data()[src..src + inner]);
                }
            }
            vec![full]
        }))
    }

    /// Concatenate along an axis; the gradient splits back.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched shapes or a bad axis.
    pub fn concat(parts: &[&Var], axis: usize) -> Result<Var> {
        let tensors: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = tensors.iter().collect();
        let value = Tensor::concat(&refs, axis)?;
        let extents: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
        let parents: Vec<Var> = parts.iter().map(|&p| p.clone()).collect();
        Ok(Var::from_op(value, parents, move |g| {
            let mut out = Vec::with_capacity(extents.len());
            let mut offset = 0;
            for &e in &extents {
                out.push(g.slice_axis(axis, offset, e).expect("concat adjoint"));
                offset += e;
            }
            out
        }))
    }

    /// Variance along the last axis, keepdim, using the biased (population)
    /// estimator — the LayerNorm convention.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 inputs.
    pub fn var_last_axis(&self) -> Result<Var> {
        let rank = self.shape().len();
        let axis = rank - 1;
        let mean = self.mean_axis(axis)?;
        let centered = self.sub(&mean)?;
        centered.mul(&centered)?.mean_axis(axis)
    }

    /// Broadcast this tensor against a target shape by elementwise addition
    /// of zeros. Gradient reduces back over broadcast axes.
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes do not broadcast.
    pub fn broadcast_like(&self, target: &[usize]) -> Result<Var> {
        let zeros = Var::new(Tensor::zeros(target));
        self.add(&zeros)
    }

    /// Extract the per-axis maximum along the last axis (keepdim), with the
    /// gradient routed to the (first) argmax element — used by stable
    /// softmax.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 inputs.
    pub fn max_last_axis(&self) -> Result<Var> {
        let x = self.value();
        let rank = x.rank();
        let axis = rank - 1;
        let ext = x.shape()[axis];
        let outer: usize = x.shape()[..axis].iter().product();
        let mut out_shape = x.shape().to_vec();
        out_shape[axis] = 1;
        let mut vals = Vec::with_capacity(outer);
        let mut arg = Vec::with_capacity(outer);
        for o in 0..outer {
            let row = &x.data()[o * ext..(o + 1) * ext];
            let (mut bi, mut bv) = (0usize, f32::NEG_INFINITY);
            for (i, &v) in row.iter().enumerate() {
                if v > bv {
                    bv = v;
                    bi = i;
                }
            }
            vals.push(bv);
            arg.push(bi);
        }
        let value = Tensor::from_vec(vals, &out_shape)?;
        let in_shape = x.shape().to_vec();
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            let mut gi = Tensor::zeros(&in_shape);
            for (o, &a) in arg.iter().enumerate() {
                gi.data_mut()[o * ext + a] = g.data()[o];
            }
            vec![gi]
        }))
    }
}

/// Utility shared by stats code: coordinates of a flat index.
#[must_use]
pub fn unravel(index: usize, shape: &[usize]) -> Vec<usize> {
    let st = strides(shape);
    let mut rem = index;
    st.iter()
        .map(|&s| {
            let c = rem / s;
            rem %= s;
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn mean_all_grad_is_uniform() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        let y = a.mean_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let y = a.sum_axis(1).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn reshape_and_permute_grads() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let y = a.permute(&[1, 0]).unwrap().reshape(&[6]).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().shape(), &[2, 3]);
        assert_eq!(a.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn slice_grad_scatters() {
        let a = Var::param(t((0..8).map(|i| i as f32).collect(), &[2, 4]));
        let y = a.slice_axis(1, 1, 2).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(
            a.grad().unwrap().data(),
            &[0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]
        );
    }

    #[test]
    fn concat_grad_splits() {
        let a = Var::param(t(vec![1.0, 2.0], &[1, 2]));
        let b = Var::param(t(vec![3.0], &[1, 1]));
        let y = Var::concat(&[&a, &b], 1).unwrap().scale(2.0).sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[2.0, 2.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn var_last_axis_matches_population_variance() {
        let a = Var::param(t(vec![1.0, 3.0, 2.0, 2.0], &[2, 2]));
        let v = a.var_last_axis().unwrap();
        assert_eq!(v.shape(), vec![2, 1]);
        assert!((v.value().data()[0] - 1.0).abs() < 1e-6);
        assert!((v.value().data()[1]).abs() < 1e-6);
    }

    #[test]
    fn max_last_axis_routes_grad_to_argmax() {
        let a = Var::param(t(vec![1.0, 5.0, 3.0], &[1, 3]));
        let y = a.max_last_axis().unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn unravel_round_trips() {
        assert_eq!(unravel(7, &[2, 3, 4]), vec![0, 1, 3]);
    }
}
