//! Linear-algebra and convolution ops on the tape.

use crate::var::Var;
use scales_tensor::ops::{
    batched_matmul, conv1d, conv1d_backward_input, conv1d_backward_weight, conv2d,
    conv2d_backward_input, conv2d_backward_weight, matmul, Conv2dSpec,
};
use scales_tensor::Result;

impl Var {
    /// Matrix product `[m,k] × [k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix operands or mismatched inner
    /// dimensions.
    pub fn matmul(&self, rhs: &Var) -> Result<Var> {
        let a = self.value();
        let b = rhs.value();
        let value = matmul(&a, &b)?;
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            let ga = matmul(g, &b.transpose().expect("matrix")).expect("shapes fixed");
            let gb = matmul(&a.transpose().expect("matrix"), g).expect("shapes fixed");
            vec![ga, gb]
        }))
    }

    /// Batched matrix product `[b,m,k] × [b,k,n] → [b,m,n]` — the attention
    /// workhorse.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-3 operands or mismatched dimensions.
    pub fn batched_matmul(&self, rhs: &Var) -> Result<Var> {
        let a = self.value();
        let b = rhs.value();
        let value = batched_matmul(&a, &b)?;
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            let bt = b.permute(&[0, 2, 1]).expect("rank 3");
            let at = a.permute(&[0, 2, 1]).expect("rank 3");
            let ga = batched_matmul(g, &bt).expect("shapes fixed");
            let gb = batched_matmul(&at, g).expect("shapes fixed");
            vec![ga, gb]
        }))
    }

    /// 2-D convolution with the gradient kernels from `scales-tensor`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid geometry.
    pub fn conv2d(&self, weight: &Var, spec: Conv2dSpec) -> Result<Var> {
        let x = self.value();
        let w = weight.value();
        let value = conv2d(&x, &w, spec)?;
        let x_shape = x.shape().to_vec();
        let w_shape = w.shape().to_vec();
        Ok(Var::from_op(value, vec![self.clone(), weight.clone()], move |g| {
            let gi = conv2d_backward_input(g, &w, &x_shape, spec).expect("shapes fixed");
            let gw = conv2d_backward_weight(g, &x, &w_shape, spec).expect("shapes fixed");
            vec![gi, gw]
        }))
    }

    /// 1-D convolution (used by the SCALES channel re-scaling branch).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid geometry.
    pub fn conv1d(&self, weight: &Var, padding: usize) -> Result<Var> {
        let x = self.value();
        let w = weight.value();
        let value = conv1d(&x, &w, padding)?;
        let x_shape = x.shape().to_vec();
        let w_shape = w.shape().to_vec();
        Ok(Var::from_op(value, vec![self.clone(), weight.clone()], move |g| {
            let gi = conv1d_backward_input(g, &w, &x_shape, padding).expect("shapes fixed");
            let gw = conv1d_backward_weight(g, &x, &w_shape, padding).expect("shapes fixed");
            vec![gi, gw]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn matmul_grads() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Var::param(t(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let y = a.matmul(&b).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        // d(sum(A·I))/dA = ones·Iᵀ = ones
        assert_eq!(a.grad().unwrap().data(), &[1.0; 4]);
        // d/dB = Aᵀ·ones
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn conv2d_grad_numeric() {
        let spec = Conv2dSpec::same(3);
        let xv: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let wv: Vec<f32> = (0..9).map(|i| (i as f32 * 0.7).cos()).collect();
        let x = Var::param(t(xv.clone(), &[1, 1, 4, 4]));
        let w = Var::param(t(wv.clone(), &[1, 1, 3, 3]));
        let y = x.conv2d(&w, spec).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let gx = x.grad().unwrap();
        let eps = 1e-2;
        for idx in [0usize, 5, 15] {
            let mut p = xv.clone();
            p[idx] += eps;
            let mut m = xv.clone();
            m[idx] -= eps;
            let f = |v: Vec<f32>| {
                scales_tensor::ops::conv2d(&t(v, &[1, 1, 4, 4]), &t(wv.clone(), &[1, 1, 3, 3]), spec)
                    .unwrap()
                    .sum()
            };
            let num = (f(p) - f(m)) / (2.0 * eps);
            assert!((gx.data()[idx] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn batched_matmul_grads_match_unbatched() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]));
        let b = Var::param(t(vec![5.0, 6.0, 7.0, 8.0], &[1, 2, 2]));
        let y = a.batched_matmul(&b).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let a2 = Var::param(t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b2 = Var::param(t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let y2 = a2.matmul(&b2).unwrap().sum_all().unwrap();
        y2.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), a2.grad().unwrap().data());
        assert_eq!(b.grad().unwrap().data(), b2.grad().unwrap().data());
    }

    #[test]
    fn conv1d_grad_numeric() {
        let xv: Vec<f32> = (0..8).map(|i| (i as f32 * 0.5).sin()).collect();
        let wv = vec![0.2, -0.1, 0.4, 0.3, -0.5];
        let x = Var::param(t(xv.clone(), &[1, 1, 8]));
        let w = Var::param(t(wv.clone(), &[1, 1, 5]));
        let y = x.conv1d(&w, 2).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let gw = w.grad().unwrap();
        let eps = 1e-3;
        for idx in 0..5 {
            let mut p = wv.clone();
            p[idx] += eps;
            let mut m = wv.clone();
            m[idx] -= eps;
            let f = |v: Vec<f32>| {
                scales_tensor::ops::conv1d(&t(xv.clone(), &[1, 1, 8]), &t(v, &[1, 1, 5]), 2)
                    .unwrap()
                    .sum()
            };
            let num = (f(p) - f(m)) / (2.0 * eps);
            assert!((gw.data()[idx] - num).abs() < 1e-2);
        }
    }
}
