//! Differentiable operations on [`Var`](crate::Var), grouped by family.

pub mod activation;
pub mod arith;
pub mod binarize;
pub mod image;
pub mod linalg;
pub mod reduce;

pub use binarize::sign_pos;
pub use reduce::unravel;
