//! Differentiable activation functions.

use crate::var::Var;
use scales_tensor::{Result, Tensor};

impl Var {
    /// Rectified linear unit.
    #[must_use]
    pub fn relu(&self) -> Var {
        let x = self.value();
        let value = x.map(|v| v.max(0.0));
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 }).expect("same shape")]
        })
    }

    /// Leaky rectified linear unit with negative slope `slope`.
    #[must_use]
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let x = self.value();
        let value = x.map(|v| if v > 0.0 { v } else { slope * v });
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g
                .zip_map(&x, |gi, xi| if xi > 0.0 { gi } else { slope * gi })
                .expect("same shape")]
        })
    }

    /// Logistic sigmoid `1/(1+e^{-x})` — the gate used by both SCALES
    /// re-scaling branches.
    #[must_use]
    pub fn sigmoid(&self) -> Var {
        let value = self.with_value(|t| t.map(scales_tensor::ops::sigmoid));
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&y, |gi, yi| gi * yi * (1.0 - yi)).expect("same shape")]
        })
    }

    /// GELU with the tanh approximation (the transformer MLP nonlinearity).
    #[must_use]
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let x = self.value();
        let value = x.map(|v| {
            let inner = C * (v + 0.044_715 * v * v * v);
            0.5 * v * (1.0 + inner.tanh())
        });
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g
                .zip_map(&x, |gi, v| {
                    let u = C * (v + 0.044_715 * v * v * v);
                    let t = u.tanh();
                    let du = C * (1.0 + 3.0 * 0.044_715 * v * v);
                    gi * (0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du)
                })
                .expect("same shape")]
        })
    }

    /// Hyperbolic tangent.
    #[must_use]
    pub fn tanh(&self) -> Var {
        let value = self.with_value(|t| t.map(f32::tanh));
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&y, |gi, yi| gi * (1.0 - yi * yi)).expect("same shape")]
        })
    }

    /// Numerically-stable softmax along the last axis.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 inputs.
    pub fn softmax_last_axis(&self) -> Result<Var> {
        let x = self.value();
        let rank = x.rank();
        if rank == 0 {
            return Err(scales_tensor::TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "softmax",
            });
        }
        let ext = x.shape()[rank - 1];
        let outer = x.len() / ext;
        let mut data = vec![0.0f32; x.len()];
        for o in 0..outer {
            let row = &x.data()[o * ext..(o + 1) * ext];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut s = 0.0;
            for (d, &v) in data[o * ext..(o + 1) * ext].iter_mut().zip(row.iter()) {
                *d = (v - m).exp();
                s += *d;
            }
            for d in &mut data[o * ext..(o + 1) * ext] {
                *d /= s;
            }
        }
        let value = Tensor::from_vec(data, x.shape())?;
        let y = value.clone();
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            // dx = y * (g - sum(g*y, last))
            let mut gi = vec![0.0f32; g.len()];
            for o in 0..outer {
                let yr = &y.data()[o * ext..(o + 1) * ext];
                let gr = &g.data()[o * ext..(o + 1) * ext];
                let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                for ((d, &yv), &gv) in gi[o * ext..(o + 1) * ext].iter_mut().zip(yr).zip(gr) {
                    *d = yv * (gv - dot);
                }
            }
            vec![Tensor::from_vec(gi, y.shape()).expect("same shape")]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn relu_grads() {
        let a = Var::param(t(vec![-1.0, 2.0], &[2]));
        let y = a.relu().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_grad_matches_analytic() {
        let a = Var::param(t(vec![0.0], &[1]));
        let y = a.sigmoid().sum_all().unwrap();
        y.backward().unwrap();
        assert!((a.grad().unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5], &[2, 3]));
        let y = a.softmax_last_axis().unwrap();
        let v = y.value();
        for o in 0..2 {
            let s: f32 = v.data()[o * 3..(o + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_numeric() {
        let x0 = vec![0.3, -0.7, 1.1];
        let a = Var::param(t(x0.clone(), &[1, 3]));
        // Loss = weighted sum of softmax outputs.
        let w = Var::new(t(vec![1.0, 2.0, -1.0], &[1, 3]));
        let y = a.softmax_last_axis().unwrap().mul(&w).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let g = a.grad().unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let f = |xs: &[f32]| {
                let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let e: Vec<f32> = xs.iter().map(|&v| (v - m).exp()).collect();
                let s: f32 = e.iter().sum();
                e[0] / s * 1.0 + e[1] / s * 2.0 - e[2] / s
            };
            let mut xp = x0.clone();
            xp[i] += eps;
            let mut xm = x0.clone();
            xm[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((g.data()[i] - num).abs() < 1e-3, "{} vs {num}", g.data()[i]);
        }
    }

    #[test]
    fn gelu_grad_numeric() {
        let a = Var::param(t(vec![0.5, -1.2], &[2]));
        let y = a.gelu().sum_all().unwrap();
        y.backward().unwrap();
        let g = a.grad().unwrap();
        let f = |v: f32| {
            let c = 0.797_884_6_f32;
            0.5 * v * (1.0 + (c * (v + 0.044_715 * v * v * v)).tanh())
        };
        let eps = 1e-3;
        for (i, &x) in [0.5f32, -1.2].iter().enumerate() {
            let num = (f(x + eps) - f(x - eps)) / (2.0 * eps);
            assert!((g.data()[i] - num).abs() < 1e-3);
        }
    }

    #[test]
    fn tanh_grad() {
        let a = Var::param(t(vec![0.7], &[1]));
        let y = a.tanh().sum_all().unwrap();
        y.backward().unwrap();
        let expect = 1.0 - 0.7f32.tanh().powi(2);
        assert!((a.grad().unwrap().data()[0] - expect).abs() < 1e-6);
    }
}
