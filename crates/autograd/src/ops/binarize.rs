//! Binarization operators with straight-through-estimator gradients.
//!
//! This module implements the paper's core quantizers:
//!
//! * [`Var::sign_ste`] — plain `sign(x)` with the clipped identity STE
//!   (gradient passes where `|x| ≤ 1`), the binarizer used by E2FIF and the
//!   BiBERT-style baselines.
//! * [`Var::sign_ste_bireal`] — `sign(x)` with the Bi-Real Net
//!   piecewise-polynomial STE (`dF/dx = 2 − 2|x|` on `|x| ≤ 1`).
//! * [`Var::lsf_binarize`] — the SCALES activation binarizer of Eq. (1),
//!   `x̂ = α · sign((x − β)/α)`, whose gradients w.r.t. the layer-wise scale
//!   `α` and channel-wise threshold `β` follow the paper's Eq. (2) and
//!   Eq. (3) **verbatim**.
//! * [`Var::binarize_weight_per_channel`] — XNOR-Net weight binarizer
//!   `ŵ = (‖w‖₁/n) · sign(w)` per output channel, with the product-rule STE
//!   gradient through both the sign and the scale.
//!
//! Sign convention: `sign(0) = +1` everywhere, matching the bit-packing in
//! `scales-binary`.

use crate::var::Var;
use scales_tensor::{Result, Tensor, TensorError};

/// Sign with `sign(0) = +1`.
#[inline]
#[must_use]
pub fn sign_pos(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

impl Var {
    /// Binarize to `{−1, +1}` with the clipped identity STE:
    /// `d sign(x)/dx ≈ 1` for `|x| ≤ 1`, else 0.
    #[must_use]
    pub fn sign_ste(&self) -> Var {
        let x = self.value();
        let value = x.map(sign_pos);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g
                .zip_map(&x, |gi, xi| if xi.abs() <= 1.0 { gi } else { 0.0 })
                .expect("same shape")]
        })
    }

    /// Binarize to `{−1, +1}` with the Bi-Real Net polynomial STE:
    /// `d sign(x)/dx ≈ 2 − 2|x|` for `|x| ≤ 1`, else 0.
    #[must_use]
    pub fn sign_ste_bireal(&self) -> Var {
        let x = self.value();
        let value = x.map(sign_pos);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g
                .zip_map(&x, |gi, xi| {
                    let a = xi.abs();
                    if a <= 1.0 {
                        gi * (2.0 - 2.0 * a)
                    } else {
                        0.0
                    }
                })
                .expect("same shape")]
        })
    }

    /// SCALES layer-wise-scaling-factor binarizer (paper Eq. 1):
    ///
    /// ```text
    /// x̂ = α · sign((x − β) / α)
    /// ```
    ///
    /// where `α` is a learnable **layer-wise** scale (shape `[1]`) and `β`
    /// a learnable **channel-wise** threshold whose shape must broadcast
    /// against `x` (e.g. `[1, C, 1, 1]` for NCHW, `[C]` for token tensors).
    ///
    /// Gradients:
    /// * w.r.t. `x` — Bi-Real polynomial STE, `2 − 2|u|` on `|u| ≤ 1` with
    ///   `u = (x − β)/α` (consistent with the paper's Eq. 3, which is its
    ///   negative).
    /// * w.r.t. `α` — the paper's Eq. (2), implemented verbatim.
    /// * w.r.t. `β` — the paper's Eq. (3), implemented verbatim.
    ///
    /// The forward pass guards `α` at a `1e-6` floor so an aggressive
    /// optimizer step cannot produce NaNs.
    ///
    /// # Errors
    ///
    /// Returns an error when `α` is not a single element or `β` does not
    /// broadcast against `x`.
    pub fn lsf_binarize(&self, alpha: &Var, beta: &Var) -> Result<Var> {
        if alpha.len() != 1 {
            return Err(TensorError::InvalidArgument(format!(
                "layer-wise scaling factor must hold one element, got {}",
                alpha.len()
            )));
        }
        let x = self.value();
        let a = alpha.value().data()[0].max(1e-6);
        let b = beta.value();
        // u = (x − β)/α, broadcasting β.
        let u = x.zip_map(&b, |xi, bi| (xi - bi) / a)?;
        let value = u.map(|ui| a * sign_pos(ui));
        let x_shape = x.shape().to_vec();
        let beta_shape = b.shape().to_vec();
        Ok(Var::from_op(
            value,
            vec![self.clone(), alpha.clone(), beta.clone()],
            move |g| {
                // ∂x̂/∂x: Bi-Real triangle on |u| ≤ 1.
                let gx = g
                    .zip_map(&u, |gi, ui| {
                        let au = ui.abs();
                        if au <= 1.0 {
                            gi * (2.0 - 2.0 * au)
                        } else {
                            0.0
                        }
                    })
                    .expect("same shape");
                // ∂x̂/∂α per Eq. (2).
                let dalpha = g
                    .zip_map(&u, |gi, ui| {
                        let d = if ui <= -1.0 {
                            -1.0
                        } else if ui <= 0.0 {
                            -2.0 * ui * ui - 2.0 * ui - 1.0
                        } else if ui <= 1.0 {
                            2.0 * ui * ui - 2.0 * ui + 1.0
                        } else {
                            1.0
                        };
                        gi * d
                    })
                    .expect("same shape");
                let galpha = Tensor::from_vec(vec![dalpha.sum()], &[1]).expect("scalar");
                // ∂x̂/∂β per Eq. (3).
                let dbeta = g
                    .zip_map(&u, |gi, ui| {
                        let d = if ui > -1.0 && ui <= 0.0 {
                            -2.0 - 2.0 * ui
                        } else if ui > 0.0 && ui <= 1.0 {
                            -2.0 + 2.0 * ui
                        } else {
                            0.0
                        };
                        gi * d
                    })
                    .expect("same shape");
                let gbeta = Tensor::reduce_to_shape(&dbeta, &beta_shape).expect("broadcast adjoint");
                let _ = &x_shape;
                vec![gx, galpha, gbeta]
            },
        ))
    }

    /// XNOR-Net per-output-channel weight binarizer:
    ///
    /// ```text
    /// ŵ_c = (‖w_c‖₁ / n_c) · sign(w_c)
    /// ```
    ///
    /// where `c` indexes the first axis (output channels) and `n_c` is the
    /// number of weights per channel. The gradient applies the product rule:
    /// through the sign with the clipped STE, and through the scale exactly.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 weights.
    pub fn binarize_weight_per_channel(&self) -> Result<Var> {
        let w = self.value();
        if w.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0, op: "binarize_weight" });
        }
        let oc = w.shape()[0];
        let per = w.len() / oc;
        let mut scales = vec![0.0f32; oc];
        let mut data = vec![0.0f32; w.len()];
        for c in 0..oc {
            let chunk = &w.data()[c * per..(c + 1) * per];
            let s: f32 = chunk.iter().map(|v| v.abs()).sum::<f32>() / per as f32;
            scales[c] = s;
            for (d, &v) in data[c * per..(c + 1) * per].iter_mut().zip(chunk) {
                *d = s * sign_pos(v);
            }
        }
        let value = Tensor::from_vec(data, w.shape())?;
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            let mut gw = vec![0.0f32; w.len()];
            for c in 0..oc {
                let wc = &w.data()[c * per..(c + 1) * per];
                let gc = &g.data()[c * per..(c + 1) * per];
                // Σ_i g_i · sign(w_i): gradient flowing through the scale.
                let dot: f32 = gc.iter().zip(wc.iter()).map(|(&gi, &wi)| gi * sign_pos(wi)).sum();
                for ((o, &wi), &gi) in gw[c * per..(c + 1) * per].iter_mut().zip(wc).zip(gc) {
                    let through_sign = if wi.abs() <= 1.0 { gi * scales[c] } else { 0.0 };
                    let through_scale = sign_pos(wi) * dot / per as f32;
                    *o = through_sign + through_scale;
                }
            }
            vec![Tensor::from_vec(gw, w.shape()).expect("same shape")]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn sign_values_and_zero_convention() {
        let x = Var::new(t(vec![-0.5, 0.0, 2.0], &[3]));
        assert_eq!(x.sign_ste().value().data(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    fn sign_ste_clips_gradient() {
        let x = Var::param(t(vec![-0.5, 0.3, 2.0], &[3]));
        let y = x.sign_ste().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn bireal_ste_triangle() {
        let x = Var::param(t(vec![-0.5, 0.0, 0.75, 1.5], &[4]));
        let y = x.sign_ste_bireal().sum_all().unwrap();
        y.backward().unwrap();
        let g = x.grad().unwrap();
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
        assert!((g.data()[1] - 2.0).abs() < 1e-6);
        assert!((g.data()[2] - 0.5).abs() < 1e-6);
        assert_eq!(g.data()[3], 0.0);
    }

    #[test]
    fn lsf_forward_matches_eq1() {
        // α = 0.5, β = 0.2: x̂ = 0.5·sign(x − 0.2)
        let x = Var::new(t(vec![0.0, 0.3, -1.0, 0.2], &[4]));
        let alpha = Var::param(t(vec![0.5], &[1]));
        let beta = Var::param(t(vec![0.2], &[1]));
        let y = x.lsf_binarize(&alpha, &beta).unwrap();
        assert_eq!(y.value().data(), &[-0.5, 0.5, -0.5, 0.5]);
    }

    #[test]
    fn lsf_alpha_grad_matches_eq2() {
        // Pick u values hitting each branch: u = (x − β)/α with α=1, β=0.
        let xs = vec![-2.0, -0.5, 0.5, 2.0];
        let x = Var::new(t(xs, &[4]));
        let alpha = Var::param(t(vec![1.0], &[1]));
        let beta = Var::param(t(vec![0.0], &[1]));
        let y = x.lsf_binarize(&alpha, &beta).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        // Eq2: branch values at u = -2, -0.5, 0.5, 2:
        //   -1, (−2·0.25 + 1 − 1) = −0.5, (0.5 − 1 + 1) = 0.5, 1 → sum = 0
        let ga = alpha.grad().unwrap().data()[0];
        assert!((ga - 0.0).abs() < 1e-6, "got {ga}");
    }

    #[test]
    fn lsf_beta_grad_matches_eq3() {
        let xs = vec![-2.0, -0.5, 0.5, 2.0];
        let x = Var::new(t(xs, &[4]));
        let alpha = Var::param(t(vec![1.0], &[1]));
        let beta = Var::param(t(vec![0.0], &[1]));
        let y = x.lsf_binarize(&alpha, &beta).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        // Eq3 at u = -2 → 0; -0.5 → −2+1 = −1; 0.5 → −2+1 = −1; 2 → 0. Sum −2.
        let gb = beta.grad().unwrap().data()[0];
        assert!((gb + 2.0).abs() < 1e-6, "got {gb}");
    }

    #[test]
    fn lsf_beta_broadcasts_per_channel() {
        // x: [1, 2, 1, 2] with per-channel β [1, 2, 1, 1].
        let x = Var::new(t(vec![0.1, 0.3, -0.4, 0.9], &[1, 2, 1, 2]));
        let alpha = Var::param(t(vec![1.0], &[1]));
        let beta = Var::param(t(vec![0.2, 0.0], &[1, 2, 1, 1]));
        let y = x.lsf_binarize(&alpha, &beta).unwrap();
        assert_eq!(y.value().data(), &[-1.0, 1.0, -1.0, 1.0]);
        let loss = y.sum_all().unwrap();
        loss.backward().unwrap();
        assert_eq!(beta.grad().unwrap().shape(), &[1, 2, 1, 1]);
    }

    #[test]
    fn lsf_x_grad_is_triangle() {
        let x = Var::param(t(vec![0.5], &[1]));
        let alpha = Var::new(t(vec![1.0], &[1]));
        let beta = Var::new(t(vec![0.0], &[1]));
        let y = x.lsf_binarize(&alpha, &beta).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert!((x.grad().unwrap().data()[0] - 1.0).abs() < 1e-6); // 2−2·0.5
    }

    #[test]
    fn weight_binarize_scale_is_mean_abs() {
        let w = Var::param(t(vec![1.0, -3.0, 0.5, -0.5], &[2, 2]));
        let y = w.binarize_weight_per_channel().unwrap();
        assert_eq!(y.value().data(), &[2.0, -2.0, 0.5, -0.5]);
    }

    #[test]
    fn weight_binarize_grad_numeric() {
        // Use weights inside (−1, 1) so the clipped STE is active and the
        // analytic product-rule gradient matches a numeric probe of the
        // smoothed surrogate s(w)·w̃ where w̃ = w (STE identity region).
        let wv = vec![0.3, -0.6, 0.2, 0.9];
        let w = Var::param(t(wv.clone(), &[1, 4]));
        let coeff = Var::new(t(vec![1.0, 2.0, -1.0, 0.5], &[1, 4]));
        let y = w.binarize_weight_per_channel().unwrap().mul(&coeff).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let g = w.grad().unwrap();
        // Surrogate f(w) = Σ_i c_i · s(w)·sign(w_i), s = mean|w|.
        // df/dw_j = c_j·s·d sign/dw_j (STE→1) + (sign(w_j)/n)·Σ_i c_i sign(w_i)
        let n = 4.0;
        let s: f32 = wv.iter().map(|v| v.abs()).sum::<f32>() / n;
        let c = [1.0f32, 2.0, -1.0, 0.5];
        let dot: f32 = c.iter().zip(wv.iter()).map(|(&ci, &wi)| ci * sign_pos(wi)).sum();
        for j in 0..4 {
            let expect = c[j] * s + sign_pos(wv[j]) * dot / n;
            assert!((g.data()[j] - expect).abs() < 1e-5, "{} vs {expect}", g.data()[j]);
        }
    }
}
