//! Broadcasting arithmetic ops with their gradient rules.

use crate::var::Var;
use scales_tensor::{Result, Tensor};

impl Var {
    /// Elementwise (broadcasting) addition.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast together.
    pub fn add(&self, rhs: &Var) -> Result<Var> {
        // Aliased operands (`x.add(&x)`) must not take two read locks on
        // one node — with the RwLock-backed tape that can deadlock
        // against an intervening writer. Distinct nodes keep the
        // zero-copy nested read of the hot path.
        let value = if std::sync::Arc::ptr_eq(&self.node, &rhs.node) {
            self.with_value(|a| a.zip_map(a, |x, y| x + y))
        } else {
            self.with_value(|a| rhs.with_value(|b| a.zip_map(b, |x, y| x + y)))
        }?;
        let (sa, sb) = (self.shape(), rhs.shape());
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            vec![
                Tensor::reduce_to_shape(g, &sa).expect("broadcast adjoint"),
                Tensor::reduce_to_shape(g, &sb).expect("broadcast adjoint"),
            ]
        }))
    }

    /// Elementwise (broadcasting) subtraction.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast together.
    pub fn sub(&self, rhs: &Var) -> Result<Var> {
        // No reentrant node locks on aliased operands (see `add`).
        let value = if std::sync::Arc::ptr_eq(&self.node, &rhs.node) {
            self.with_value(|a| a.zip_map(a, |x, y| x - y))
        } else {
            self.with_value(|a| rhs.with_value(|b| a.zip_map(b, |x, y| x - y)))
        }?;
        let (sa, sb) = (self.shape(), rhs.shape());
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            let gb = Tensor::reduce_to_shape(g, &sb).expect("broadcast adjoint").map(|x| -x);
            vec![Tensor::reduce_to_shape(g, &sa).expect("broadcast adjoint"), gb]
        }))
    }

    /// Elementwise (broadcasting) multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast together.
    pub fn mul(&self, rhs: &Var) -> Result<Var> {
        let a = self.value();
        let b = rhs.value();
        let value = a.zip_map(&b, |x, y| x * y)?;
        let (sa, sb) = (self.shape(), rhs.shape());
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            let ga = g.zip_map(&b, |gi, bi| gi * bi).expect("checked in forward");
            let gb = g.zip_map(&a, |gi, ai| gi * ai).expect("checked in forward");
            vec![
                Tensor::reduce_to_shape(&ga, &sa).expect("broadcast adjoint"),
                Tensor::reduce_to_shape(&gb, &sb).expect("broadcast adjoint"),
            ]
        }))
    }

    /// Elementwise (broadcasting) division.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast together.
    pub fn div(&self, rhs: &Var) -> Result<Var> {
        let a = self.value();
        let b = rhs.value();
        let value = a.zip_map(&b, |x, y| x / y)?;
        let (sa, sb) = (self.shape(), rhs.shape());
        Ok(Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            let ga = g.zip_map(&b, |gi, bi| gi / bi).expect("checked in forward");
            let gb_full = g
                .zip_map(&a, |gi, ai| gi * ai)
                .expect("checked in forward")
                .zip_map(&b, |num, bi| -num / (bi * bi))
                .expect("checked in forward");
            vec![
                Tensor::reduce_to_shape(&ga, &sa).expect("broadcast adjoint"),
                Tensor::reduce_to_shape(&gb_full, &sb).expect("broadcast adjoint"),
            ]
        }))
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Var {
        let value = self.with_value(|a| a.map(|x| -x));
        Var::from_op(value, vec![self.clone()], |g| vec![g.map(|x| -x)])
    }

    /// Multiply every element by a constant.
    #[must_use]
    pub fn scale(&self, k: f32) -> Var {
        let value = self.with_value(|a| a.map(|x| x * k));
        Var::from_op(value, vec![self.clone()], move |g| vec![g.map(|x| x * k)])
    }

    /// Add a constant to every element.
    #[must_use]
    pub fn add_scalar(&self, k: f32) -> Var {
        let value = self.with_value(|a| a.map(|x| x + k));
        Var::from_op(value, vec![self.clone()], |g| vec![g.clone()])
    }

    /// Elementwise absolute value (subgradient `sign(x)`, 0 at 0).
    #[must_use]
    pub fn abs(&self) -> Var {
        let x = self.value();
        let value = x.map(f32::abs);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&x, |gi, xi| gi * xi.signum()).expect("same shape")]
        })
    }

    /// Elementwise square root. Inputs are clamped at a small positive floor
    /// to keep the gradient finite.
    #[must_use]
    pub fn sqrt(&self) -> Var {
        let x = self.value();
        let value = x.map(|v| v.max(1e-12).sqrt());
        let value_clone = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&value_clone, |gi, yi| gi * 0.5 / yi).expect("same shape")]
        })
    }

    /// Elementwise square.
    ///
    /// # Errors
    ///
    /// Never fails in practice; present for signature uniformity with
    /// [`Var::mul`].
    pub fn square(&self) -> Result<Var> {
        self.mul(self)
    }

    /// Elementwise reciprocal with gradient `-1/x²`.
    #[must_use]
    pub fn recip(&self) -> Var {
        let x = self.value();
        let value = x.map(f32::recip);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![g.zip_map(&x, |gi, xi| -gi / (xi * xi)).expect("same shape")]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn add_broadcast_grads() {
        let a = Var::param(t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Var::param(t(vec![10.0, 20.0], &[2, 1]));
        let y = a.add(&b).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 4]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn mul_grads() {
        let a = Var::param(t(vec![2.0, 3.0], &[2]));
        let b = Var::param(t(vec![5.0, 7.0], &[2]));
        let y = a.mul(&b).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn div_grads() {
        let a = Var::param(t(vec![6.0], &[1]));
        let b = Var::param(t(vec![3.0], &[1]));
        let y = a.div(&b).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert!((a.grad().unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((b.grad().unwrap().data()[0] + 6.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn abs_and_sqrt_grads() {
        let a = Var::param(t(vec![-4.0, 9.0], &[2]));
        let y = a.abs().sqrt().sum_all().unwrap();
        y.backward().unwrap();
        let g = a.grad().unwrap();
        assert!((g.data()[0] + 0.25).abs() < 1e-5); // d sqrt(|x|)/dx at -4 = -1/(2*2)
        assert!((g.data()[1] - 1.0 / 6.0).abs() < 1e-5);
    }

    #[test]
    fn scale_and_neg() {
        let a = Var::param(t(vec![1.0, -2.0], &[2]));
        let y = a.scale(3.0).neg().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[-3.0, -3.0]);
    }
}
