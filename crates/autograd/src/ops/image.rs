//! Image-layout ops on the tape: pixel shuffle, pooling, window attention
//! layout. All are permutations or averages, so their adjoints are the
//! inverse rearrangement (or broadcast division).

use crate::var::Var;
use scales_tensor::ops::{
    global_avg_pool, pixel_shuffle, pixel_unshuffle, window_merge, window_partition,
};
use scales_tensor::{Result, Tensor};

impl Var {
    /// Sub-pixel upsample `[N,C·r²,H,W] → [N,C,Hr,Wr]`; the gradient is the
    /// inverse pixel-unshuffle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid geometry.
    pub fn pixel_shuffle(&self, r: usize) -> Result<Var> {
        let value = self.with_value(|t| pixel_shuffle(t, r))?;
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![pixel_unshuffle(g, r).expect("shuffle adjoint")]
        }))
    }

    /// Global average pooling `[N,C,H,W] → [N,C,1,1]`; the gradient spreads
    /// uniformly over the pooled window.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 input.
    pub fn global_avg_pool(&self) -> Result<Var> {
        let value = self.with_value(global_avg_pool)?;
        let in_shape = self.shape();
        let hw = (in_shape[2] * in_shape[3]) as f32;
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            let spread = Tensor::ones(&in_shape)
                .zip_map(g, |_, gi| gi / hw)
                .expect("broadcast [n,c,1,1] over [n,c,h,w]");
            vec![spread]
        }))
    }

    /// Partition into `ws×ws` windows producing tokens `[N·nw, ws², C]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the spatial extents are not divisible by `ws`.
    pub fn window_partition(&self, ws: usize) -> Result<Var> {
        let value = self.with_value(|t| window_partition(t, ws))?;
        let s = self.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![window_merge(g, n, c, h, w, ws).expect("partition adjoint")]
        }))
    }

    /// Merge window tokens back into an image `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns an error when token geometry is inconsistent with the target.
    pub fn window_merge(&self, n: usize, c: usize, h: usize, w: usize, ws: usize) -> Result<Var> {
        let value = self.with_value(|t| window_merge(t, n, c, h, w, ws))?;
        Ok(Var::from_op(value, vec![self.clone()], move |g| {
            vec![window_partition(g, ws).expect("merge adjoint")]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_shuffle_grad_is_unshuffle() {
        let x = Var::param(Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 4, 2, 2]).unwrap());
        let y = x.pixel_shuffle(2).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 16]);
    }

    #[test]
    fn global_avg_pool_grad_spreads() {
        let x = Var::param(Tensor::ones(&[1, 2, 2, 2]));
        let y = x.global_avg_pool().unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 8]);
    }

    #[test]
    fn window_round_trip_grad_identity() {
        let x = Var::param(Tensor::from_vec((0..32).map(|i| (i as f32).sin()).collect(), &[1, 2, 4, 4]).unwrap());
        let y = x
            .window_partition(2)
            .unwrap()
            .window_merge(1, 2, 4, 4, 2)
            .unwrap()
            .sum_all()
            .unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 32]);
    }
}
