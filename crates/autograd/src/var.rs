//! The reverse-mode autodiff tape.
//!
//! A [`Var`] is a shared handle to a tape node holding a value tensor, an
//! optional accumulated gradient, and a closure that maps the node's output
//! gradient to gradients for its parents. Calling [`Var::backward`] on a
//! scalar output walks the graph in reverse topological order.
//!
//! ## Thread safety
//!
//! Nodes live behind `Arc<RwLock<…>>` and gradient closures are
//! `Send + Sync`, so `Var` — and therefore every network built from `Var`
//! parameters — is `Send + Sync`. A tape is still built and walked by one
//! thread at a time (each forward creates its own interior nodes), but
//! *parameter* leaves may be shared across threads: concurrent forwards
//! through the same network only take read locks on the shared parameter
//! nodes, which is what lets `scales-serve` engines be shared by the
//! `scales-runtime` worker pool. Mutating entry points ([`Var::set_value`],
//! [`Var::update_value`], [`Var::backward`]) take write locks; interleaving
//! them with concurrent forwards serializes on the node lock rather than
//! racing, but the usual discipline is train first, serve after.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use scales_tensor::{Result, Tensor, TensorError};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

type GradFn = Box<dyn Fn(&Tensor) -> Vec<Tensor> + Send + Sync>;

pub(crate) struct Node {
    id: u64,
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    grad_fn: Option<GradFn>,
}

/// A value on the autodiff tape.
///
/// `Var` is a cheap-to-clone shared handle (`Arc`); cloning it does **not**
/// copy the underlying tensor. Leaf variables created with [`Var::param`]
/// accumulate gradients; those created with [`Var::new`] do not.
///
/// ```
/// use scales_autograd::Var;
/// use scales_tensor::Tensor;
///
/// # fn main() -> Result<(), scales_tensor::TensorError> {
/// let x = Var::param(Tensor::from_vec(vec![2.0], &[1])?);
/// let y = x.mul(&x)?.sum_all()?; // y = x²
/// y.backward()?;
/// assert_eq!(x.grad().unwrap().data(), &[4.0]); // dy/dx = 2x
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Var {
    pub(crate) node: Arc<RwLock<Node>>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.read();
        f.debug_struct("Var")
            .field("id", &n.id)
            .field("shape", &n.value.shape())
            .field("requires_grad", &n.requires_grad)
            .finish()
    }
}

impl Var {
    fn from_node(node: Node) -> Self {
        Self { node: Arc::new(RwLock::new(node)) }
    }

    /// Poison-tolerant node access: a panic that unwound while a guard
    /// was held (e.g. a failed shape assert in a contained test thread)
    /// must not brick the node for every later forward — `RefCell`, which
    /// this lock replaced, had no poisoning either.
    fn read(&self) -> RwLockReadGuard<'_, Node> {
        self.node.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, Node> {
        self.node.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A constant (non-trainable) tape leaf.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad: false,
            parents: Vec::new(),
            grad_fn: None,
        })
    }

    /// A trainable tape leaf that accumulates gradients.
    #[must_use]
    pub fn param(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad: true,
            parents: Vec::new(),
            grad_fn: None,
        })
    }

    /// Build an interior node from parents plus a gradient rule.
    ///
    /// `grad_fn` receives the output gradient and must return one gradient
    /// tensor per parent, in order. It is only invoked for nodes on a path
    /// to a gradient-requiring leaf. The closure must be `Send + Sync`
    /// (tensors and `Var` handles both are) so networks holding tape nodes
    /// stay shareable across serving threads.
    #[must_use]
    pub fn from_op(
        value: Tensor,
        parents: Vec<Var>,
        grad_fn: impl Fn(&Tensor) -> Vec<Tensor> + Send + Sync + 'static,
    ) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad,
            parents,
            grad_fn: if requires_grad { Some(Box::new(grad_fn)) } else { None },
        })
    }

    /// Snapshot of the node's value.
    #[must_use]
    pub fn value(&self) -> Tensor {
        self.read().value.clone()
    }

    /// Run `f` against the node's value without cloning it.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.read().value)
    }

    /// The value's shape.
    #[must_use]
    pub fn shape(&self) -> Vec<usize> {
        self.read().value.shape().to_vec()
    }

    /// Number of elements in the value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read().value.len()
    }

    /// Whether the value holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read().value.is_empty()
    }

    /// Whether this node participates in gradient computation.
    #[must_use]
    pub fn requires_grad(&self) -> bool {
        self.read().requires_grad
    }

    /// Snapshot of the accumulated gradient, if any.
    #[must_use]
    pub fn grad(&self) -> Option<Tensor> {
        self.read().grad.clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        self.write().grad = None;
    }

    /// Replace the node's value (used by optimizers for in-place updates).
    ///
    /// # Panics
    ///
    /// Panics when the new value's shape differs from the old one, which
    /// would silently corrupt downstream graphs.
    pub fn set_value(&self, value: Tensor) {
        let mut n = self.write();
        assert_eq!(n.value.shape(), value.shape(), "set_value must preserve shape");
        n.value = value;
    }

    /// Mutate the node's value in place through a closure.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.write().value);
    }

    /// Detach: a new constant leaf sharing this node's current value but cut
    /// off from the tape.
    #[must_use]
    pub fn detach(&self) -> Var {
        Var::new(self.value())
    }

    fn id(&self) -> u64 {
        self.read().id
    }

    /// Reverse-mode gradient computation, seeding this output with
    /// `∂out/∂out = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when called on a non-scalar
    /// (use [`Var::backward_with`] to seed arbitrary shapes).
    pub fn backward(&self) -> Result<()> {
        if self.len() != 1 {
            return Err(TensorError::InvalidArgument(
                "backward() needs a scalar output; use backward_with for other shapes".into(),
            ));
        }
        let seed = Tensor::ones(&self.shape());
        self.backward_with(seed)
    }

    /// Reverse-mode gradient computation from an explicit seed gradient of
    /// the same shape as this node's value.
    ///
    /// # Errors
    ///
    /// Returns an error when the seed's shape differs from the value's.
    pub fn backward_with(&self, seed: Tensor) -> Result<()> {
        if seed.shape() != self.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: seed.shape().to_vec(),
                rhs: self.shape(),
                op: "backward seed",
            });
        }
        // Topological order via iterative DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut state: HashMap<u64, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((v, processed)) = stack.pop() {
            let id = v.id();
            if processed {
                state.insert(id, 2);
                order.push(v);
                continue;
            }
            match state.get(&id) {
                Some(2) => continue,
                Some(1) => continue, // diamond sharing, already on stack
                _ => {}
            }
            state.insert(id, 1);
            stack.push((v.clone(), true));
            let parents = v.read().parents.clone();
            for p in parents {
                if p.requires_grad() && state.get(&p.id()) != Some(&2) {
                    stack.push((p, false));
                }
            }
        }
        // Seed and propagate in reverse topological order.
        accumulate(self, &seed);
        for v in order.iter().rev() {
            let (grad, parents, has_fn) = {
                let n = v.read();
                (n.grad.clone(), n.parents.clone(), n.grad_fn.is_some())
            };
            let Some(grad) = grad else { continue };
            if !has_fn {
                continue;
            }
            let parent_grads = {
                let n = v.read();
                (n.grad_fn.as_ref().expect("checked"))(&grad)
            };
            debug_assert_eq!(parent_grads.len(), parents.len(), "grad_fn arity mismatch");
            for (p, g) in parents.iter().zip(parent_grads) {
                if p.requires_grad() {
                    accumulate(p, &g);
                }
            }
            // Interior nodes can release their gradient once propagated.
            let mut n = v.write();
            if n.grad_fn.is_some() {
                n.grad = None;
            }
        }
        Ok(())
    }
}

fn accumulate(v: &Var, g: &Tensor) {
    let mut n = v.write();
    match &mut n.grad {
        Some(existing) => {
            debug_assert_eq!(existing.shape(), g.shape());
            for (a, b) in existing.data_mut().iter_mut().zip(g.data().iter()) {
                *a += b;
            }
        }
        None => n.grad = Some(g.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_flags() {
        let c = Var::new(Tensor::scalar(1.0));
        let p = Var::param(Tensor::scalar(1.0));
        assert!(!c.requires_grad());
        assert!(p.requires_grad());
    }

    #[test]
    fn backward_requires_scalar() {
        let p = Var::param(Tensor::zeros(&[2, 2]));
        assert!(p.backward().is_err());
    }

    #[test]
    fn shared_node_accumulates_grad() {
        // y = x + x  =>  dy/dx = 2
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.add(&x).unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.add(&x).unwrap();
        y.backward().unwrap();
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_grad() {
        // y = (x*x) + (x*x) built from a shared square node: dy/dx = 4x.
        let x = Var::param(Tensor::scalar(5.0));
        let sq = x.mul(&x).unwrap();
        let y = sq.add(&sq).unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[20.0]);
    }

    #[test]
    fn vars_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Var>();
    }

    #[test]
    fn shared_params_serve_concurrent_forwards() {
        // Two threads build independent tapes through the same parameter
        // leaf; both read the same value and neither corrupts the other.
        let w = Var::param(Tensor::scalar(3.0));
        std::thread::scope(|scope| {
            for k in [2.0f32, 5.0] {
                let w = &w;
                scope.spawn(move || {
                    let x = Var::new(Tensor::scalar(k));
                    let y = w.mul(&x).unwrap();
                    assert_eq!(y.value().data(), &[3.0 * k]);
                });
            }
        });
        assert_eq!(w.value().data(), &[3.0]);
    }
}
