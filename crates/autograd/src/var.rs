//! The reverse-mode autodiff tape.
//!
//! A [`Var`] is a shared handle to a tape node holding a value tensor, an
//! optional accumulated gradient, and a closure that maps the node's output
//! gradient to gradients for its parents. Calling [`Var::backward`] on a
//! scalar output walks the graph in reverse topological order.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use scales_tensor::{Result, Tensor, TensorError};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

type GradFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    id: u64,
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    grad_fn: Option<GradFn>,
}

/// A value on the autodiff tape.
///
/// `Var` is a cheap-to-clone shared handle (`Rc`); cloning it does **not**
/// copy the underlying tensor. Leaf variables created with [`Var::param`]
/// accumulate gradients; those created with [`Var::new`] do not.
///
/// ```
/// use scales_autograd::Var;
/// use scales_tensor::Tensor;
///
/// # fn main() -> Result<(), scales_tensor::TensorError> {
/// let x = Var::param(Tensor::from_vec(vec![2.0], &[1])?);
/// let y = x.mul(&x)?.sum_all()?; // y = x²
/// y.backward()?;
/// assert_eq!(x.grad().unwrap().data(), &[4.0]); // dy/dx = 2x
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Var {
    pub(crate) node: Rc<RefCell<Node>>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        f.debug_struct("Var")
            .field("id", &n.id)
            .field("shape", &n.value.shape())
            .field("requires_grad", &n.requires_grad)
            .finish()
    }
}

impl Var {
    fn from_node(node: Node) -> Self {
        Self { node: Rc::new(RefCell::new(node)) }
    }

    /// A constant (non-trainable) tape leaf.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad: false,
            parents: Vec::new(),
            grad_fn: None,
        })
    }

    /// A trainable tape leaf that accumulates gradients.
    #[must_use]
    pub fn param(value: Tensor) -> Self {
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad: true,
            parents: Vec::new(),
            grad_fn: None,
        })
    }

    /// Build an interior node from parents plus a gradient rule.
    ///
    /// `grad_fn` receives the output gradient and must return one gradient
    /// tensor per parent, in order. It is only invoked for nodes on a path
    /// to a gradient-requiring leaf.
    #[must_use]
    pub fn from_op(value: Tensor, parents: Vec<Var>, grad_fn: impl Fn(&Tensor) -> Vec<Tensor> + 'static) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Self::from_node(Node {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            requires_grad,
            parents,
            grad_fn: if requires_grad { Some(Box::new(grad_fn)) } else { None },
        })
    }

    /// Snapshot of the node's value.
    #[must_use]
    pub fn value(&self) -> Tensor {
        self.node.borrow().value.clone()
    }

    /// Run `f` against the node's value without cloning it.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.node.borrow().value)
    }

    /// The value's shape.
    #[must_use]
    pub fn shape(&self) -> Vec<usize> {
        self.node.borrow().value.shape().to_vec()
    }

    /// Number of elements in the value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node.borrow().value.len()
    }

    /// Whether the value holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node.borrow().value.is_empty()
    }

    /// Whether this node participates in gradient computation.
    #[must_use]
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Snapshot of the accumulated gradient, if any.
    #[must_use]
    pub fn grad(&self) -> Option<Tensor> {
        self.node.borrow().grad.clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        self.node.borrow_mut().grad = None;
    }

    /// Replace the node's value (used by optimizers for in-place updates).
    ///
    /// # Panics
    ///
    /// Panics when the new value's shape differs from the old one, which
    /// would silently corrupt downstream graphs.
    pub fn set_value(&self, value: Tensor) {
        let mut n = self.node.borrow_mut();
        assert_eq!(n.value.shape(), value.shape(), "set_value must preserve shape");
        n.value = value;
    }

    /// Mutate the node's value in place through a closure.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.borrow_mut().value);
    }

    /// Detach: a new constant leaf sharing this node's current value but cut
    /// off from the tape.
    #[must_use]
    pub fn detach(&self) -> Var {
        Var::new(self.value())
    }

    fn id(&self) -> u64 {
        self.node.borrow().id
    }

    /// Reverse-mode gradient computation, seeding this output with
    /// `∂out/∂out = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when called on a non-scalar
    /// (use [`Var::backward_with`] to seed arbitrary shapes).
    pub fn backward(&self) -> Result<()> {
        if self.len() != 1 {
            return Err(TensorError::InvalidArgument(
                "backward() needs a scalar output; use backward_with for other shapes".into(),
            ));
        }
        let seed = Tensor::ones(&self.shape());
        self.backward_with(seed)
    }

    /// Reverse-mode gradient computation from an explicit seed gradient of
    /// the same shape as this node's value.
    ///
    /// # Errors
    ///
    /// Returns an error when the seed's shape differs from the value's.
    pub fn backward_with(&self, seed: Tensor) -> Result<()> {
        if seed.shape() != self.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: seed.shape().to_vec(),
                rhs: self.shape(),
                op: "backward seed",
            });
        }
        // Topological order via iterative DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut state: HashMap<u64, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((v, processed)) = stack.pop() {
            let id = v.id();
            if processed {
                state.insert(id, 2);
                order.push(v);
                continue;
            }
            match state.get(&id) {
                Some(2) => continue,
                Some(1) => continue, // diamond sharing, already on stack
                _ => {}
            }
            state.insert(id, 1);
            stack.push((v.clone(), true));
            let parents = v.node.borrow().parents.clone();
            for p in parents {
                if p.requires_grad() && state.get(&p.id()) != Some(&2) {
                    stack.push((p, false));
                }
            }
        }
        // Seed and propagate in reverse topological order.
        accumulate(self, &seed);
        for v in order.iter().rev() {
            let (grad, parents, has_fn) = {
                let n = v.node.borrow();
                (n.grad.clone(), n.parents.clone(), n.grad_fn.is_some())
            };
            let Some(grad) = grad else { continue };
            if !has_fn {
                continue;
            }
            let parent_grads = {
                let n = v.node.borrow();
                (n.grad_fn.as_ref().expect("checked"))(&grad)
            };
            debug_assert_eq!(parent_grads.len(), parents.len(), "grad_fn arity mismatch");
            for (p, g) in parents.iter().zip(parent_grads) {
                if p.requires_grad() {
                    accumulate(p, &g);
                }
            }
            // Interior nodes can release their gradient once propagated.
            if v.node.borrow().grad_fn.is_some() {
                v.node.borrow_mut().grad = None;
            }
        }
        Ok(())
    }
}

fn accumulate(v: &Var, g: &Tensor) {
    let mut n = v.node.borrow_mut();
    match &mut n.grad {
        Some(existing) => {
            debug_assert_eq!(existing.shape(), g.shape());
            for (a, b) in existing.data_mut().iter_mut().zip(g.data().iter()) {
                *a += b;
            }
        }
        None => n.grad = Some(g.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_flags() {
        let c = Var::new(Tensor::scalar(1.0));
        let p = Var::param(Tensor::scalar(1.0));
        assert!(!c.requires_grad());
        assert!(p.requires_grad());
    }

    #[test]
    fn backward_requires_scalar() {
        let p = Var::param(Tensor::zeros(&[2, 2]));
        assert!(p.backward().is_err());
    }

    #[test]
    fn shared_node_accumulates_grad() {
        // y = x + x  =>  dy/dx = 2
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.add(&x).unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.add(&x).unwrap();
        y.backward().unwrap();
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_grad() {
        // y = (x*x) + (x*x) built from a shared square node: dy/dx = 4x.
        let x = Var::param(Tensor::scalar(5.0));
        let sq = x.mul(&x).unwrap();
        let y = sq.add(&sq).unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[20.0]);
    }
}
