//! # scales-train
//!
//! Training, evaluation and experiment-running harness shared by the
//! repository's benches, examples and integration tests:
//!
//! * [`trainer`] — the paper's protocol (L1, Adam β₁=0.9/β₂=0.999/ε=1e-8,
//!   LR halving, random aligned patches) at configurable scale.
//! * [`eval`] — mean PSNR/SSIM over the synthetic benchmark sets with the
//!   standard Y-channel + shave protocol.
//! * [`experiment`] — one-call table rows: build (architecture, method,
//!   scale), train, evaluate on all four benchmarks, account cost.
//! * [`infer`] — the legacy free-function serving surface, now thin
//!   deprecated wrappers over the unified `scales-serve`
//!   Engine/Session API (which also powers [`eval`] and [`experiment`]).
//! * [`report`] — paper-style plain-text tables and the
//!   `target/scales-report/` sink.

pub mod eval;
pub mod experiment;
pub mod infer;
pub mod report;
pub mod trainer;

pub use eval::{evaluate, evaluate_bicubic, evaluate_with, Score};
pub use experiment::{lower_cached, lower_cached_in, run_row, Arch, Budget, RowResult};
#[allow(deprecated)]
pub use infer::{
    super_resolve_batch, super_resolve_batch_deployed, super_resolve_tiled,
    super_resolve_tiled_deployed, TileSpec,
};
pub use report::{format_score, render_table, report_dir, write_report};
pub use trainer::{train, TrainConfig, TrainStats};
