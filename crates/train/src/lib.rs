//! # scales-train
//!
//! Training, evaluation and experiment-running harness shared by the
//! repository's benches, examples and integration tests:
//!
//! * [`trainer`] — the paper's protocol (L1, Adam β₁=0.9/β₂=0.999/ε=1e-8,
//!   LR halving, random aligned patches) at configurable scale.
//! * [`eval`] — mean PSNR/SSIM over the synthetic benchmark sets with the
//!   standard Y-channel + shave protocol.
//! * [`experiment`] — one-call table rows: build (architecture, method,
//!   scale), train, evaluate on all four benchmarks, account cost.
//! * [`infer`] — serving-path inference: batched forwards and tiled
//!   (split → forward → stitch) super-resolution, over both the training
//!   path and the packed deployment engine.
//! * [`report`] — paper-style plain-text tables and the
//!   `target/scales-report/` sink.

pub mod eval;
pub mod experiment;
pub mod infer;
pub mod report;
pub mod trainer;

pub use eval::{evaluate, evaluate_bicubic, Score};
pub use experiment::{run_row, Arch, Budget, RowResult};
pub use infer::{
    super_resolve_batch, super_resolve_batch_deployed, super_resolve_tiled,
    super_resolve_tiled_deployed, TileSpec,
};
pub use report::{format_score, render_table, report_dir, write_report};
pub use trainer::{train, TrainConfig, TrainStats};
