//! Legacy serving-path free functions, kept as thin **deprecated**
//! wrappers over the [`scales_serve`] Engine/Session API.
//!
//! The four `super_resolve_*` entry points below predate the unified
//! serving layer; each one now builds a borrowed single-purpose engine
//! and forwards through [`Session::infer`](scales_serve::Session::infer).
//! On accepted inputs, outputs are bit-identical to the pre-engine
//! implementations (enforced by `tests/deploy.rs`). One contract is
//! deliberately narrower than before: [`TileSpec::new`] now rejects
//! `overlap >= tile` (previously accepted, wastefully re-forwarding every
//! pixel more than twice per axis), so tiled calls with such specs fail
//! fast instead of running. New code should hold an [`Engine`] instead:
//! one entry point covers single, batched and tiled requests in both
//! precisions, with per-engine backend selection.

use scales_data::Image;
use scales_models::{DeployedNetwork, SrNetwork};
use scales_serve::{Engine, Precision, SrRequest, TilePolicy};
use scales_tensor::{Result, TensorError};

pub use scales_serve::TileSpec;

/// The legacy batch entry points required uniform sizes; the engine
/// micro-batches mixed sizes instead, so the wrappers re-impose the
/// historical contract.
fn require_uniform(images: &[Image]) -> Result<()> {
    let first = images.first().ok_or_else(|| {
        TensorError::InvalidArgument("batched inference needs at least one image".into())
    })?;
    let (c, h, w) = (first.channels(), first.height(), first.width());
    for img in images {
        if img.channels() != c || img.height() != h || img.width() != w {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![c, h, w],
                rhs: vec![img.channels(), img.height(), img.width()],
                op: "batched inference sizes",
            });
        }
    }
    Ok(())
}

/// Super-resolve a set of same-sized images in one batched forward pass
/// through the training-path network.
///
/// # Errors
///
/// Returns an error for an empty set or mismatched image sizes.
#[deprecated(
    since = "0.2.0",
    note = "build a scales_serve::Engine (Precision::Training) and call Session::infer"
)]
pub fn super_resolve_batch(net: &dyn SrNetwork, images: &[Image]) -> Result<Vec<Image>> {
    require_uniform(images)?;
    let engine = Engine::builder().model_ref(net).precision(Precision::Training).build()?;
    Ok(engine.session().infer(SrRequest::batch(images.to_vec()))?.into_images())
}

/// Super-resolve a set of same-sized images in one batched forward pass
/// through a deployed network.
///
/// # Errors
///
/// Returns an error for an empty set or mismatched image sizes.
#[deprecated(
    since = "0.2.0",
    note = "build a scales_serve::Engine over the DeployedNetwork and call Session::infer"
)]
pub fn super_resolve_batch_deployed(net: &DeployedNetwork, images: &[Image]) -> Result<Vec<Image>> {
    require_uniform(images)?;
    let engine = Engine::builder().model_ref(net).precision(Precision::Deployed).build()?;
    Ok(engine.session().infer(SrRequest::batch(images.to_vec()))?.into_images())
}

/// Tiled super-resolution through the training-path network.
///
/// # Errors
///
/// Propagates forward and geometry errors.
#[deprecated(
    since = "0.2.0",
    note = "build a scales_serve::Engine with TilePolicy::Fixed and call Session::infer"
)]
pub fn super_resolve_tiled(net: &dyn SrNetwork, lr: &Image, spec: TileSpec) -> Result<Image> {
    let engine = Engine::builder()
        .model_ref(net)
        .precision(Precision::Training)
        .tile_policy(TilePolicy::Fixed(spec))
        .build()?;
    engine.session().super_resolve(lr)
}

/// Tiled super-resolution through a deployed network.
///
/// # Errors
///
/// Propagates forward and geometry errors.
#[deprecated(
    since = "0.2.0",
    note = "build a scales_serve::Engine with TilePolicy::Fixed and call Session::infer"
)]
pub fn super_resolve_tiled_deployed(
    net: &DeployedNetwork,
    lr: &Image,
    spec: TileSpec,
) -> Result<Image> {
    let engine = Engine::builder()
        .model_ref(net)
        .precision(Precision::Deployed)
        .tile_policy(TilePolicy::Fixed(spec))
        .build()?;
    engine.session().super_resolve(lr)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use scales_core::{Method, ScalesComponents};
    use scales_models::{srresnet, SrConfig};
    use scales_nn::init::rng;

    fn probe_image(h: usize, w: usize) -> Image {
        scales_data::synth::scene(h, w, scales_data::synth::SceneConfig::default(), &mut rng(41))
    }

    /// SRResNet-lite with 1 block: total conv radius along the deepest
    /// path is 5 (head 1 + two body convs 2 + body-end 1 + tail 1), plus 2
    /// for the bicubic kernel — receptive radius 7.
    fn local_net() -> impl SrNetwork {
        srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            // Local-only components: stitching is exact (scales-serve docs).
            method: Method::Scales(ScalesComponents::lsf_spatial()),
            seed: 23,
        })
        .unwrap()
    }

    #[test]
    fn batch_matches_single_image_forwards() {
        let net = local_net();
        let images = vec![probe_image(8, 8), probe_image(8, 8)];
        let batch = super_resolve_batch(&net, &images).unwrap();
        for (img, sr) in images.iter().zip(batch.iter()) {
            let single = net.super_resolve(img).unwrap();
            assert_eq!((sr.height(), sr.width()), (16, 16));
            for (a, b) in sr.tensor().data().iter().zip(single.tensor().data().iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn batch_rejects_mixed_sizes_and_empty_sets() {
        let net = local_net();
        assert!(super_resolve_batch(&net, &[]).is_err());
        let images = vec![probe_image(8, 8), probe_image(8, 10)];
        assert!(super_resolve_batch(&net, &images).is_err());
    }

    #[test]
    fn tiled_matches_full_image_on_local_network() {
        let net = local_net();
        let img = probe_image(16, 16);
        let full = net.super_resolve(&img).unwrap();
        let tiled = super_resolve_tiled(&net, &img, TileSpec::new(12, 8).unwrap()).unwrap();
        assert_eq!((tiled.height(), tiled.width()), (32, 32));
        for (a, b) in tiled.tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn tiled_deployed_matches_full_deployed() {
        let net = local_net();
        let deployed = net.lower().unwrap();
        let img = probe_image(20, 12);
        let full = deployed.super_resolve(&img).unwrap();
        let tiled =
            super_resolve_tiled_deployed(&deployed, &img, TileSpec::new(8, 7).unwrap()).unwrap();
        for (a, b) in tiled.tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn tiled_handles_non_divisible_sizes() {
        let net = local_net();
        let img = probe_image(11, 7);
        let sr = super_resolve_tiled(&net, &img, TileSpec::new(4, 3).unwrap()).unwrap();
        assert_eq!((sr.height(), sr.width()), (22, 14));
    }

    #[test]
    fn tile_spec_validates() {
        assert!(TileSpec::new(0, 2).is_err());
        assert!(TileSpec::new(8, 8).is_err(), "overlap must be smaller than the tile");
        assert!(TileSpec::new(8, 0).is_ok());
        assert!(TileSpec::new(8, 7).is_ok());
    }
}
