//! Serving-path inference: batched forward over image sets and tiled
//! (split → forward → stitch) super-resolution for images too large to run
//! in one pass.
//!
//! Both entry points come in two flavours — over the training-path
//! [`SrNetwork`] and over the packed [`DeployedNetwork`] — sharing one
//! implementation through a forward closure.
//!
//! ## Tiling equivalence
//!
//! [`super_resolve_tiled`] reproduces the full-image output **exactly**
//! when (a) `overlap` is at least the network's total receptive-field
//! radius (sum of conv radii along the deepest path) and (b) the network
//! contains no whole-image operators. Global operators — the SCALES
//! channel-rescale GAP, BTM's per-image threshold, E2FIF's batch-stats BN —
//! see per-tile statistics instead, which is the standard trade-off of
//! tiled SR serving; the local-only configurations (FP, BAM,
//! `ScalesComponents::lsf_spatial()`) stitch bit-exactly.

use scales_autograd::Var;
use scales_data::Image;
use scales_models::{DeployedNetwork, SrNetwork};
use scales_tensor::{Result, Tensor, TensorError};

/// Tile geometry for [`super_resolve_tiled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// Tile side length in LR pixels (the stride of the tiling).
    pub tile: usize,
    /// Context border around each tile, in LR pixels. Must cover the
    /// network's receptive-field radius for exact stitching.
    pub overlap: usize,
}

impl TileSpec {
    /// Build a spec, validating the tile size.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero tile.
    pub fn new(tile: usize, overlap: usize) -> Result<Self> {
        if tile == 0 {
            return Err(TensorError::InvalidArgument("tile size must be positive".into()));
        }
        Ok(Self { tile, overlap })
    }
}

fn training_forward(net: &dyn SrNetwork) -> impl Fn(&Tensor) -> Result<Tensor> + '_ {
    |t| Ok(net.forward(&Var::new(t.clone()))?.value())
}

/// Stack same-sized images into `[N, C, H, W]`, run one forward, unstack.
fn batch_with(
    forward: impl Fn(&Tensor) -> Result<Tensor>,
    images: &[Image],
) -> Result<Vec<Image>> {
    let first = images.first().ok_or_else(|| {
        TensorError::InvalidArgument("batched inference needs at least one image".into())
    })?;
    let (c, h, w) = (first.channels(), first.height(), first.width());
    let mut data = Vec::with_capacity(images.len() * c * h * w);
    for img in images {
        if img.channels() != c || img.height() != h || img.width() != w {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![c, h, w],
                rhs: vec![img.channels(), img.height(), img.width()],
                op: "batched inference sizes",
            });
        }
        data.extend_from_slice(img.tensor().data());
    }
    let batch = Tensor::from_vec(data, &[images.len(), c, h, w])?;
    let y = forward(&batch)?;
    let (oc, oh, ow) = (y.shape()[1], y.shape()[2], y.shape()[3]);
    (0..images.len())
        .map(|b| {
            let t = y.slice_axis(0, b, 1)?.reshape(&[oc, oh, ow])?;
            Image::from_tensor(t)
        })
        .collect()
}

/// Super-resolve a set of same-sized images in one batched forward pass
/// through the training-path network.
///
/// # Errors
///
/// Returns an error for an empty set or mismatched image sizes.
pub fn super_resolve_batch(net: &dyn SrNetwork, images: &[Image]) -> Result<Vec<Image>> {
    batch_with(training_forward(net), images)
}

/// Super-resolve a set of same-sized images in one batched forward pass
/// through a deployed network.
///
/// # Errors
///
/// Returns an error for an empty set or mismatched image sizes.
pub fn super_resolve_batch_deployed(net: &DeployedNetwork, images: &[Image]) -> Result<Vec<Image>> {
    batch_with(|t| net.forward(t), images)
}

/// Split → forward → stitch implementation shared by both network kinds.
fn tiled_with(
    forward: impl Fn(&Tensor) -> Result<Tensor>,
    scale: usize,
    lr: &Image,
    spec: TileSpec,
) -> Result<Image> {
    let t = lr.tensor();
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    let mut out = Tensor::zeros(&[c, h * scale, w * scale]);
    let mut y0 = 0;
    while y0 < h {
        let y1 = (y0 + spec.tile).min(h);
        let py0 = y0.saturating_sub(spec.overlap);
        let py1 = (y1 + spec.overlap).min(h);
        let mut x0 = 0;
        while x0 < w {
            let x1 = (x0 + spec.tile).min(w);
            let px0 = x0.saturating_sub(spec.overlap);
            let px1 = (x1 + spec.overlap).min(w);
            // Crop the padded tile [py0..py1) × [px0..px1).
            let tile = t.slice_axis(1, py0, py1 - py0)?.slice_axis(2, px0, px1 - px0)?;
            let tile = tile.reshape(&[1, c, py1 - py0, px1 - px0])?;
            let sr = forward(&tile)?;
            let expect = [1, c, (py1 - py0) * scale, (px1 - px0) * scale];
            if sr.shape() != expect {
                return Err(TensorError::ShapeMismatch {
                    lhs: sr.shape().to_vec(),
                    rhs: expect.to_vec(),
                    op: "tiled inference output",
                });
            }
            // Keep the center crop corresponding to [y0..y1) × [x0..x1).
            let (ky, kx) = ((y0 - py0) * scale, (x0 - px0) * scale);
            let (kh, kw) = ((y1 - y0) * scale, (x1 - x0) * scale);
            let srw = (px1 - px0) * scale;
            for ci in 0..c {
                for ry in 0..kh {
                    let src_row = (ci * (py1 - py0) * scale + ky + ry) * srw + kx;
                    let dst_row = (ci * h * scale + y0 * scale + ry) * w * scale + x0 * scale;
                    out.data_mut()[dst_row..dst_row + kw]
                        .copy_from_slice(&sr.data()[src_row..src_row + kw]);
                }
            }
            x0 = x1;
        }
        y0 = y1;
    }
    Image::from_tensor(out)
}

/// Tiled super-resolution through the training-path network.
///
/// # Errors
///
/// Propagates forward and geometry errors.
pub fn super_resolve_tiled(net: &dyn SrNetwork, lr: &Image, spec: TileSpec) -> Result<Image> {
    tiled_with(training_forward(net), net.scale(), lr, spec)
}

/// Tiled super-resolution through a deployed network.
///
/// # Errors
///
/// Propagates forward and geometry errors.
pub fn super_resolve_tiled_deployed(
    net: &DeployedNetwork,
    lr: &Image,
    spec: TileSpec,
) -> Result<Image> {
    tiled_with(|t| net.forward(t), net.scale(), lr, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::{Method, ScalesComponents};
    use scales_models::{srresnet, SrConfig};
    use scales_nn::init::rng;

    fn probe_image(h: usize, w: usize) -> Image {
        scales_data::synth::scene(h, w, scales_data::synth::SceneConfig::default(), &mut rng(41))
    }

    /// SRResNet-lite with 1 block: total conv radius along the deepest
    /// path is 5 (head 1 + two body convs 2 + body-end 1 + tail 1), plus 2
    /// for the bicubic kernel.
    fn local_net() -> impl SrNetwork {
        srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            // Local-only components: stitching is exact (module docs).
            method: Method::Scales(ScalesComponents::lsf_spatial()),
            seed: 23,
        })
        .unwrap()
    }

    #[test]
    fn batch_matches_single_image_forwards() {
        let net = local_net();
        let images = vec![probe_image(8, 8), probe_image(8, 8)];
        let batch = super_resolve_batch(&net, &images).unwrap();
        for (img, sr) in images.iter().zip(batch.iter()) {
            let single = net.super_resolve(img).unwrap();
            assert_eq!((sr.height(), sr.width()), (16, 16));
            for (a, b) in sr.tensor().data().iter().zip(single.tensor().data().iter()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn batch_rejects_mixed_sizes_and_empty_sets() {
        let net = local_net();
        assert!(super_resolve_batch(&net, &[]).is_err());
        let images = vec![probe_image(8, 8), probe_image(8, 10)];
        assert!(super_resolve_batch(&net, &images).is_err());
    }

    #[test]
    fn tiled_matches_full_image_on_local_network() {
        let net = local_net();
        let img = probe_image(16, 16);
        let full = net.super_resolve(&img).unwrap();
        let tiled = super_resolve_tiled(&net, &img, TileSpec::new(8, 8).unwrap()).unwrap();
        assert_eq!((tiled.height(), tiled.width()), (32, 32));
        for (a, b) in tiled.tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn tiled_deployed_matches_full_deployed() {
        let net = local_net();
        let deployed = net.lower().unwrap();
        let img = probe_image(20, 12);
        let full = deployed.super_resolve(&img).unwrap();
        let tiled =
            super_resolve_tiled_deployed(&deployed, &img, TileSpec::new(8, 8).unwrap()).unwrap();
        for (a, b) in tiled.tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn tiled_handles_non_divisible_sizes() {
        let net = local_net();
        let img = probe_image(11, 7);
        let sr = super_resolve_tiled(&net, &img, TileSpec::new(4, 6).unwrap()).unwrap();
        assert_eq!((sr.height(), sr.width()), (22, 14));
    }

    #[test]
    fn tile_spec_validates() {
        assert!(TileSpec::new(0, 2).is_err());
        assert!(TileSpec::new(8, 0).is_ok());
    }
}
