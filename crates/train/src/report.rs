//! Plain-text table formatting mirroring the paper's table layout, plus a
//! small file sink under `target/scales-report/`.

use crate::eval::Score;
use crate::experiment::RowResult;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Format one score as the paper does: `PSNR/SSIM` with 2/3 decimals.
#[must_use]
pub fn format_score(s: Score) -> String {
    format!("{:>6.2} {:>6.3}", s.psnr, s.ssim)
}

/// Render a Table III/IV-style comparison table.
#[must_use]
pub fn render_table(title: &str, arch: &str, scale: usize, rows: &[RowResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<22} {:>9} {:>9}", "Method", "Params", "OPs");
    if let Some(first) = rows.first() {
        for (name, _) in &first.scores {
            let _ = write!(out, "  {name:>13}");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{:-<100}", "");
    for r in rows {
        let label = format!("{arch}-{} x{scale}", r.method);
        let (p, o) = match &r.cost {
            Some(c) => (c.params_display(), c.ops_display()),
            None => ("-".to_string(), "-".to_string()),
        };
        let _ = write!(out, "{label:<22} {p:>9} {o:>9}");
        for (_, s) in &r.scores {
            let _ = write!(out, "  {}", format_score(*s));
        }
        let _ = writeln!(out);
    }
    out
}

/// Directory where bench harnesses drop their artefacts
/// (`target/scales-report/`). Created on first use.
#[must_use]
pub fn report_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("target"), |root| root.join("target"))
        .join("scales-report");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a report file into [`report_dir`], returning its path.
#[must_use]
pub fn write_report(name: &str, contents: &str) -> PathBuf {
    let path = report_dir().join(name);
    if std::fs::write(&path, contents).is_err() {
        eprintln!("warning: could not write report {}", path.display());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;

    #[test]
    fn table_contains_rows_and_header() {
        let rows = vec![RowResult {
            method: Method::Bicubic,
            scores: vec![("SynSet5", Score { psnr: 30.12, ssim: 0.91 })],
            cost: None,
        }];
        let t = render_table("Table III", "SRResNet", 2, &rows);
        assert!(t.contains("SRResNet-Bicubic x2"));
        assert!(t.contains("SynSet5"));
        assert!(t.contains("30.12"));
    }

    #[test]
    fn report_dir_is_writable() {
        let p = write_report("self_test.txt", "ok");
        assert!(p.exists());
        let _ = std::fs::remove_file(p);
    }
}
