//! The experiment runner shared by benches and examples: builds a model
//! for an (architecture, method, scale) triple, trains it with the shared
//! protocol, evaluates it on the four synthetic benchmarks, and reports
//! cost with the paper's conventions.

use crate::eval::{evaluate_bicubic, evaluate_with, Score};
use crate::trainer::{train, TrainConfig};
use scales_binary::CostReport;
use scales_core::Method;
use scales_data::Benchmark;
use scales_models::{DeployedNetwork, SrConfig, SrNetwork};
use scales_serve::{Engine, Precision};
use scales_tensor::Result;
use std::path::Path;

// The architecture registry lived here before the persistence layer
// needed it below the serving stack; it now comes from `scales-models`
// and is re-exported to keep the historical `scales_train::Arch` path.
pub use scales_models::Arch;

/// FNV-1a over the network's identity (arch, full config incl. method)
/// and every parameter's f32 bit pattern: a cheap content fingerprint
/// that changes whenever the weights — or the method interpreting them —
/// do. The method must participate because different binarization
/// methods can share bit-identical parameter sets (e.g. BTM and BAM both
/// hold a single kaiming weight) while lowering to materially different
/// graphs.
fn network_fingerprint(net: &dyn SrNetwork) -> u64 {
    // Built on the shared `scales_io::Fnv1a` primitive with the exact
    // historical mixing scheme — byte-wise over the identity string,
    // whole-word over each parameter's bit pattern — so cache entries
    // written before the hash moved into `scales-io` remain valid.
    let mut h = scales_io::Fnv1a::new();
    let config = net.config();
    h.write(
        format!(
            "{}/{}/{}x{}b{}",
            net.arch().name(),
            config.method,
            config.scale,
            config.channels,
            config.blocks
        )
        .as_bytes(),
    );
    for p in net.params() {
        p.with_value(|t| {
            for v in t.data() {
                h.write_u64(u64::from(v.to_bits()));
            }
        });
    }
    h.finish()
}

/// Lower `net` through an on-disk artifact cache. The entry lives at
/// `dir/<key>-<fingerprint>.sca`, where the fingerprint hashes the
/// network's identity (arch, config, method) and parameter bits — so a
/// re-seeded, re-initialised, further trained or re-methoded network
/// regenerates automatically instead of being served a stale graph. When the entry exists, decodes, and matches the
/// network's architecture name and scale, the packed graph is
/// reassembled from disk (no re-lowering, bit-identical by the
/// `scales-io` format contract); otherwise the network is lowered and
/// the artifact written back best-effort (an unwritable cache never
/// fails the caller — the lowered graph is returned either way).
///
/// The fingerprint covers the network's identity and weights; changes
/// to the *lowering code itself* still require a fresh `key` or a cache
/// scrub (CI scrubs; see `.github/workflows/ci.yml`).
///
/// This is what lets many benchmark/serving processes share one packing
/// cost: the first run pays `lower()`, every later run deserializes.
///
/// # Errors
///
/// Propagates lowering errors (e.g. architectures without a lowering).
pub fn lower_cached_in(dir: &Path, net: &dyn SrNetwork, key: &str) -> Result<DeployedNetwork> {
    let path = dir.join(format!("{key}-{:016x}.sca", network_fingerprint(net)));
    if path.exists() {
        if let Ok(artifact) = scales_io::load_artifact(&path) {
            if artifact.name() == net.arch().name() && artifact.scale() == net.scale() {
                return Ok(artifact);
            }
        }
        // Stale, foreign or corrupt entries fall through and regenerate.
    }
    let lowered = net.lower()?;
    if std::fs::create_dir_all(dir).is_ok() {
        // save_artifact publishes atomically (temp file + rename), so
        // concurrent cache sharers never observe a torn entry; a failed
        // write is non-fatal — the lowered graph is returned regardless.
        if scales_io::save_artifact(&path, &lowered).is_ok() {
            // Evict superseded fingerprints of the same key so a cache
            // that outlives many training rounds stays one entry per
            // key rather than growing without bound.
            if let Ok(entries) = std::fs::read_dir(dir) {
                let prefix = format!("{key}-");
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    // Only this key's own fingerprinted entries: the
                    // remainder must be exactly 16 hex chars + ".sca",
                    // so keys that extend this one ("edsr" vs
                    // "edsr-x4") are never evicted by each other.
                    let fingerprinted = name
                        .strip_prefix(&prefix)
                        .and_then(|rest| rest.strip_suffix(".sca"))
                        .is_some_and(|fp| {
                            fp.len() == 16 && fp.bytes().all(|b| b.is_ascii_hexdigit())
                        });
                    if fingerprinted && entry.path() != path {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }
    Ok(lowered)
}

/// [`lower_cached_in`] rooted at the `SCALES_ARTIFACT_CACHE` environment
/// variable; with the variable unset this is a plain [`SrNetwork::lower`].
///
/// # Errors
///
/// Propagates lowering errors.
pub fn lower_cached(net: &dyn SrNetwork, key: &str) -> Result<DeployedNetwork> {
    match std::env::var_os("SCALES_ARTIFACT_CACHE") {
        Some(dir) => lower_cached_in(Path::new(&dir), net, key),
        None => net.lower(),
    }
}

/// Experiment budget, overridable through environment variables so CI can
/// run fast while a workstation can run closer to the paper's scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Training iterations per row (`SCALES_BENCH_ITERS`).
    pub iters: usize,
    /// HR evaluation image side (`SCALES_BENCH_HR`), divisible by 8.
    pub hr_eval: usize,
    /// Body channels (`SCALES_BENCH_CHANNELS`).
    pub channels: usize,
    /// Body blocks (`SCALES_BENCH_BLOCKS`).
    pub blocks: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { iters: 120, hr_eval: 32, channels: 8, blocks: 1 }
    }
}

impl Budget {
    /// Read the budget from the environment, falling back to defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let d = Self::default();
        Self {
            iters: get("SCALES_BENCH_ITERS", d.iters),
            hr_eval: get("SCALES_BENCH_HR", d.hr_eval),
            channels: get("SCALES_BENCH_CHANNELS", d.channels),
            blocks: get("SCALES_BENCH_BLOCKS", d.blocks),
        }
    }

    /// The train config this budget implies.
    #[must_use]
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            iters: self.iters,
            batch: 4,
            lr_patch: 12,
            lr: 2e-3,
            halve_every: (self.iters as u64 * 2 / 3).max(1),
            seed,
        }
    }
}

/// One comparison-table row: a method evaluated on all four benchmarks.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The method of this row.
    pub method: Method,
    /// `(benchmark name, score)` per benchmark, in paper column order.
    pub scores: Vec<(&'static str, Score)>,
    /// Cost accounted on a 640×360 LR input (the paper evaluates OPs on a
    /// 1280×720 HR image; at ×2 that is a 640×360 LR input).
    pub cost: Option<CostReport>,
}

/// Run one table row: train (unless FP-free bicubic) and evaluate.
///
/// # Errors
///
/// Propagates build/train/eval errors.
pub fn run_row(arch: Arch, method: Method, scale: usize, budget: &Budget) -> Result<RowResult> {
    let mut scores = Vec::with_capacity(Benchmark::ALL.len());
    if method == Method::Bicubic {
        for b in Benchmark::ALL {
            let set = b.build(scale, budget.hr_eval)?;
            scores.push((b.name(), evaluate_bicubic(&set)?));
        }
        return Ok(RowResult { method, scores, cost: None });
    }
    let config = SrConfig {
        channels: budget.channels,
        blocks: budget.blocks,
        scale,
        method,
        seed: 1234,
    };
    let model = arch.build(config)?;
    train(model.as_ref(), budget.train_config(42))?;
    // One serving engine per row, reused across the four benchmarks (the
    // table protocol evaluates the training path).
    let engine =
        Engine::builder().model_ref(model.as_ref()).precision(Precision::Training).build()?;
    let session = engine.session();
    for b in Benchmark::ALL {
        let set = b.build(scale, budget.hr_eval)?;
        scores.push((b.name(), evaluate_with(&session, &set)?));
    }
    let hr_eval_w = 1280 / scale;
    let hr_eval_h = 720 / scale;
    Ok(RowResult { method, scores, cost: Some(model.cost(hr_eval_h, hr_eval_w)) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bicubic_row_needs_no_training() {
        let r = run_row(Arch::SrResNet, Method::Bicubic, 2, &Budget { iters: 0, hr_eval: 32, channels: 4, blocks: 1 }).unwrap();
        assert_eq!(r.scores.len(), 4);
        assert!(r.cost.is_none());
    }

    #[test]
    fn tiny_scales_row_runs_end_to_end() {
        let budget = Budget { iters: 6, hr_eval: 32, channels: 4, blocks: 1 };
        let r = run_row(Arch::SrResNet, Method::scales(), 2, &budget).unwrap();
        assert_eq!(r.scores.len(), 4);
        assert!(r.cost.is_some());
        assert!(r.scores.iter().all(|(_, s)| s.psnr.is_finite()));
    }

    #[test]
    fn lower_cached_round_trips_through_the_cache_dir() {
        let net = Arch::SrResNet
            .build(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 })
            .unwrap();
        let dir = std::env::temp_dir().join(format!("scales-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // First call lowers and populates the cache (one fingerprinted
        // entry under the key).
        let first = lower_cached_in(&dir, net.as_ref(), "srresnet-test").unwrap();
        let entry = || {
            let mut files: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "sca"))
                .collect();
            assert_eq!(files.len(), 1, "exactly one cache entry");
            files.pop().unwrap()
        };
        let path = entry();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("srresnet-test-"));
        // Second call must deserialize (poke the file's mtime-independent
        // path by checking bit-identical forwards instead of identity).
        let second = lower_cached_in(&dir, net.as_ref(), "srresnet-test").unwrap();
        let x = scales_tensor::Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32 * 0.21).sin() * 0.4 + 0.5).collect(),
            &[1, 3, 8, 8],
        )
        .unwrap();
        let a = first.forward(&x).unwrap();
        let b = second.forward(&x).unwrap();
        for (p, q) in a.data().iter().zip(b.data().iter()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // A corrupt cache entry regenerates instead of failing.
        std::fs::write(&path, b"garbage").unwrap();
        let third = lower_cached_in(&dir, net.as_ref(), "srresnet-test").unwrap();
        assert_eq!(third.num_ops(), first.num_ops());
        // A colliding entry from a *different* network (here: a ×4 RDN
        // copied over this network's fingerprint path) is detected by the
        // arch/scale check and regenerated, not served.
        let other = Arch::Rdn
            .build(SrConfig { channels: 8, blocks: 1, scale: 4, method: Method::scales(), seed: 9 })
            .unwrap();
        scales_io::save_artifact(&path, &other.lower().unwrap()).unwrap();
        let fourth = lower_cached_in(&dir, net.as_ref(), "srresnet-test").unwrap();
        assert_eq!(fourth.name(), "SRResNet");
        assert_eq!(fourth.scale(), 2);
        assert_eq!(fourth.num_ops(), first.num_ops());
        // Changed weights change the fingerprint: a fresh entry replaces
        // the superseded one (stale fingerprints are evicted, so the
        // cache stays one entry per key).
        net.params()[0].update_value(|t| t.data_mut()[0] += 1.0);
        let _ = lower_cached_in(&dir, net.as_ref(), "srresnet-test").unwrap();
        let remaining = entry();
        assert_ne!(remaining, path, "the entry is the re-weighted network's fingerprint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lower_cached_distinguishes_methods_with_identical_params() {
        // BTM and BAM nets from one seed hold bit-identical parameters;
        // the fingerprint must still keep their cache entries apart.
        let config =
            |m| SrConfig { channels: 8, blocks: 1, scale: 2, method: m, seed: 31 };
        let btm = Arch::SrResNet.build(config(Method::Btm)).unwrap();
        let bam = Arch::SrResNet.build(config(Method::Bam)).unwrap();
        // Give both nets the *same* nonzero tail (the zero-init tail would
        // otherwise make every method's output equal the bicubic skip),
        // keeping the parameter sets bit-identical across the two methods.
        for net in [btm.as_ref(), bam.as_ref()] {
            for p in net.params() {
                p.update_value(|t| {
                    for (j, v) in t.data_mut().iter_mut().enumerate() {
                        *v += ((j as f32) * 0.41).sin() * 0.1;
                    }
                });
            }
        }
        let dir = std::env::temp_dir().join(format!("scales-cache-m-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = lower_cached_in(&dir, btm.as_ref(), "same-key").unwrap();
        let b = lower_cached_in(&dir, bam.as_ref(), "same-key").unwrap();
        // The BAM publish evicts the superseded BTM fingerprint, and the
        // distinct fingerprints guarantee the BTM entry was never served
        // for the BAM network (checked on outputs below).
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "sca"))
            .collect();
        assert_eq!(entries.len(), 1, "superseded fingerprint evicted");
        // The graphs must really be the two different lowerings.
        let x = scales_tensor::Tensor::from_vec(
            (0..3 * 36).map(|i| (i as f32 * 0.31).sin() * 0.4 + 0.5).collect(),
            &[1, 3, 6, 6],
        )
        .unwrap();
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert!(
            ya.data().iter().zip(yb.data().iter()).any(|(p, q)| p != q),
            "BTM and BAM lowerings must not be interchangeable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lower_cached_propagates_unsupported_architectures() {
        let net = Arch::SwinIr
            .build(SrConfig {
                channels: 8,
                blocks: 1,
                scale: 2,
                method: Method::FullPrecision,
                seed: 6,
            })
            .unwrap();
        let dir = std::env::temp_dir().join(format!("scales-cache-t-{}", std::process::id()));
        assert!(lower_cached_in(&dir, net.as_ref(), "swinir").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
