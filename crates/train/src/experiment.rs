//! The experiment runner shared by benches and examples: builds a model
//! for an (architecture, method, scale) triple, trains it with the shared
//! protocol, evaluates it on the four synthetic benchmarks, and reports
//! cost with the paper's conventions.

use crate::eval::{evaluate_bicubic, evaluate_with, Score};
use crate::trainer::{train, TrainConfig};
use scales_binary::CostReport;
use scales_core::Method;
use scales_data::Benchmark;
use scales_models::{edsr, hat, rcan, rdn, srresnet, swinir, SrConfig, SrNetwork};
use scales_serve::{Engine, Precision};
use scales_tensor::Result;

/// Architectures of the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// SRResNet (Table III).
    SrResNet,
    /// EDSR (motivation study).
    Edsr,
    /// RDN-lite.
    Rdn,
    /// RCAN-lite.
    Rcan,
    /// SwinIR-lite (Table IV).
    SwinIr,
    /// HAT-lite (Table IV).
    Hat,
}

impl Arch {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Arch::SrResNet => "SRResNet",
            Arch::Edsr => "EDSR",
            Arch::Rdn => "RDN",
            Arch::Rcan => "RCAN",
            Arch::SwinIr => "SwinIR",
            Arch::Hat => "HAT",
        }
    }

    /// Build the architecture for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (e.g. CNN-only method on a
    /// transformer).
    pub fn build(&self, config: SrConfig) -> Result<Box<dyn SrNetwork>> {
        Ok(match self {
            Arch::SrResNet => Box::new(srresnet(config)?),
            Arch::Edsr => Box::new(edsr(config)?),
            Arch::Rdn => Box::new(rdn(config)?),
            Arch::Rcan => Box::new(rcan(config)?),
            Arch::SwinIr => Box::new(swinir(config)?),
            Arch::Hat => Box::new(hat(config)?),
        })
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Box<dyn SrNetwork> needs Module; provide the blanket through deref in
// bench code by exposing helpers here instead.

/// Experiment budget, overridable through environment variables so CI can
/// run fast while a workstation can run closer to the paper's scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Training iterations per row (`SCALES_BENCH_ITERS`).
    pub iters: usize,
    /// HR evaluation image side (`SCALES_BENCH_HR`), divisible by 8.
    pub hr_eval: usize,
    /// Body channels (`SCALES_BENCH_CHANNELS`).
    pub channels: usize,
    /// Body blocks (`SCALES_BENCH_BLOCKS`).
    pub blocks: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self { iters: 120, hr_eval: 32, channels: 8, blocks: 1 }
    }
}

impl Budget {
    /// Read the budget from the environment, falling back to defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let d = Self::default();
        Self {
            iters: get("SCALES_BENCH_ITERS", d.iters),
            hr_eval: get("SCALES_BENCH_HR", d.hr_eval),
            channels: get("SCALES_BENCH_CHANNELS", d.channels),
            blocks: get("SCALES_BENCH_BLOCKS", d.blocks),
        }
    }

    /// The train config this budget implies.
    #[must_use]
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            iters: self.iters,
            batch: 4,
            lr_patch: 12,
            lr: 2e-3,
            halve_every: (self.iters as u64 * 2 / 3).max(1),
            seed,
        }
    }
}

/// One comparison-table row: a method evaluated on all four benchmarks.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// The method of this row.
    pub method: Method,
    /// `(benchmark name, score)` per benchmark, in paper column order.
    pub scores: Vec<(&'static str, Score)>,
    /// Cost accounted on a 640×360 LR input (the paper evaluates OPs on a
    /// 1280×720 HR image; at ×2 that is a 640×360 LR input).
    pub cost: Option<CostReport>,
}

/// Run one table row: train (unless FP-free bicubic) and evaluate.
///
/// # Errors
///
/// Propagates build/train/eval errors.
pub fn run_row(arch: Arch, method: Method, scale: usize, budget: &Budget) -> Result<RowResult> {
    let mut scores = Vec::with_capacity(Benchmark::ALL.len());
    if method == Method::Bicubic {
        for b in Benchmark::ALL {
            let set = b.build(scale, budget.hr_eval)?;
            scores.push((b.name(), evaluate_bicubic(&set)?));
        }
        return Ok(RowResult { method, scores, cost: None });
    }
    let config = SrConfig {
        channels: budget.channels,
        blocks: budget.blocks,
        scale,
        method,
        seed: 1234,
    };
    let model = arch.build(config)?;
    train(model.as_ref(), budget.train_config(42))?;
    // One serving engine per row, reused across the four benchmarks (the
    // table protocol evaluates the training path).
    let engine =
        Engine::builder().model_ref(model.as_ref()).precision(Precision::Training).build()?;
    let session = engine.session();
    for b in Benchmark::ALL {
        let set = b.build(scale, budget.hr_eval)?;
        scores.push((b.name(), evaluate_with(&session, &set)?));
    }
    let hr_eval_w = 1280 / scale;
    let hr_eval_h = 720 / scale;
    Ok(RowResult { method, scores, cost: Some(model.cost(hr_eval_h, hr_eval_w)) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bicubic_row_needs_no_training() {
        let r = run_row(Arch::SrResNet, Method::Bicubic, 2, &Budget { iters: 0, hr_eval: 32, channels: 4, blocks: 1 }).unwrap();
        assert_eq!(r.scores.len(), 4);
        assert!(r.cost.is_none());
    }

    #[test]
    fn tiny_scales_row_runs_end_to_end() {
        let budget = Budget { iters: 6, hr_eval: 32, channels: 4, blocks: 1 };
        let r = run_row(Arch::SrResNet, Method::scales(), 2, &budget).unwrap();
        assert_eq!(r.scores.len(), 4);
        assert!(r.cost.is_some());
        assert!(r.scores.iter().all(|(_, s)| s.psnr.is_finite()));
    }
}
