//! The training loop — the paper's protocol at mini scale: L1 loss, Adam
//! (β₁ = 0.9, β₂ = 0.999, ε = 1e-8), LR halving schedule, random aligned
//! LR/HR patches.

use scales_autograd::Var;
use scales_data::{PatchSampler, TrainSet};
use scales_models::SrNetwork;
use scales_nn::loss::l1_loss;
use scales_nn::optim::{Adam, HalvingSchedule};
use scales_tensor::Result;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Optimizer iterations.
    pub iters: usize,
    /// Patch batch size (paper: 16; lite default 4).
    pub batch: usize,
    /// LR patch side (paper: 48 HR-side input; lite default 12).
    pub lr_patch: usize,
    /// Initial learning rate (paper: 2e-4; lite default 2e-3 since the
    /// budget is hundreds of iterations, not 300 epochs).
    pub lr: f32,
    /// Iterations between LR halvings.
    pub halve_every: u64,
    /// Data/order seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { iters: 200, batch: 4, lr_patch: 12, lr: 2e-3, halve_every: 120, seed: 99 }
    }
}

/// Summary of a finished training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean L1 loss over the first 10% of iterations.
    pub initial_loss: f32,
    /// Mean L1 loss over the final 10% of iterations.
    pub final_loss: f32,
    /// Full loss history.
    pub history: Vec<f32>,
}

impl TrainStats {
    /// Whether training reduced the loss.
    #[must_use]
    pub fn improved(&self) -> bool {
        self.final_loss < self.initial_loss
    }
}

/// Train a model in place with the paper's protocol.
///
/// # Errors
///
/// Propagates tensor-shape errors from the model or data pipeline.
pub fn train<M: SrNetwork + ?Sized>(model: &M, config: TrainConfig) -> Result<TrainStats> {
    let scale = model.scale();
    let train_set = TrainSet::new(config.seed, config.lr_patch * scale * 2);
    let mut sampler = PatchSampler::new(train_set, scale, config.lr_patch, config.seed ^ 0xABCD)?;
    let mut opt = Adam::new(model.params(), config.lr);
    let schedule = HalvingSchedule { initial: config.lr, halve_every: config.halve_every };
    let mut history = Vec::with_capacity(config.iters);
    for it in 0..config.iters {
        opt.set_lr(schedule.lr_at(it as u64));
        opt.zero_grad();
        let batch = sampler.next_batch(config.batch)?;
        let x = Var::new(batch.lr);
        let target = Var::new(batch.hr);
        let pred = model.forward(&x)?;
        let loss = l1_loss(&pred, &target)?;
        history.push(loss.value().data()[0]);
        loss.backward()?;
        opt.step();
        model.clamp_alphas();
    }
    let chunk = (config.iters / 10).max(1);
    let initial_loss = history.iter().take(chunk).sum::<f32>() / chunk as f32;
    let final_loss = history.iter().rev().take(chunk).sum::<f32>() / chunk as f32;
    Ok(TrainStats { initial_loss, final_loss, history })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_models::{srresnet, SrConfig};

    #[test]
    fn training_reduces_loss_for_scales_method() {
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
        let stats = train(&net, TrainConfig { iters: 40, batch: 2, lr_patch: 8, lr: 2e-3, halve_every: 1000, seed: 3 }).unwrap();
        assert!(stats.improved(), "{} -> {}", stats.initial_loss, stats.final_loss);
    }

    #[test]
    fn history_has_one_entry_per_iter() {
        let net = srresnet(SrConfig { channels: 4, blocks: 1, scale: 2, method: Method::E2fif, seed: 5 }).unwrap();
        let stats = train(&net, TrainConfig { iters: 10, batch: 1, lr_patch: 8, lr: 1e-3, halve_every: 5, seed: 3 }).unwrap();
        assert_eq!(stats.history.len(), 10);
        assert!(stats.history.iter().all(|l| l.is_finite()));
    }
}
