//! Evaluation: mean PSNR / SSIM over a benchmark set with the standard SR
//! protocol (Y channel, `scale`-pixel shave).

use scales_data::{upscale, EvalSet};
use scales_metrics::{psnr_y, ssim_y};
use scales_models::SrNetwork;
use scales_tensor::Result;

/// Mean PSNR (dB) and SSIM over a set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Peak signal-to-noise ratio in dB.
    pub psnr: f64,
    /// Structural similarity in `[0, 1]` (can be slightly negative for
    /// anti-correlated images).
    pub ssim: f64,
}

impl Score {
    fn accumulate(scores: &[Score]) -> Score {
        let n = scores.len() as f64;
        Score {
            psnr: scores.iter().map(|s| s.psnr).sum::<f64>() / n,
            ssim: scores.iter().map(|s| s.ssim).sum::<f64>() / n,
        }
    }
}

/// Evaluate a model over an [`EvalSet`].
///
/// # Errors
///
/// Propagates forward / metric errors.
pub fn evaluate<M: SrNetwork + ?Sized>(model: &M, set: &EvalSet) -> Result<Score> {
    let shave = set.scale();
    let mut scores = Vec::with_capacity(set.len());
    for pair in set.pairs() {
        let sr = model.super_resolve(&pair.lr)?;
        scores.push(Score {
            psnr: psnr_y(&sr, &pair.hr, shave)?,
            ssim: ssim_y(&sr, &pair.hr, shave)?,
        });
    }
    Ok(Score::accumulate(&scores))
}

/// Evaluate the bicubic-interpolation baseline over an [`EvalSet`].
///
/// # Errors
///
/// Propagates resize / metric errors.
pub fn evaluate_bicubic(set: &EvalSet) -> Result<Score> {
    let shave = set.scale();
    let mut scores = Vec::with_capacity(set.len());
    for pair in set.pairs() {
        let sr = upscale(&pair.lr, set.scale())?;
        scores.push(Score {
            psnr: psnr_y(&sr, &pair.hr, shave)?,
            ssim: ssim_y(&sr, &pair.hr, shave)?,
        });
    }
    Ok(Score::accumulate(&scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_data::Benchmark;
    use scales_models::{srresnet, SrConfig};

    #[test]
    fn bicubic_baseline_is_finite_and_positive() {
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let s = evaluate_bicubic(&set).unwrap();
        assert!(s.psnr.is_finite() && s.psnr > 10.0, "psnr {}", s.psnr);
        assert!(s.ssim > 0.3 && s.ssim <= 1.0, "ssim {}", s.ssim);
    }

    #[test]
    fn untrained_model_evaluates() {
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
        let s = evaluate(&net, &set).unwrap();
        assert!(s.psnr.is_finite());
    }
}
