//! Evaluation: mean PSNR / SSIM over a benchmark set with the standard SR
//! protocol (Y channel, `scale`-pixel shave).

use scales_data::{upscale, EvalSet};
use scales_metrics::{psnr_y, ssim_y};
use scales_models::SrNetwork;
use scales_serve::{Engine, Precision, Session};
use scales_tensor::Result;

/// Mean PSNR (dB) and SSIM over a set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Peak signal-to-noise ratio in dB.
    pub psnr: f64,
    /// Structural similarity in `[0, 1]` (can be slightly negative for
    /// anti-correlated images).
    pub ssim: f64,
}

impl Score {
    fn accumulate(scores: &[Score]) -> Score {
        let n = scores.len() as f64;
        Score {
            psnr: scores.iter().map(|s| s.psnr).sum::<f64>() / n,
            ssim: scores.iter().map(|s| s.ssim).sum::<f64>() / n,
        }
    }
}

/// Evaluate a model over an [`EvalSet`] through a training-precision
/// serving engine (bit-identical to forwarding the model directly).
///
/// # Errors
///
/// Propagates forward / metric errors.
pub fn evaluate<M: SrNetwork + ?Sized>(model: &M, set: &EvalSet) -> Result<Score> {
    let engine = Engine::builder().model_ref(model).precision(Precision::Training).build()?;
    evaluate_with(&engine.session(), set)
}

/// Evaluate whatever a serving [`Session`] fronts — training path,
/// auto-lowered deployment graph, any backend — over an [`EvalSet`].
///
/// # Errors
///
/// Propagates forward / metric errors.
pub fn evaluate_with(session: &Session<'_, '_>, set: &EvalSet) -> Result<Score> {
    let shave = set.scale();
    let mut scores = Vec::with_capacity(set.len());
    for pair in set.pairs() {
        let sr = session.super_resolve(&pair.lr)?;
        scores.push(Score {
            psnr: psnr_y(&sr, &pair.hr, shave)?,
            ssim: ssim_y(&sr, &pair.hr, shave)?,
        });
    }
    Ok(Score::accumulate(&scores))
}

/// Evaluate the bicubic-interpolation baseline over an [`EvalSet`].
///
/// # Errors
///
/// Propagates resize / metric errors.
pub fn evaluate_bicubic(set: &EvalSet) -> Result<Score> {
    let shave = set.scale();
    let mut scores = Vec::with_capacity(set.len());
    for pair in set.pairs() {
        let sr = upscale(&pair.lr, set.scale())?;
        scores.push(Score {
            psnr: psnr_y(&sr, &pair.hr, shave)?,
            ssim: ssim_y(&sr, &pair.hr, shave)?,
        });
    }
    Ok(Score::accumulate(&scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_data::Benchmark;
    use scales_models::{srresnet, SrConfig};

    #[test]
    fn bicubic_baseline_is_finite_and_positive() {
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let s = evaluate_bicubic(&set).unwrap();
        assert!(s.psnr.is_finite() && s.psnr > 10.0, "psnr {}", s.psnr);
        assert!(s.ssim > 0.3 && s.ssim <= 1.0, "ssim {}", s.ssim);
    }

    #[test]
    fn untrained_model_evaluates() {
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
        let s = evaluate(&net, &set).unwrap();
        assert!(s.psnr.is_finite());
    }

    #[test]
    fn engine_evaluate_matches_direct_super_resolve() {
        use scales_metrics::{psnr_y, ssim_y};
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 6 }).unwrap();
        let via_engine = evaluate(&net, &set).unwrap();
        // Reference: forward each image directly, no serving layer.
        let mut scores = Vec::new();
        for pair in set.pairs() {
            let sr = net.super_resolve(&pair.lr).unwrap();
            scores.push(Score {
                psnr: psnr_y(&sr, &pair.hr, set.scale()).unwrap(),
                ssim: ssim_y(&sr, &pair.hr, set.scale()).unwrap(),
            });
        }
        let direct = Score::accumulate(&scores);
        assert_eq!(via_engine.psnr.to_bits(), direct.psnr.to_bits(), "psnr must be bit-identical");
        assert_eq!(via_engine.ssim.to_bits(), direct.ssim.to_bits(), "ssim must be bit-identical");
    }

    #[test]
    fn deployed_session_evaluates_close_to_training() {
        let set = Benchmark::SynSet5.build(2, 32).unwrap();
        let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 7 }).unwrap();
        let training = evaluate(&net, &set).unwrap();
        let engine = Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
        assert!(engine.fallback().is_none());
        let deployed = evaluate_with(&engine.session(), &set).unwrap();
        assert!((training.psnr - deployed.psnr).abs() < 0.05, "{} vs {}", training.psnr, deployed.psnr);
        assert!((training.ssim - deployed.ssim).abs() < 0.01);
    }
}
