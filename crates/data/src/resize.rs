//! Bicubic resampling with the Keys kernel (a = −0.5) and edge clamping —
//! both the LR-generation pipeline (HR → ÷scale) and the paper's "Bicubic"
//! baseline row (LR → ×scale).

use crate::image::Image;
use scales_tensor::{Result, Tensor, TensorError};

/// The Keys cubic convolution kernel with a = −0.5 (the classic "bicubic").
#[must_use]
pub fn cubic_kernel(x: f32) -> f32 {
    const A: f32 = -0.5;
    let x = x.abs();
    if x < 1.0 {
        (A + 2.0) * x * x * x - (A + 3.0) * x * x + 1.0
    } else if x < 2.0 {
        A * x * x * x - 5.0 * A * x * x + 8.0 * A * x - 4.0 * A
    } else {
        0.0
    }
}

/// Resize one `[C, H, W]` tensor to `(out_h, out_w)` with separable bicubic
/// interpolation and clamped edges. Uses the align-corners-false pixel
/// model (`src = (dst + 0.5)·scale − 0.5`) like PIL/PyTorch.
///
/// # Errors
///
/// Returns an error for non-rank-3 input or zero target extents.
pub fn resize_bicubic_tensor(input: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: input.rank(), op: "resize" });
    }
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument("target extent must be positive".into()));
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let scale_y = h as f32 / out_h as f32;
    let scale_x = w as f32 / out_w as f32;
    // Horizontal pass: [C, H, W] → [C, H, out_w].
    let mut tmp = Tensor::zeros(&[c, h, out_w]);
    // When downscaling, widen the kernel support (anti-aliasing), like PIL.
    let support_x = scale_x.max(1.0);
    for ox in 0..out_w {
        let src = (ox as f32 + 0.5) * scale_x - 0.5;
        let lo = (src - 2.0 * support_x).floor() as isize;
        let hi = (src + 2.0 * support_x).ceil() as isize;
        let mut taps: Vec<(usize, f32)> = Vec::with_capacity((hi - lo + 1) as usize);
        let mut norm = 0.0;
        for ix in lo..=hi {
            let wgt = cubic_kernel((ix as f32 - src) / support_x);
            if wgt != 0.0 {
                let xi = ix.clamp(0, w as isize - 1) as usize;
                taps.push((xi, wgt));
                norm += wgt;
            }
        }
        for (_, wgt) in &mut taps {
            *wgt /= norm;
        }
        for ci in 0..c {
            for y in 0..h {
                let mut acc = 0.0;
                for &(xi, wgt) in &taps {
                    acc += input.at(&[ci, y, xi]) * wgt;
                }
                *tmp.at_mut(&[ci, y, ox]) = acc;
            }
        }
    }
    // Vertical pass: [C, H, out_w] → [C, out_h, out_w].
    let mut out = Tensor::zeros(&[c, out_h, out_w]);
    let support_y = scale_y.max(1.0);
    for oy in 0..out_h {
        let src = (oy as f32 + 0.5) * scale_y - 0.5;
        let lo = (src - 2.0 * support_y).floor() as isize;
        let hi = (src + 2.0 * support_y).ceil() as isize;
        let mut taps: Vec<(usize, f32)> = Vec::with_capacity((hi - lo + 1) as usize);
        let mut norm = 0.0;
        for iy in lo..=hi {
            let wgt = cubic_kernel((iy as f32 - src) / support_y);
            if wgt != 0.0 {
                let yi = iy.clamp(0, h as isize - 1) as usize;
                taps.push((yi, wgt));
                norm += wgt;
            }
        }
        for (_, wgt) in &mut taps {
            *wgt /= norm;
        }
        for ci in 0..c {
            for ox in 0..out_w {
                let mut acc = 0.0;
                for &(yi, wgt) in &taps {
                    acc += tmp.at(&[ci, yi, ox]) * wgt;
                }
                *out.at_mut(&[ci, oy, ox]) = acc;
            }
        }
    }
    Ok(out)
}

/// Bicubic-resize an [`Image`].
///
/// # Errors
///
/// See [`resize_bicubic_tensor`].
pub fn resize_bicubic(image: &Image, out_h: usize, out_w: usize) -> Result<Image> {
    Image::from_tensor(resize_bicubic_tensor(image.tensor(), out_h, out_w)?)
}

/// Downscale an HR image by an integer factor — the standard LR-generation
/// protocol for SR benchmarks.
///
/// # Errors
///
/// Returns an error when the extents are not divisible by `scale`.
pub fn downscale(image: &Image, scale: usize) -> Result<Image> {
    if scale == 0 || !image.height().is_multiple_of(scale) || !image.width().is_multiple_of(scale) {
        return Err(TensorError::InvalidArgument(format!(
            "extents {}x{} not divisible by scale {scale}",
            image.height(),
            image.width()
        )));
    }
    resize_bicubic(image, image.height() / scale, image.width() / scale)
}

/// Upscale an LR image by an integer factor (the Bicubic baseline row).
///
/// # Errors
///
/// Returns an error for a zero factor.
pub fn upscale(image: &Image, scale: usize) -> Result<Image> {
    if scale == 0 {
        return Err(TensorError::InvalidArgument("scale must be positive".into()));
    }
    resize_bicubic(image, image.height() * scale, image.width() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_partition_of_unity_at_integers() {
        // Σ_k k(x − k) = 1 for the Keys kernel at any phase.
        for phase in [0.0f32, 0.25, 0.5, 0.9] {
            let s: f32 = (-3..=3).map(|k| cubic_kernel(phase - k as f32)).sum();
            assert!((s - 1.0).abs() < 1e-5, "phase {phase}: {s}");
        }
    }

    #[test]
    fn constant_image_is_invariant() {
        let img = Image::from_tensor(Tensor::full(&[3, 8, 8], 0.6)).unwrap();
        let up = upscale(&img, 2).unwrap();
        for &v in up.tensor().data() {
            assert!((v - 0.6).abs() < 1e-4);
        }
        let down = downscale(&img, 2).unwrap();
        for &v in down.tensor().data() {
            assert!((v - 0.6).abs() < 1e-4);
        }
    }

    #[test]
    fn down_then_up_approximates_smooth_image() {
        // A smooth gradient survives a ÷2 → ×2 round trip closely.
        let mut img = Image::zeros(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                for c in 0..3 {
                    *img.pixel_mut(c, y, x) = (x as f32) / 16.0 * 0.8 + 0.1;
                }
            }
        }
        let rt = upscale(&downscale(&img, 2).unwrap(), 2).unwrap();
        let mut err = 0.0;
        for (a, b) in img.tensor().data().iter().zip(rt.tensor().data().iter()) {
            err += (a - b).abs();
        }
        err /= img.tensor().len() as f32;
        assert!(err < 0.02, "mean abs err {err}");
    }

    #[test]
    fn shapes_match_request() {
        let img = Image::zeros(12, 20);
        let r = resize_bicubic(&img, 7, 9).unwrap();
        assert_eq!((r.height(), r.width()), (7, 9));
    }

    #[test]
    fn rejects_bad_arguments() {
        let img = Image::zeros(9, 9);
        assert!(downscale(&img, 2).is_err());
        assert!(upscale(&img, 0).is_err());
    }
}
