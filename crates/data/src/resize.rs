//! Bicubic resampling with the Keys kernel (a = −0.5) and edge clamping —
//! both the LR-generation pipeline (HR → ÷scale) and the paper's "Bicubic"
//! baseline row (LR → ×scale).

use crate::image::Image;
use scales_tensor::{Result, Tensor, TensorError};

/// The Keys cubic convolution kernel with a = −0.5 (the classic "bicubic").
#[must_use]
pub fn cubic_kernel(x: f32) -> f32 {
    const A: f32 = -0.5;
    let x = x.abs();
    if x < 1.0 {
        (A + 2.0) * x * x * x - (A + 3.0) * x * x + 1.0
    } else if x < 2.0 {
        A * x * x * x - 5.0 * A * x * x + 8.0 * A * x - 4.0 * A
    } else {
        0.0
    }
}

/// Precomputed, normalized bicubic filter taps for one axis — the
/// `(source index, weight)` pairs each output coordinate reads.
///
/// Building taps once per `(in, out)` extent pair (instead of per call)
/// is what lets the planned deployment executor run the bicubic global
/// skip with zero per-request allocation; [`resize_bicubic_tensor`] uses
/// the same construction, so both paths are bit-identical.
pub struct BicubicAxisTaps {
    /// `(source index, normalized weight)` pairs, flattened.
    taps: Vec<(usize, f32)>,
    /// Per output coordinate: half-open range into `taps`.
    spans: Vec<(usize, usize)>,
}

impl BicubicAxisTaps {
    /// Taps mapping `in_extent` source samples onto `out_extent` outputs
    /// under the align-corners-false pixel model
    /// (`src = (dst + 0.5)·scale − 0.5`), with clamped edges and PIL-style
    /// widened support (anti-aliasing) when downscaling.
    #[must_use]
    pub fn new(in_extent: usize, out_extent: usize) -> Self {
        let scale = in_extent as f32 / out_extent as f32;
        let support = scale.max(1.0);
        let mut taps = Vec::new();
        let mut spans = Vec::with_capacity(out_extent);
        for o in 0..out_extent {
            let src = (o as f32 + 0.5) * scale - 0.5;
            let lo = (src - 2.0 * support).floor() as isize;
            let hi = (src + 2.0 * support).ceil() as isize;
            let start = taps.len();
            let mut norm = 0.0;
            for i in lo..=hi {
                let wgt = cubic_kernel((i as f32 - src) / support);
                if wgt != 0.0 {
                    let idx = i.clamp(0, in_extent as isize - 1) as usize;
                    taps.push((idx, wgt));
                    norm += wgt;
                }
            }
            for (_, wgt) in &mut taps[start..] {
                *wgt /= norm;
            }
            spans.push((start, taps.len()));
        }
        Self { taps, spans }
    }

    /// Number of output coordinates.
    #[must_use]
    pub fn out_extent(&self) -> usize {
        self.spans.len()
    }

    /// The `(source index, weight)` taps of output coordinate `o`.
    ///
    /// # Panics
    ///
    /// Panics when `o` is out of range.
    #[must_use]
    pub fn taps_for(&self, o: usize) -> &[(usize, f32)] {
        let (start, end) = self.spans[o];
        &self.taps[start..end]
    }
}

/// Resize one `[C, H, W]` tensor to `(out_h, out_w)` with separable bicubic
/// interpolation and clamped edges. Uses the align-corners-false pixel
/// model (`src = (dst + 0.5)·scale − 0.5`) like PIL/PyTorch.
///
/// # Errors
///
/// Returns an error for non-rank-3 input or zero target extents.
pub fn resize_bicubic_tensor(input: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: input.rank(), op: "resize" });
    }
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument("target extent must be positive".into()));
    }
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let xtaps = BicubicAxisTaps::new(w, out_w);
    let ytaps = BicubicAxisTaps::new(h, out_h);
    let mut tmp = vec![0.0f32; c * h * out_w];
    let mut out = Tensor::zeros(&[c, out_h, out_w]);
    resize_bicubic_passes(input.data(), c, h, w, &xtaps, &ytaps, &mut tmp, out.data_mut());
    Ok(out)
}

/// The zero-allocation core of [`resize_bicubic_tensor`]: resample a flat
/// `[c, h, w]` volume into a caller-provided `[c, out_h, out_w]` buffer
/// (fully overwritten) through precomputed axis taps, staging the
/// horizontal pass in a reusable grow-only buffer. Bit-identical to the
/// allocating path.
///
/// # Errors
///
/// Returns an error for mismatched input/output lengths.
#[allow(clippy::too_many_arguments)]
pub fn resize_bicubic_into(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    xtaps: &BicubicAxisTaps,
    ytaps: &BicubicAxisTaps,
    tmp: &mut Vec<f32>,
    out: &mut [f32],
) -> Result<()> {
    let (out_h, out_w) = (ytaps.out_extent(), xtaps.out_extent());
    if input.len() != c * h * w {
        return Err(TensorError::LengthMismatch { expected: c * h * w, actual: input.len() });
    }
    if out.len() != c * out_h * out_w {
        return Err(TensorError::LengthMismatch { expected: c * out_h * out_w, actual: out.len() });
    }
    let tmpbuf = scales_tensor::workspace::sized(tmp, c * h * out_w);
    resize_bicubic_passes(input, c, h, w, xtaps, ytaps, tmpbuf, out);
    Ok(())
}

/// Shared separable-resample kernel: horizontal pass into `tmp`
/// (`[c, h, out_w]`), vertical pass into `out` (`[c, out_h, out_w]`).
/// Each output element accumulates its taps in span order.
#[allow(clippy::too_many_arguments)]
fn resize_bicubic_passes(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    xtaps: &BicubicAxisTaps,
    ytaps: &BicubicAxisTaps,
    tmp: &mut [f32],
    out: &mut [f32],
) {
    let (out_h, out_w) = (ytaps.out_extent(), xtaps.out_extent());
    for ox in 0..out_w {
        let taps = xtaps.taps_for(ox);
        for ci in 0..c {
            for y in 0..h {
                let row = &input[(ci * h + y) * w..(ci * h + y + 1) * w];
                let mut acc = 0.0;
                for &(xi, wgt) in taps {
                    acc += row[xi] * wgt;
                }
                tmp[(ci * h + y) * out_w + ox] = acc;
            }
        }
    }
    for oy in 0..out_h {
        let taps = ytaps.taps_for(oy);
        for ci in 0..c {
            for ox in 0..out_w {
                let mut acc = 0.0;
                for &(yi, wgt) in taps {
                    acc += tmp[(ci * h + yi) * out_w + ox] * wgt;
                }
                out[(ci * out_h + oy) * out_w + ox] = acc;
            }
        }
    }
}

/// Bicubic-resize an [`Image`].
///
/// # Errors
///
/// See [`resize_bicubic_tensor`].
pub fn resize_bicubic(image: &Image, out_h: usize, out_w: usize) -> Result<Image> {
    Image::from_tensor(resize_bicubic_tensor(image.tensor(), out_h, out_w)?)
}

/// Downscale an HR image by an integer factor — the standard LR-generation
/// protocol for SR benchmarks.
///
/// # Errors
///
/// Returns an error when the extents are not divisible by `scale`.
pub fn downscale(image: &Image, scale: usize) -> Result<Image> {
    if scale == 0 || !image.height().is_multiple_of(scale) || !image.width().is_multiple_of(scale) {
        return Err(TensorError::InvalidArgument(format!(
            "extents {}x{} not divisible by scale {scale}",
            image.height(),
            image.width()
        )));
    }
    resize_bicubic(image, image.height() / scale, image.width() / scale)
}

/// Upscale an LR image by an integer factor (the Bicubic baseline row).
///
/// # Errors
///
/// Returns an error for a zero factor.
pub fn upscale(image: &Image, scale: usize) -> Result<Image> {
    if scale == 0 {
        return Err(TensorError::InvalidArgument("scale must be positive".into()));
    }
    resize_bicubic(image, image.height() * scale, image.width() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_partition_of_unity_at_integers() {
        // Σ_k k(x − k) = 1 for the Keys kernel at any phase.
        for phase in [0.0f32, 0.25, 0.5, 0.9] {
            let s: f32 = (-3..=3).map(|k| cubic_kernel(phase - k as f32)).sum();
            assert!((s - 1.0).abs() < 1e-5, "phase {phase}: {s}");
        }
    }

    #[test]
    fn constant_image_is_invariant() {
        let img = Image::from_tensor(Tensor::full(&[3, 8, 8], 0.6)).unwrap();
        let up = upscale(&img, 2).unwrap();
        for &v in up.tensor().data() {
            assert!((v - 0.6).abs() < 1e-4);
        }
        let down = downscale(&img, 2).unwrap();
        for &v in down.tensor().data() {
            assert!((v - 0.6).abs() < 1e-4);
        }
    }

    #[test]
    fn down_then_up_approximates_smooth_image() {
        // A smooth gradient survives a ÷2 → ×2 round trip closely.
        let mut img = Image::zeros(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                for c in 0..3 {
                    *img.pixel_mut(c, y, x) = (x as f32) / 16.0 * 0.8 + 0.1;
                }
            }
        }
        let rt = upscale(&downscale(&img, 2).unwrap(), 2).unwrap();
        let mut err = 0.0;
        for (a, b) in img.tensor().data().iter().zip(rt.tensor().data().iter()) {
            err += (a - b).abs();
        }
        err /= img.tensor().len() as f32;
        assert!(err < 0.02, "mean abs err {err}");
    }

    #[test]
    fn resize_into_is_bit_identical_with_stale_scratch() {
        let input = Tensor::from_vec(
            (0..3 * 9 * 7).map(|i| ((i as f32) * 0.23).sin() * 0.4 + 0.5).collect(),
            &[3, 9, 7],
        )
        .unwrap();
        let want = resize_bicubic_tensor(&input, 18, 14).unwrap();
        let xtaps = BicubicAxisTaps::new(7, 14);
        let ytaps = BicubicAxisTaps::new(9, 18);
        // Pre-dirtied scratch: reuse must not leak stale values.
        let mut tmp = vec![f32::NAN; 1000];
        let mut out = vec![f32::NAN; 3 * 18 * 14];
        resize_bicubic_into(input.data(), 3, 9, 7, &xtaps, &ytaps, &mut tmp, &mut out).unwrap();
        for (a, b) in want.data().iter().zip(out.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Length mismatches are typed errors.
        assert!(resize_bicubic_into(&[0.0; 5], 3, 9, 7, &xtaps, &ytaps, &mut tmp, &mut out).is_err());
        assert!(resize_bicubic_into(input.data(), 3, 9, 7, &xtaps, &ytaps, &mut tmp, &mut [0.0; 4])
            .is_err());
    }

    #[test]
    fn shapes_match_request() {
        let img = Image::zeros(12, 20);
        let r = resize_bicubic(&img, 7, 9).unwrap();
        assert_eq!((r.height(), r.width()), (7, 9));
    }

    #[test]
    fn rejects_bad_arguments() {
        let img = Image::zeros(9, 9);
        assert!(downscale(&img, 2).is_err());
        assert!(upscale(&img, 0).is_err());
    }
}
