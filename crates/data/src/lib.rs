//! # scales-data
//!
//! Data pipeline for the SCALES reproduction: the [`Image`] type with
//! PPM/PGM writers and YCbCr luma extraction, bicubic resampling (both the
//! LR-generation protocol and the paper's Bicubic baseline), procedural
//! scene synthesis standing in for DIV2K, the four synthetic benchmark sets
//! (`SynSet5` / `SynSet14` / `SynB100` / `SynUrban100`), the aligned
//! LR/HR patch sampler used for training, and the hardened wire codecs
//! ([`codec`]: binary PPM and a stored/fixed-Huffman PNG subset) used by
//! the HTTP serving front end.
//!
//! ```
//! use scales_data::{Benchmark};
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let set = Benchmark::SynSet5.build(2, 32)?; // ×2 SR, 32×32 HR images
//! assert_eq!(set.len(), 5);
//! assert_eq!(set.pairs()[0].lr.height(), 16);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod datasets;
pub mod image;
pub mod patch;
pub mod resize;
pub mod synth;

pub use codec::{decode_image, encode_image, CodecError, WireFormat};
pub use datasets::{Benchmark, EvalSet, SrPair, TrainSet};
pub use image::Image;
pub use patch::{Batch, PatchSampler};
pub use resize::{
    downscale, resize_bicubic, resize_bicubic_into, resize_bicubic_tensor, upscale, BicubicAxisTaps,
};
