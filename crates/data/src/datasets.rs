//! Synthetic benchmark datasets — the reproduction's analogues of DIV2K
//! (training) and Set5 / Set14 / B100 / Urban100 (evaluation).
//!
//! Each set is generated deterministically from a fixed base seed, so every
//! experiment in the repository evaluates on exactly the same images. Image
//! counts and sizes are scaled down from the real benchmarks to fit the CPU
//! harness; `SynUrban100` keeps the real set's signature regular
//! stripe/grid structure, which is where the paper reports its largest
//! gains.

use crate::image::Image;
use crate::resize::downscale;
use crate::synth::{scene, SceneConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_tensor::Result;

/// An (LR, HR) evaluation pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SrPair {
    /// Low-resolution input.
    pub lr: Image,
    /// High-resolution ground truth.
    pub hr: Image,
}

/// A named evaluation dataset of (LR, HR) pairs at a fixed scale.
#[derive(Debug, Clone)]
pub struct EvalSet {
    name: &'static str,
    pairs: Vec<SrPair>,
    scale: usize,
}

impl EvalSet {
    /// Dataset name (e.g. `"SynSet5"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Upscaling factor of this set.
    #[must_use]
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The evaluation pairs.
    #[must_use]
    pub fn pairs(&self) -> &[SrPair] {
        &self.pairs
    }

    /// Number of pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Identifier for the four synthetic benchmark sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Five simple images (analogue of Set5).
    SynSet5,
    /// Fourteen mixed images (analogue of Set14); scaled-down count.
    SynSet14,
    /// Natural-ish smooth textures (analogue of B100); scaled-down count.
    SynB100,
    /// Regular stripes/grids (analogue of Urban100); scaled-down count.
    SynUrban100,
}

impl Benchmark {
    /// All four sets in paper column order.
    pub const ALL: [Benchmark; 4] =
        [Benchmark::SynSet5, Benchmark::SynSet14, Benchmark::SynB100, Benchmark::SynUrban100];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::SynSet5 => "SynSet5",
            Benchmark::SynSet14 => "SynSet14",
            Benchmark::SynB100 => "SynB100",
            Benchmark::SynUrban100 => "SynUrban100",
        }
    }

    fn spec(&self) -> (usize, SceneConfig, u64) {
        match self {
            // Seed chosen (among a handful probed) so the set contains
            // learnable high-frequency detail like the real Set5, where SR
            // networks beat bicubic by 2-4 dB; an unlucky seed yields five
            // near-bandlimited images on which bicubic is already optimal.
            Benchmark::SynSet5 => (5, SceneConfig { layers: 3, structure_bias: 0.4 }, 0x1111),
            Benchmark::SynSet14 => (8, SceneConfig { layers: 4, structure_bias: 0.5 }, 0x5e714),
            Benchmark::SynB100 => (8, SceneConfig { layers: 4, structure_bias: 0.25 }, 0xb100),
            Benchmark::SynUrban100 => (8, SceneConfig { layers: 5, structure_bias: 0.95 }, 0x0b41),
        }
    }

    /// Build the evaluation set at an SR scale with a given HR image size.
    ///
    /// # Errors
    ///
    /// Returns an error when `hr_size` is not divisible by `scale`.
    pub fn build(&self, scale: usize, hr_size: usize) -> Result<EvalSet> {
        let (count, config, seed) = self.spec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let hr = scene(hr_size, hr_size, config, &mut rng);
            let lr = downscale(&hr, scale)?;
            pairs.push(SrPair { lr, hr });
        }
        Ok(EvalSet { name: self.name(), pairs, scale })
    }
}

/// The synthetic training corpus (DIV2K stand-in): an endless deterministic
/// stream of HR scenes from which the patch sampler crops training pairs.
///
/// Scenes cycle through the four benchmark generators' configurations so
/// the training distribution covers every evaluation style — the role DIV2K
/// plays for the real benchmarks.
#[derive(Debug)]
pub struct TrainSet {
    rng: StdRng,
    configs: Vec<SceneConfig>,
    next: usize,
    hr_size: usize,
}

impl TrainSet {
    /// Build the training stream. `hr_size` is the full scene size patches
    /// are cropped from.
    #[must_use]
    pub fn new(seed: u64, hr_size: usize) -> Self {
        let configs = Benchmark::ALL.iter().map(|b| b.spec().1).collect();
        Self { rng: StdRng::seed_from_u64(seed), configs, next: 0, hr_size }
    }

    /// Generate the next HR training scene.
    pub fn next_scene(&mut self) -> Image {
        let config = self.configs[self.next % self.configs.len()];
        self.next += 1;
        scene(self.hr_size, self.hr_size, config, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_sets_are_deterministic() {
        let a = Benchmark::SynSet5.build(2, 32).unwrap();
        let b = Benchmark::SynSet5.build(2, 32).unwrap();
        assert_eq!(a.pairs()[0], b.pairs()[0]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.name(), "SynSet5");
    }

    #[test]
    fn lr_extents_divided_by_scale() {
        let s = Benchmark::SynSet14.build(4, 48).unwrap();
        for p in s.pairs() {
            assert_eq!(p.hr.height(), 48);
            assert_eq!(p.lr.height(), 12);
            assert_eq!(p.lr.width(), 12);
        }
    }

    #[test]
    fn urban_has_more_structure_than_b100() {
        // Edge density (strong horizontal steps) should be higher for the
        // stripe/grid-biased set — smooth cloud textures have large but
        // gradual colour swings, not sharp edges.
        let edges = |set: &EvalSet| {
            let mut hits = 0usize;
            let mut n = 0usize;
            for p in set.pairs() {
                let t = p.hr.tensor();
                let (h, w) = (p.hr.height(), p.hr.width());
                for c in 0..3 {
                    for y in 0..h {
                        for x in 1..w {
                            if (t.at(&[c, y, x]) - t.at(&[c, y, x - 1])).abs() > 0.15 {
                                hits += 1;
                            }
                            n += 1;
                        }
                    }
                }
            }
            hits as f32 / n as f32
        };
        let urban = Benchmark::SynUrban100.build(2, 48).unwrap();
        let b100 = Benchmark::SynB100.build(2, 48).unwrap();
        assert!(edges(&urban) > edges(&b100), "{} vs {}", edges(&urban), edges(&b100));
    }

    #[test]
    fn train_stream_varies() {
        let mut t = TrainSet::new(1, 24);
        let a = t.next_scene();
        let b = t.next_scene();
        assert_ne!(a, b);
    }

    #[test]
    fn build_rejects_indivisible_size() {
        assert!(Benchmark::SynSet5.build(4, 30).is_err());
    }
}
