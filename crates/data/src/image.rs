//! The image type: planar CHW `f32` in `[0, 1]`, with colour-space
//! conversion and portable-anymap writers for qualitative figures.

use scales_tensor::{Result, Tensor, TensorError};
use std::io::Write as _;
use std::path::Path;

/// An RGB (or grayscale) image stored as a `[C, H, W]` tensor with values
/// nominally in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    tensor: Tensor,
}

impl Image {
    /// Wrap a `[C, H, W]` tensor (`C` of 1 or 3).
    ///
    /// # Errors
    ///
    /// Returns an error for the wrong rank or channel count.
    pub fn from_tensor(tensor: Tensor) -> Result<Self> {
        if tensor.rank() != 3 {
            return Err(TensorError::RankMismatch { expected: 3, actual: tensor.rank(), op: "image" });
        }
        let c = tensor.shape()[0];
        if c != 1 && c != 3 {
            return Err(TensorError::InvalidArgument(format!("image needs 1 or 3 channels, got {c}")));
        }
        Ok(Self { tensor })
    }

    /// A black RGB image.
    #[must_use]
    pub fn zeros(height: usize, width: usize) -> Self {
        Self { tensor: Tensor::zeros(&[3, height, width]) }
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.tensor.shape()[0]
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.tensor.shape()[1]
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.tensor.shape()[2]
    }

    /// Borrow the underlying tensor.
    #[must_use]
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Mutably borrow the underlying tensor.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        &mut self.tensor
    }

    /// Consume into the underlying tensor.
    #[must_use]
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range coordinates.
    #[must_use]
    pub fn pixel(&self, c: usize, y: usize, x: usize) -> f32 {
        self.tensor.at(&[c, y, x])
    }

    /// Mutable pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range coordinates.
    pub fn pixel_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        self.tensor.at_mut(&[c, y, x])
    }

    /// Clamp all values into `[0, 1]`.
    #[must_use]
    pub fn clamped(&self) -> Self {
        Self { tensor: self.tensor.map(|v| v.clamp(0.0, 1.0)) }
    }

    /// Luma (Y) plane of the ITU-R BT.601 YCbCr transform, as used by the
    /// standard SR evaluation protocol. Grayscale images return a copy.
    #[must_use]
    pub fn to_luma(&self) -> Tensor {
        let (h, w) = (self.height(), self.width());
        if self.channels() == 1 {
            return self.tensor.clone();
        }
        let mut y = Tensor::zeros(&[1, h, w]);
        for yy in 0..h {
            for xx in 0..w {
                let r = self.pixel(0, yy, xx);
                let g = self.pixel(1, yy, xx);
                let b = self.pixel(2, yy, xx);
                // BT.601 full-range luma.
                *y.at_mut(&[0, yy, xx]) = 0.299 * r + 0.587 * g + 0.114 * b;
            }
        }
        y
    }

    /// Crop a window `(top, left, height, width)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the window exceeds the image.
    pub fn crop(&self, top: usize, left: usize, height: usize, width: usize) -> Result<Self> {
        let t = self
            .tensor
            .slice_axis(1, top, height)?
            .slice_axis(2, left, width)?;
        Ok(Self { tensor: t })
    }

    /// Write as binary PPM (RGB) or PGM (grayscale), 8-bit.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be written.
    pub fn save_pnm(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let (h, w) = (self.height(), self.width());
        let magic = if self.channels() == 3 { "P6" } else { "P5" };
        write!(f, "{magic}\n{w} {h}\n255\n")?;
        let mut buf = Vec::with_capacity(self.channels() * h * w);
        for y in 0..h {
            for x in 0..w {
                for c in 0..self.channels() {
                    let v = (self.pixel(c, y, x).clamp(0.0, 1.0) * 255.0).round() as u8;
                    buf.push(v);
                }
            }
        }
        f.write_all(&buf)
    }

    /// Stack images horizontally with a 2-pixel white gutter (for the
    /// Fig. 1 / Fig. 9 side-by-side panels).
    ///
    /// # Errors
    ///
    /// Returns an error when heights or channel counts differ.
    pub fn hstack(images: &[&Image]) -> Result<Image> {
        let first = images.first().ok_or_else(|| {
            TensorError::InvalidArgument("hstack of zero images".into())
        })?;
        let gutter = 2;
        let h = first.height();
        let c = first.channels();
        let total_w: usize =
            images.iter().map(|i| i.width()).sum::<usize>() + gutter * (images.len() - 1);
        let mut out = Tensor::ones(&[c, h, total_w]);
        let mut x0 = 0;
        for img in images {
            if img.height() != h || img.channels() != c {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.tensor.shape().to_vec(),
                    rhs: img.tensor.shape().to_vec(),
                    op: "hstack",
                });
            }
            for ci in 0..c {
                for y in 0..h {
                    for x in 0..img.width() {
                        *out.at_mut(&[ci, y, x0 + x]) = img.pixel(ci, y, x);
                    }
                }
            }
            x0 += img.width() + gutter;
        }
        Image::from_tensor(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Image::from_tensor(Tensor::zeros(&[3, 4, 4])).is_ok());
        assert!(Image::from_tensor(Tensor::zeros(&[2, 4, 4])).is_err());
        assert!(Image::from_tensor(Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let mut img = Image::zeros(2, 2);
        for c in 0..3 {
            for y in 0..2 {
                for x in 0..2 {
                    *img.pixel_mut(c, y, x) = 1.0;
                }
            }
        }
        let y = img.to_luma();
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn crop_window() {
        let mut img = Image::zeros(4, 4);
        *img.pixel_mut(0, 2, 3) = 0.5;
        let c = img.crop(2, 3, 1, 1).unwrap();
        assert_eq!(c.height(), 1);
        assert_eq!(c.width(), 1);
        assert_eq!(c.pixel(0, 0, 0), 0.5);
    }

    #[test]
    fn hstack_widths_add_with_gutters() {
        let a = Image::zeros(3, 4);
        let b = Image::zeros(3, 5);
        let s = Image::hstack(&[&a, &b]).unwrap();
        assert_eq!(s.width(), 4 + 2 + 5);
        assert_eq!(s.height(), 3);
    }

    #[test]
    fn save_pnm_writes_header() {
        let img = Image::zeros(2, 3);
        let dir = std::env::temp_dir().join("scales_test_img.ppm");
        img.save_pnm(&dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 18);
        let _ = std::fs::remove_file(dir);
    }
}
