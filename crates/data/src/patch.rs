//! Training-patch sampling and batching.
//!
//! The paper trains on 48×48 input patches with batch size 16; the
//! reproduction uses the same machinery at a smaller default size.
//!
//! Each training scene is bicubic-downscaled **once, as a whole image**,
//! and aligned LR/HR windows are then cropped from the pair. Downscaling
//! crops instead would bake border-clamping artefacts into most of each
//! small patch and teach the model a mapping that differs from the
//! evaluation protocol (where LR is always the downscale of the full
//! image).

use crate::datasets::TrainSet;
use crate::image::Image;
use crate::resize::downscale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scales_tensor::{Result, Tensor, TensorError};

/// A batch of aligned LR/HR patches stacked as `[B, 3, h, w]` tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// LR inputs `[B, 3, lr, lr]`.
    pub lr: Tensor,
    /// HR targets `[B, 3, lr·scale, lr·scale]`.
    pub hr: Tensor,
}

/// Samples random aligned LR/HR patch batches from a [`TrainSet`].
#[derive(Debug)]
pub struct PatchSampler {
    train: TrainSet,
    rng: StdRng,
    scale: usize,
    lr_patch: usize,
    scenes_per_refresh: usize,
    pool: Vec<(Image, Image)>, // (hr, lr) full-scene pairs
    drawn: usize,
}

impl PatchSampler {
    /// Build a sampler producing `lr_patch × lr_patch` inputs at `scale`.
    ///
    /// # Errors
    ///
    /// Returns an error when the patch would exceed the training scene.
    pub fn new(train: TrainSet, scale: usize, lr_patch: usize, seed: u64) -> Result<Self> {
        if scale == 0 || lr_patch == 0 {
            return Err(TensorError::InvalidArgument("scale and patch must be positive".into()));
        }
        let mut s = Self {
            train,
            rng: StdRng::seed_from_u64(seed),
            scale,
            lr_patch,
            scenes_per_refresh: 8,
            pool: Vec::new(),
            drawn: 0,
        };
        s.refresh_pool()?;
        Ok(s)
    }

    fn refresh_pool(&mut self) -> Result<()> {
        self.pool.clear();
        for _ in 0..self.scenes_per_refresh {
            let hr = self.train.next_scene();
            if hr.height() < self.lr_patch * self.scale {
                return Err(TensorError::InvalidArgument(format!(
                    "scene {} too small for HR patch {}",
                    hr.height(),
                    self.lr_patch * self.scale
                )));
            }
            if !hr.height().is_multiple_of(self.scale) || !hr.width().is_multiple_of(self.scale) {
                return Err(TensorError::InvalidArgument(format!(
                    "scene {}x{} not divisible by scale {}",
                    hr.height(),
                    hr.width(),
                    self.scale
                )));
            }
            let lr = downscale(&hr, self.scale)?;
            self.pool.push((hr, lr));
        }
        Ok(())
    }

    /// Draw one batch of `batch_size` aligned patch pairs.
    ///
    /// # Errors
    ///
    /// Propagates generation errors.
    pub fn next_batch(&mut self, batch_size: usize) -> Result<Batch> {
        let hr_patch = self.lr_patch * self.scale;
        let mut lr_data = Vec::with_capacity(batch_size * 3 * self.lr_patch * self.lr_patch);
        let mut hr_data = Vec::with_capacity(batch_size * 3 * hr_patch * hr_patch);
        for _ in 0..batch_size {
            // Rotate the scene pool periodically for diversity.
            self.drawn += 1;
            if self.drawn.is_multiple_of(self.scenes_per_refresh * 16) {
                self.refresh_pool()?;
            }
            let (hr_scene, lr_scene) = &self.pool[self.rng.gen_range(0..self.pool.len())];
            // Crop aligned windows from the precomputed full-image pair.
            let max_y = lr_scene.height() - self.lr_patch;
            let max_x = lr_scene.width() - self.lr_patch;
            let ly = self.rng.gen_range(0..=max_y);
            let lx = self.rng.gen_range(0..=max_x);
            let lr = lr_scene.crop(ly, lx, self.lr_patch, self.lr_patch)?;
            let hr = hr_scene.crop(ly * self.scale, lx * self.scale, hr_patch, hr_patch)?;
            hr_data.extend_from_slice(hr.tensor().data());
            lr_data.extend_from_slice(lr.tensor().data());
        }
        Ok(Batch {
            lr: Tensor::from_vec(lr_data, &[batch_size, 3, self.lr_patch, self.lr_patch])?,
            hr: Tensor::from_vec(hr_data, &[batch_size, 3, hr_patch, hr_patch])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes() {
        let t = TrainSet::new(7, 48);
        let mut s = PatchSampler::new(t, 2, 12, 1).unwrap();
        let b = s.next_batch(4).unwrap();
        assert_eq!(b.lr.shape(), &[4, 3, 12, 12]);
        assert_eq!(b.hr.shape(), &[4, 3, 24, 24]);
    }

    #[test]
    fn sampler_is_deterministic() {
        let b1 = PatchSampler::new(TrainSet::new(7, 48), 2, 8, 5).unwrap().next_batch(2).unwrap();
        let b2 = PatchSampler::new(TrainSet::new(7, 48), 2, 8, 5).unwrap().next_batch(2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn lr_patch_matches_full_image_downscale() {
        // The LR patch must be a crop of the full-image downscale, NOT the
        // downscale of the HR crop — the consistency property that makes
        // training match the evaluation protocol.
        // Regenerate the sampler's scene pool from an identically-seeded
        // train set (the pool holds the first 8 scenes).
        let mut train = TrainSet::new(9, 32);
        let lr_fulls: Vec<Image> = (0..8)
            .map(|_| downscale(&train.next_scene(), 2).unwrap())
            .collect();
        let t = TrainSet::new(9, 32);
        let mut s = PatchSampler::new(t, 2, 8, 2).unwrap();
        let b = s.next_batch(1).unwrap();
        // Search every pool scene's LR for the sampled patch.
        let patch = b.lr.reshape(&[3, 8, 8]).unwrap();
        let mut found = false;
        'outer: for lr_full in &lr_fulls {
            for y0 in 0..=lr_full.height() - 8 {
                for x0 in 0..=lr_full.width() - 8 {
                    let window = lr_full.crop(y0, x0, 8, 8).unwrap();
                    if window
                        .tensor()
                        .data()
                        .iter()
                        .zip(patch.data().iter())
                        .all(|(a, b)| (a - b).abs() < 1e-6)
                    {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "sampled LR patch must be a window of a full-image LR");
    }

    #[test]
    fn rejects_oversized_patch() {
        let t = TrainSet::new(7, 16);
        assert!(PatchSampler::new(t, 4, 8, 1).is_err());
    }
}
