//! Wire image codecs for the network serving edge: binary PPM (P6) and a
//! deliberately small PNG subset, both hand-rolled over `std` (the build
//! environment is offline — no `image`, no `flate2`).
//!
//! These are the formats `scales_http`'s `POST /v1/upscale` accepts and
//! returns. The house rule from the artifact loaders applies verbatim:
//! **every malformed input is a typed [`CodecError`], never a panic or an
//! unbounded allocation**. Dimensions are bounded ([`MAX_DIM`] per axis,
//! [`MAX_PIXELS`] total) before any pixel buffer is sized, payload
//! lengths are checked against the header's promise, and a partial read
//! is never accepted.
//!
//! The PNG support is intentionally narrow but honest about it:
//!
//! * decode: 8-bit greyscale (colour type 0) and RGB (colour type 2),
//!   no interlace, CRC-checked chunks, zlib streams whose deflate blocks
//!   are **stored** or **fixed-Huffman** (dynamic-Huffman blocks are a
//!   typed [`CodecError::Unsupported`], not a wrong answer), Adler-32
//!   verified, all five scanline filters;
//! * encode: stored-block zlib, filter 0 — maximally compatible output
//!   any external decoder reads.
//!
//! Quantization is the shared 8-bit protocol of [`Image::save_pnm`]:
//! `round(clamp(v, 0, 1) × 255)` on encode, `v / 255` on decode — so
//! `decode(encode(x))` is **bit-exact** for any image whose values are
//! already 8-bit quantized, and `encode(decode(bytes))` reproduces a
//! valid wire image byte for byte (the loopback contract `tests/http.rs`
//! pins across a real TCP socket).

use crate::Image;
use scales_tensor::Tensor;
use std::sync::OnceLock;

/// Largest accepted image extent per axis, decode-side.
pub const MAX_DIM: u32 = 1 << 15;

/// Largest accepted pixel count (`width × height`), decode-side: bounds
/// the decoded `f32` tensor at ~192 MiB for RGB before anything is
/// allocated.
pub const MAX_PIXELS: u64 = 1 << 24;

/// The eight-byte PNG signature.
const PNG_SIG: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a];

/// Which wire format a byte stream is (or should be) encoded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Binary portable pixmap, `P6`, maxval 255.
    Ppm,
    /// PNG, 8-bit greyscale or RGB (see the module docs for the
    /// supported subset).
    Png,
}

impl WireFormat {
    /// The MIME type HTTP responses carry for this format.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::Ppm => "image/x-portable-pixmap",
            WireFormat::Png => "image/png",
        }
    }

    /// Identify the format from the first bytes of a payload, if it is
    /// one this module speaks.
    #[must_use]
    pub fn sniff(bytes: &[u8]) -> Option<Self> {
        if bytes.starts_with(b"P6") {
            Some(WireFormat::Ppm)
        } else if bytes.starts_with(&PNG_SIG) {
            Some(WireFormat::Png)
        } else {
            None
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireFormat::Ppm => "PPM (P6)",
            WireFormat::Png => "PNG",
        })
    }
}

/// Everything that can go wrong decoding or encoding a wire image.
///
/// Decoders never panic: every failure mode of a hostile payload maps to
/// one of these variants, and `scales_http` maps each to a 4xx response.
#[derive(Debug)]
pub enum CodecError {
    /// The payload starts with no magic this module knows.
    UnknownFormat {
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The payload does not start with the named format's magic.
    BadMagic {
        /// Format the caller asked to decode.
        format: WireFormat,
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The payload ends before a field it promises.
    Truncated {
        /// Byte offset of the read that failed.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Total payload length.
        len: usize,
    },
    /// A structurally invalid payload (bad header syntax, bad filter
    /// byte, bad deflate symbol, …).
    Malformed {
        /// Byte offset where decoding failed (best effort).
        offset: usize,
        /// What was malformed.
        what: String,
    },
    /// The header promises dimensions beyond [`MAX_DIM`] / [`MAX_PIXELS`]
    /// — rejected before any allocation is sized from them.
    DimensionLimit {
        /// Width the header claims.
        width: u64,
        /// Height the header claims.
        height: u64,
    },
    /// A checksum did not match its data (PNG chunk CRC-32 or zlib
    /// Adler-32).
    CrcMismatch {
        /// Which checksum failed (chunk type, or `"zlib adler32"`).
        what: String,
        /// Checksum stored in the payload.
        stored: u32,
        /// Checksum computed over the data.
        computed: u32,
    },
    /// Valid for the format at large, but outside the subset this module
    /// speaks (16-bit channels, palettes, interlace, dynamic-Huffman
    /// deflate blocks, …).
    Unsupported {
        /// The feature the payload needs.
        what: String,
    },
    /// The image cannot be represented in the requested wire format
    /// (e.g. a greyscale image as P6, which is RGB by definition).
    Unencodable {
        /// Why the encode was refused.
        what: String,
    },
    /// The payload decoded cleanly but bytes remain after it.
    TrailingBytes {
        /// Bytes consumed by the decoder.
        consumed: usize,
        /// Total payload length.
        len: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownFormat { found } => {
                write!(f, "not a known wire image format (starts {found:02x?})")
            }
            CodecError::BadMagic { format, found } => {
                write!(f, "not a {format} payload (starts {found:02x?})")
            }
            CodecError::Truncated { offset, needed, len } => write!(
                f,
                "truncated image: needed {needed} byte(s) at offset {offset} of {len}"
            ),
            CodecError::Malformed { offset, what } => {
                write!(f, "malformed image at offset {offset}: {what}")
            }
            CodecError::DimensionLimit { width, height } => write!(
                f,
                "image dimensions {width}x{height} exceed the codec limits ({MAX_DIM} per axis, {MAX_PIXELS} pixels)"
            ),
            CodecError::CrcMismatch { what, stored, computed } => write!(
                f,
                "{what} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CodecError::Unsupported { what } => {
                write!(f, "unsupported image feature: {what}")
            }
            CodecError::Unencodable { what } => write!(f, "cannot encode image: {what}"),
            CodecError::TrailingBytes { consumed, len } => {
                write!(f, "image has {} trailing byte(s) after the payload", len - consumed)
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

/// The shared 8-bit quantization of the wire protocol (identical to
/// [`Image::save_pnm`]).
fn quantize(v: f32) -> u8 {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        (v.clamp(0.0, 1.0) * 255.0).round() as u8
    }
}

#[allow(clippy::cast_precision_loss)]
fn dequantize(v: u8) -> f32 {
    f32::from(v) / 255.0
}

/// Validate decode-side dimensions before anything is allocated from
/// them.
fn check_dims(width: u64, height: u64) -> Result<(usize, usize)> {
    if width == 0
        || height == 0
        || width > u64::from(MAX_DIM)
        || height > u64::from(MAX_DIM)
        || width * height > MAX_PIXELS
    {
        return Err(CodecError::DimensionLimit { width, height });
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok((width as usize, height as usize))
}

/// Interleaved 8-bit samples → planar CHW `f32` image.
fn image_from_samples(samples: &[u8], channels: usize, h: usize, w: usize) -> Image {
    let mut tensor = Tensor::zeros(&[channels, h, w]);
    let data = tensor.data_mut();
    for y in 0..h {
        for x in 0..w {
            for c in 0..channels {
                data[c * h * w + y * w + x] = dequantize(samples[(y * w + x) * channels + c]);
            }
        }
    }
    Image::from_tensor(tensor).expect("1 or 3 channels by construction")
}

/// Planar CHW `f32` image → interleaved quantized 8-bit samples.
fn samples_from_image(image: &Image) -> Vec<u8> {
    let (c, h, w) = (image.channels(), image.height(), image.width());
    let mut samples = Vec::with_capacity(c * h * w);
    for y in 0..h {
        for x in 0..w {
            for ci in 0..c {
                samples.push(quantize(image.pixel(ci, y, x)));
            }
        }
    }
    samples
}

/// Sniff the format and decode.
///
/// # Errors
///
/// [`CodecError::UnknownFormat`] when the payload matches no known magic,
/// otherwise whatever the format's decoder reports.
pub fn decode_image(bytes: &[u8]) -> Result<(Image, WireFormat)> {
    match WireFormat::sniff(bytes) {
        Some(WireFormat::Ppm) => Ok((decode_ppm(bytes)?, WireFormat::Ppm)),
        Some(WireFormat::Png) => Ok((decode_png(bytes)?, WireFormat::Png)),
        None => Err(CodecError::UnknownFormat {
            found: bytes.iter().copied().take(8).collect(),
        }),
    }
}

/// Encode in the requested wire format.
///
/// # Errors
///
/// [`CodecError::Unencodable`] when the image does not fit the format
/// (greyscale as P6, or extents beyond the codec limits).
pub fn encode_image(image: &Image, format: WireFormat) -> Result<Vec<u8>> {
    match format {
        WireFormat::Ppm => encode_ppm(image),
        WireFormat::Png => encode_png(image),
    }
}

// ---------------------------------------------------------------------------
// PPM (P6)
// ---------------------------------------------------------------------------

/// Decode a binary PPM (`P6`, maxval 255) payload.
///
/// Header whitespace and `#` comments follow the Netpbm spec; the sample
/// data must match the promised `3 × width × height` bytes exactly.
///
/// # Errors
///
/// A typed [`CodecError`] for every malformed input.
pub fn decode_ppm(bytes: &[u8]) -> Result<Image> {
    if !bytes.starts_with(b"P6") {
        return Err(CodecError::BadMagic {
            format: WireFormat::Ppm,
            found: bytes.iter().copied().take(8).collect(),
        });
    }
    let mut pos = 2;
    let width = ppm_token(bytes, &mut pos)?;
    let height = ppm_token(bytes, &mut pos)?;
    let maxval = ppm_token(bytes, &mut pos)?;
    if maxval != 255 {
        return Err(CodecError::Unsupported {
            what: format!("PPM maxval {maxval} (only 8-bit, maxval 255)"),
        });
    }
    // Exactly one whitespace byte separates the header from the samples.
    match bytes.get(pos) {
        Some(b) if b.is_ascii_whitespace() => pos += 1,
        Some(b) => {
            return Err(CodecError::Malformed {
                offset: pos,
                what: format!("expected whitespace after maxval, found {b:#04x}"),
            })
        }
        None => {
            return Err(CodecError::Truncated { offset: pos, needed: 1, len: bytes.len() })
        }
    }
    let (w, h) = check_dims(width, height)?;
    let needed = 3 * w * h;
    let remaining = bytes.len() - pos;
    if remaining < needed {
        return Err(CodecError::Truncated { offset: pos, needed, len: bytes.len() });
    }
    if remaining > needed {
        return Err(CodecError::TrailingBytes { consumed: pos + needed, len: bytes.len() });
    }
    Ok(image_from_samples(&bytes[pos..pos + needed], 3, h, w))
}

/// One whitespace/comment-separated decimal token of a PPM header.
fn ppm_token(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    // Skip whitespace and `#` comments (which run to end of line). At
    // least one separator byte is required before each token.
    let start = *pos;
    loop {
        match bytes.get(*pos) {
            Some(b) if b.is_ascii_whitespace() => *pos += 1,
            Some(b'#') => {
                while let Some(&b) = bytes.get(*pos) {
                    *pos += 1;
                    if b == b'\n' {
                        break;
                    }
                }
            }
            Some(_) if *pos == start => {
                return Err(CodecError::Malformed {
                    offset: *pos,
                    what: "PPM header fields must be whitespace-separated".into(),
                })
            }
            Some(_) => break,
            None => {
                return Err(CodecError::Truncated { offset: *pos, needed: 1, len: bytes.len() })
            }
        }
    }
    let digits_at = *pos;
    let mut value: u64 = 0;
    while let Some(&b) = bytes.get(*pos) {
        if !b.is_ascii_digit() {
            break;
        }
        if *pos - digits_at >= 10 {
            return Err(CodecError::Malformed {
                offset: digits_at,
                what: "PPM header value has more than 10 digits".into(),
            });
        }
        value = value * 10 + u64::from(b - b'0');
        *pos += 1;
    }
    if *pos == digits_at {
        return Err(CodecError::Malformed {
            offset: digits_at,
            what: "expected a decimal value in the PPM header".into(),
        });
    }
    Ok(value)
}

/// Encode as binary PPM (`P6`, maxval 255) — the exact header layout of
/// [`Image::save_pnm`], so a saved file and a wire payload are
/// byte-identical.
///
/// # Errors
///
/// [`CodecError::Unencodable`] for non-RGB images (P6 is RGB by
/// definition; greyscale belongs in PNG).
pub fn encode_ppm(image: &Image) -> Result<Vec<u8>> {
    if image.channels() != 3 {
        return Err(CodecError::Unencodable {
            what: format!("PPM P6 is RGB; image has {} channel(s)", image.channels()),
        });
    }
    let (h, w) = (image.height(), image.width());
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    out.extend_from_slice(&samples_from_image(image));
    Ok(out)
}

// ---------------------------------------------------------------------------
// PNG
// ---------------------------------------------------------------------------

/// Decode a PNG payload (8-bit greyscale or RGB, no interlace; zlib
/// streams of stored and fixed-Huffman deflate blocks — see the module
/// docs for the exact subset).
///
/// Every chunk CRC and the zlib Adler-32 are verified; anything outside
/// the subset is a typed [`CodecError::Unsupported`].
///
/// # Errors
///
/// A typed [`CodecError`] for every malformed input.
pub fn decode_png(bytes: &[u8]) -> Result<Image> {
    if !bytes.starts_with(&PNG_SIG) {
        return Err(CodecError::BadMagic {
            format: WireFormat::Png,
            found: bytes.iter().copied().take(8).collect(),
        });
    }
    let mut cur = Cursor { bytes, pos: PNG_SIG.len() };
    let mut header: Option<(usize, usize, usize)> = None; // (w, h, channels)
    let mut idat: Vec<u8> = Vec::new();
    let mut saw_idat = false;
    loop {
        let at = cur.pos;
        let len = cur.take_u32_be()? as usize;
        let ctype: [u8; 4] = cur.take(4)?.try_into().expect("4 bytes");
        let name = String::from_utf8_lossy(&ctype).into_owned();
        let data = cur.take(len)?;
        let stored_crc = cur.take_u32_be()?;
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(&ctype);
        crc_input.extend_from_slice(data);
        let computed = crc32(&crc_input);
        if computed != stored_crc {
            return Err(CodecError::CrcMismatch {
                what: format!("PNG chunk {name}"),
                stored: stored_crc,
                computed,
            });
        }
        match &ctype {
            b"IHDR" => {
                if header.is_some() {
                    return Err(CodecError::Malformed {
                        offset: at,
                        what: "duplicate IHDR chunk".into(),
                    });
                }
                header = Some(parse_ihdr(data, at)?);
            }
            b"IDAT" => {
                if header.is_none() {
                    return Err(CodecError::Malformed {
                        offset: at,
                        what: "IDAT before IHDR".into(),
                    });
                }
                saw_idat = true;
                idat.extend_from_slice(data);
            }
            b"IEND" => {
                if len != 0 {
                    return Err(CodecError::Malformed {
                        offset: at,
                        what: "IEND chunk must be empty".into(),
                    });
                }
                break;
            }
            b"PLTE" => {
                return Err(CodecError::Unsupported { what: "PNG palette (PLTE)".into() })
            }
            _ => {
                // Ancillary chunks (lowercase first letter) are skippable
                // by definition; unknown critical chunks are not.
                if ctype[0] & 0x20 == 0 {
                    return Err(CodecError::Unsupported {
                        what: format!("critical PNG chunk {name}"),
                    });
                }
            }
        }
    }
    if cur.pos != bytes.len() {
        return Err(CodecError::TrailingBytes { consumed: cur.pos, len: bytes.len() });
    }
    let Some((w, h, channels)) = header else {
        return Err(CodecError::Malformed { offset: PNG_SIG.len(), what: "missing IHDR".into() });
    };
    if !saw_idat {
        return Err(CodecError::Malformed { offset: cur.pos, what: "missing IDAT".into() });
    }
    // One filter byte plus `w × channels` samples per scanline; the
    // dimensions were bounded in `parse_ihdr`, so this cannot overflow.
    let expected = h * (1 + w * channels);
    let raw = zlib_inflate(&idat, expected)?;
    let samples = unfilter(&raw, h, w, channels)?;
    Ok(image_from_samples(&samples, channels, h, w))
}

fn parse_ihdr(data: &[u8], at: usize) -> Result<(usize, usize, usize)> {
    if data.len() != 13 {
        return Err(CodecError::Malformed {
            offset: at,
            what: format!("IHDR must be 13 bytes, found {}", data.len()),
        });
    }
    let width = u64::from(u32::from_be_bytes(data[0..4].try_into().expect("4 bytes")));
    let height = u64::from(u32::from_be_bytes(data[4..8].try_into().expect("4 bytes")));
    let (bit_depth, colour, compression, filter, interlace) =
        (data[8], data[9], data[10], data[11], data[12]);
    let (w, h) = check_dims(width, height)?;
    if bit_depth != 8 {
        return Err(CodecError::Unsupported { what: format!("PNG bit depth {bit_depth}") });
    }
    let channels = match colour {
        0 => 1,
        2 => 3,
        3 => return Err(CodecError::Unsupported { what: "PNG palette colour type".into() }),
        4 | 6 => {
            return Err(CodecError::Unsupported {
                what: format!("PNG colour type {colour} (alpha)"),
            })
        }
        _ => {
            return Err(CodecError::Malformed {
                offset: at,
                what: format!("invalid PNG colour type {colour}"),
            })
        }
    };
    if compression != 0 {
        return Err(CodecError::Malformed {
            offset: at,
            what: format!("invalid PNG compression method {compression}"),
        });
    }
    if filter != 0 {
        return Err(CodecError::Malformed {
            offset: at,
            what: format!("invalid PNG filter method {filter}"),
        });
    }
    if interlace != 0 {
        return Err(CodecError::Unsupported { what: "PNG Adam7 interlace".into() });
    }
    Ok((w, h, channels))
}

/// Reverse the per-scanline filters into interleaved samples.
fn unfilter(raw: &[u8], h: usize, w: usize, channels: usize) -> Result<Vec<u8>> {
    let stride = w * channels;
    let mut out = vec![0u8; h * stride];
    for y in 0..h {
        let filter = raw[y * (stride + 1)];
        let line = &raw[y * (stride + 1) + 1..(y + 1) * (stride + 1)];
        for i in 0..stride {
            let x = line[i];
            let a = if i >= channels { out[y * stride + i - channels] } else { 0 };
            let b = if y > 0 { out[(y - 1) * stride + i] } else { 0 };
            let c = if y > 0 && i >= channels { out[(y - 1) * stride + i - channels] } else { 0 };
            #[allow(clippy::cast_possible_truncation)]
            let value = match filter {
                0 => x,
                1 => x.wrapping_add(a),
                2 => x.wrapping_add(b),
                3 => x.wrapping_add(((u16::from(a) + u16::from(b)) / 2) as u8),
                4 => x.wrapping_add(paeth(a, b, c)),
                _ => {
                    return Err(CodecError::Malformed {
                        offset: y * (stride + 1),
                        what: format!("invalid PNG scanline filter {filter}"),
                    })
                }
            };
            out[y * stride + i] = value;
        }
    }
    Ok(out)
}

/// The Paeth predictor (PNG spec §9.4).
fn paeth(a: u8, b: u8, c: u8) -> u8 {
    let (pa, pb, pc) = {
        let p = i16::from(a) + i16::from(b) - i16::from(c);
        ((p - i16::from(a)).abs(), (p - i16::from(b)).abs(), (p - i16::from(c)).abs())
    };
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

/// Encode as PNG: 8-bit greyscale (1 channel) or RGB (3 channels),
/// filter 0, zlib with stored deflate blocks.
///
/// # Errors
///
/// [`CodecError::Unencodable`] for extents beyond the codec limits (the
/// decoder could never read the result back).
pub fn encode_png(image: &Image) -> Result<Vec<u8>> {
    let (h, w, channels) = (image.height(), image.width(), image.channels());
    if check_dims(w as u64, h as u64).is_err() {
        return Err(CodecError::Unencodable {
            what: format!("image extent {w}x{h} exceeds the codec limits"),
        });
    }
    let colour = if channels == 3 { 2u8 } else { 0u8 };
    let samples = samples_from_image(image);
    let stride = w * channels;
    let mut raw = Vec::with_capacity(h * (stride + 1));
    for y in 0..h {
        raw.push(0u8); // filter: None
        raw.extend_from_slice(&samples[y * stride..(y + 1) * stride]);
    }

    let mut out = Vec::with_capacity(raw.len() + 128);
    out.extend_from_slice(&PNG_SIG);
    let mut ihdr = Vec::with_capacity(13);
    #[allow(clippy::cast_possible_truncation)]
    {
        ihdr.extend_from_slice(&(w as u32).to_be_bytes());
        ihdr.extend_from_slice(&(h as u32).to_be_bytes());
    }
    ihdr.extend_from_slice(&[8, colour, 0, 0, 0]);
    push_chunk(&mut out, b"IHDR", &ihdr);
    push_chunk(&mut out, b"IDAT", &zlib_deflate_stored(&raw));
    push_chunk(&mut out, b"IEND", &[]);
    Ok(out)
}

fn push_chunk(out: &mut Vec<u8>, ctype: &[u8; 4], data: &[u8]) {
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(ctype);
    out.extend_from_slice(data);
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(ctype);
    crc_input.extend_from_slice(data);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

// ---------------------------------------------------------------------------
// zlib (RFC 1950) over deflate (RFC 1951), stored + fixed-Huffman subset
// ---------------------------------------------------------------------------

/// Wrap raw bytes in a zlib stream of stored (uncompressed) deflate
/// blocks — what the PNG encoder emits.
fn zlib_deflate_stored(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() + raw.len() / 65_535 * 5 + 16);
    // CMF 0x78 (deflate, 32 KiB window), FLG 0x01 (check bits, no dict):
    // (0x78 << 8 | 0x01) = 30721 = 31 × 991.
    out.extend_from_slice(&[0x78, 0x01]);
    let mut chunks = raw.chunks(65_535).peekable();
    if raw.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]); // final empty stored block
    }
    while let Some(chunk) = chunks.next() {
        let bfinal: u8 = u8::from(chunks.peek().is_none());
        out.push(bfinal); // BTYPE=00 in bits 1-2
        #[allow(clippy::cast_possible_truncation)]
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(raw).to_be_bytes());
    out
}

/// Inflate a zlib stream whose deflate blocks are stored or
/// fixed-Huffman, bounding the output at exactly `expected` bytes.
fn zlib_inflate(data: &[u8], expected: usize) -> Result<Vec<u8>> {
    if data.len() < 2 {
        return Err(CodecError::Truncated { offset: 0, needed: 2, len: data.len() });
    }
    let (cmf, flg) = (data[0], data[1]);
    if (u16::from(cmf) << 8 | u16::from(flg)) % 31 != 0 {
        return Err(CodecError::Malformed {
            offset: 0,
            what: format!("zlib header check failed (CMF {cmf:#04x}, FLG {flg:#04x})"),
        });
    }
    if cmf & 0x0f != 8 {
        return Err(CodecError::Unsupported {
            what: format!("zlib compression method {}", cmf & 0x0f),
        });
    }
    if flg & 0x20 != 0 {
        return Err(CodecError::Unsupported { what: "zlib preset dictionary".into() });
    }
    let mut bits = Bits { bytes: data, pos: 2, bit: 0 };
    let out = inflate(&mut bits, expected)?;
    bits.align();
    let adler_at = bits.pos;
    let stored = bits.take_u32_be()?;
    let computed = adler32(&out);
    if stored != computed {
        return Err(CodecError::CrcMismatch { what: "zlib adler32".into(), stored, computed });
    }
    if bits.pos != data.len() {
        return Err(CodecError::Malformed {
            offset: adler_at,
            what: "trailing bytes after the zlib stream".into(),
        });
    }
    if out.len() != expected {
        return Err(CodecError::Malformed {
            offset: bits.pos,
            what: format!("decompressed to {} byte(s), header promises {expected}", out.len()),
        });
    }
    Ok(out)
}

/// LSB-first deflate bit reader.
struct Bits<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u32,
}

impl Bits<'_> {
    fn bit(&mut self) -> Result<u32> {
        let Some(&byte) = self.bytes.get(self.pos) else {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: 1,
                len: self.bytes.len(),
            });
        };
        let b = u32::from(byte >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Ok(b)
    }

    /// `n` bits as an LSB-first integer (deflate extra bits, lengths).
    fn bits(&mut self, n: u32) -> Result<u32> {
        let mut v = 0;
        for i in 0..n {
            v |= self.bit()? << i;
        }
        Ok(v)
    }

    /// `n` bits accumulated MSB-first (Huffman codes).
    fn code(&mut self, n: u32) -> Result<u32> {
        let mut v = 0;
        for _ in 0..n {
            v = v << 1 | self.bit()?;
        }
        Ok(v)
    }

    fn align(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
    }

    fn take_u32_be(&mut self) -> Result<u32> {
        debug_assert_eq!(self.bit, 0, "reads are byte-aligned here");
        if self.bytes.len() - self.pos < 4 {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: 4,
                len: self.bytes.len(),
            });
        }
        let v = u32::from_be_bytes(self.bytes[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        Ok(v)
    }
}

/// Length codes 257..=285: (base, extra bits).
const LEN_TABLE: [(u32, u32); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1), (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3), (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5), (258, 0),
];

/// Distance codes 0..=29: (base, extra bits).
const DIST_TABLE: [(u32, u32); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4), (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8), (1025, 9), (1537, 9),
    (2049, 10), (3073, 10), (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

fn inflate(bits: &mut Bits<'_>, expected: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    loop {
        let bfinal = bits.bit()?;
        let btype = bits.bits(2)?;
        match btype {
            0 => {
                bits.align();
                let at = bits.pos;
                if bits.bytes.len() - bits.pos < 4 {
                    return Err(CodecError::Truncated {
                        offset: at,
                        needed: 4,
                        len: bits.bytes.len(),
                    });
                }
                let len = u16::from_le_bytes(
                    bits.bytes[bits.pos..bits.pos + 2].try_into().expect("2 bytes"),
                );
                let nlen = u16::from_le_bytes(
                    bits.bytes[bits.pos + 2..bits.pos + 4].try_into().expect("2 bytes"),
                );
                bits.pos += 4;
                if len != !nlen {
                    return Err(CodecError::Malformed {
                        offset: at,
                        what: "stored deflate block length check failed".into(),
                    });
                }
                let len = usize::from(len);
                if bits.bytes.len() - bits.pos < len {
                    return Err(CodecError::Truncated {
                        offset: bits.pos,
                        needed: len,
                        len: bits.bytes.len(),
                    });
                }
                if out.len() + len > expected {
                    return Err(oversized(bits.pos, expected));
                }
                out.extend_from_slice(&bits.bytes[bits.pos..bits.pos + len]);
                bits.pos += len;
            }
            1 => fixed_block(bits, &mut out, expected)?,
            2 => {
                return Err(CodecError::Unsupported {
                    what: "dynamic-Huffman deflate block".into(),
                })
            }
            _ => {
                return Err(CodecError::Malformed {
                    offset: bits.pos,
                    what: "reserved deflate block type".into(),
                })
            }
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn oversized(offset: usize, expected: usize) -> CodecError {
    CodecError::Malformed {
        offset,
        what: format!("decompressed data exceeds the {expected} byte(s) the header promises"),
    }
}

/// Decode one fixed-Huffman deflate block into `out`.
fn fixed_block(bits: &mut Bits<'_>, out: &mut Vec<u8>, expected: usize) -> Result<()> {
    loop {
        let sym = fixed_litlen(bits)?;
        match sym {
            0..=255 => {
                if out.len() >= expected {
                    return Err(oversized(bits.pos, expected));
                }
                #[allow(clippy::cast_possible_truncation)]
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LEN_TABLE[(sym - 257) as usize];
                let len = (base + bits.bits(extra)?) as usize;
                let dsym = bits.code(5)? as usize;
                if dsym >= DIST_TABLE.len() {
                    return Err(CodecError::Malformed {
                        offset: bits.pos,
                        what: format!("invalid deflate distance symbol {dsym}"),
                    });
                }
                let (dbase, dextra) = DIST_TABLE[dsym];
                let dist = (dbase + bits.bits(dextra)?) as usize;
                if dist > out.len() {
                    return Err(CodecError::Malformed {
                        offset: bits.pos,
                        what: format!(
                            "deflate back-reference distance {dist} before stream start"
                        ),
                    });
                }
                if out.len() + len > expected {
                    return Err(oversized(bits.pos, expected));
                }
                // Byte-by-byte: overlapping copies (dist < len) replicate.
                for _ in 0..len {
                    out.push(out[out.len() - dist]);
                }
            }
            _ => {
                return Err(CodecError::Malformed {
                    offset: bits.pos,
                    what: format!("invalid deflate literal/length symbol {sym}"),
                })
            }
        }
    }
}

/// One symbol of the fixed literal/length code (RFC 1951 §3.2.6): 7-bit
/// codes 0x00-0x17 → 256-279, 8-bit 0x30-0xBF → 0-143 and 0xC0-0xC7 →
/// 280-287, 9-bit 0x190-0x1FF → 144-255.
fn fixed_litlen(bits: &mut Bits<'_>) -> Result<u32> {
    let mut code = bits.code(7)?;
    if code <= 0x17 {
        return Ok(256 + code);
    }
    code = code << 1 | bits.bit()?;
    if (0x30..=0xbf).contains(&code) {
        return Ok(code - 0x30);
    }
    if (0xc0..=0xc7).contains(&code) {
        return Ok(280 + code - 0xc0);
    }
    code = code << 1 | bits.bit()?;
    if (0x190..=0x1ff).contains(&code) {
        return Ok(144 + code - 0x190);
    }
    Err(CodecError::Malformed {
        offset: bits.pos,
        what: format!("invalid fixed-Huffman code {code:#x}"),
    })
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE, reflected — the PNG chunk checksum).
fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = table[usize::from((crc as u8) ^ byte)] ^ (crc >> 8);
    }
    !crc
}

/// Adler-32 (the zlib stream checksum).
fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let (mut a, mut b) = (1u32, 0u32);
    // 5552 is the largest run before u32 accumulation can overflow.
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    b << 16 | a
}

/// A byte-slice reader with typed truncation errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: n,
                len: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u32_be(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An RGB image whose values are already 8-bit quantized, so wire
    /// round trips are bit-exact.
    fn quantized_image(h: usize, w: usize, seed: u64) -> Image {
        let mut img = Image::zeros(h, w);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for c in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    #[allow(clippy::cast_possible_truncation)]
                    let byte = (state >> 33) as u8;
                    *img.pixel_mut(c, y, x) = dequantize(byte);
                }
            }
        }
        img
    }

    fn assert_images_bit_identical(a: &Image, b: &Image) {
        assert_eq!(a.tensor().shape(), b.tensor().shape());
        for (x, y) in a.tensor().data().iter().zip(b.tensor().data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn ppm_round_trip_is_bit_exact() {
        let img = quantized_image(7, 5, 1);
        let bytes = encode_ppm(&img).unwrap();
        assert!(bytes.starts_with(b"P6\n5 7\n255\n"));
        let back = decode_ppm(&bytes).unwrap();
        assert_images_bit_identical(&img, &back);
        // And byte-identity the other way around.
        assert_eq!(encode_ppm(&back).unwrap(), bytes);
    }

    #[test]
    fn ppm_header_allows_comments_and_mixed_whitespace() {
        let mut bytes = b"P6 # a comment\n# another\n 2\t3\n255\n".to_vec();
        bytes.extend_from_slice(&[10u8; 18]);
        let img = decode_ppm(&bytes).unwrap();
        assert_eq!((img.width(), img.height()), (2, 3));
        assert_eq!(img.pixel(0, 0, 0).to_bits(), dequantize(10).to_bits());
    }

    #[test]
    fn png_round_trip_is_bit_exact_rgb_and_grey() {
        let img = quantized_image(6, 9, 2);
        let bytes = encode_png(&img).unwrap();
        let back = decode_png(&bytes).unwrap();
        assert_images_bit_identical(&img, &back);
        assert_eq!(encode_png(&back).unwrap(), bytes);

        let grey = Image::from_tensor(img.to_luma().map(|v| quantize(v) as f32 / 255.0)).unwrap();
        let bytes = encode_png(&grey).unwrap();
        let back = decode_png(&bytes).unwrap();
        assert_eq!(back.channels(), 1);
        assert_images_bit_identical(&grey, &back);
    }

    #[test]
    fn decode_image_sniffs_both_formats() {
        let img = quantized_image(4, 4, 3);
        let (ppm, png) = (encode_ppm(&img).unwrap(), encode_png(&img).unwrap());
        let (a, fa) = decode_image(&ppm).unwrap();
        let (b, fb) = decode_image(&png).unwrap();
        assert_eq!(fa, WireFormat::Ppm);
        assert_eq!(fb, WireFormat::Png);
        assert_images_bit_identical(&a, &b);
        let err = decode_image(b"GIF89a...").unwrap_err();
        assert!(matches!(err, CodecError::UnknownFormat { .. }), "{err}");
    }

    /// Hand-built fixed-Huffman zlib stream: literals 'a' 'b', then a
    /// length-4/distance-2 back-reference (→ "ababab"), end-of-block.
    fn fixed_huffman_zlib(payload_check: &[u8]) -> Vec<u8> {
        struct BitWriter {
            bytes: Vec<u8>,
            bit: u32,
        }
        impl BitWriter {
            /// Push `n` bits LSB-first (deflate bit order).
            fn lsb(&mut self, value: u32, n: u32) {
                for i in 0..n {
                    let b = value >> i & 1;
                    if self.bit == 0 {
                        self.bytes.push(0);
                    }
                    let last = self.bytes.len() - 1;
                    self.bytes[last] |= (b as u8) << self.bit;
                    self.bit = (self.bit + 1) % 8;
                }
            }
            /// Push an `n`-bit Huffman code MSB-first.
            fn code(&mut self, value: u32, n: u32) {
                for i in (0..n).rev() {
                    self.lsb(value >> i & 1, 1);
                }
            }
        }
        let mut w = BitWriter { bytes: vec![0x78, 0x01], bit: 0 };
        w.lsb(1, 1); // BFINAL
        w.lsb(1, 2); // BTYPE = fixed Huffman
        for lit in [b'a', b'b'] {
            w.code(0x30 + u32::from(lit), 8);
        }
        w.code(0x01, 7); // length symbol 257 → length 3, no extra bits
        w.code(0x01, 5); // distance symbol 1 → distance 2
        w.code(0x00, 7); // end of block (symbol 256)
        let mut bytes = w.bytes;
        bytes.extend_from_slice(&adler32(payload_check).to_be_bytes());
        bytes
    }

    #[test]
    fn fixed_huffman_blocks_with_back_references_inflate() {
        // 'a', 'b', then length 3 / distance 2 → "ababa".
        let expected = b"ababa";
        let stream = fixed_huffman_zlib(expected);
        let out = zlib_inflate(&stream, expected.len()).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn dynamic_huffman_blocks_are_a_typed_unsupported_error() {
        // BFINAL=1, BTYPE=10 (dynamic) — first compressed byte 0b101 = 5.
        let mut stream = vec![0x78, 0x01, 0x05];
        stream.extend_from_slice(&adler32(b"").to_be_bytes());
        let err = zlib_inflate(&stream, 8).unwrap_err();
        assert!(matches!(err, CodecError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn ppm_negative_suite() {
        let img = quantized_image(3, 3, 4);
        let good = encode_ppm(&img).unwrap();

        let bad_magic = decode_ppm(b"P5\n3 3\n255\nxxxxxxxxx").unwrap_err();
        assert!(matches!(bad_magic, CodecError::BadMagic { .. }), "{bad_magic}");

        let truncated = decode_ppm(&good[..good.len() - 1]).unwrap_err();
        assert!(matches!(truncated, CodecError::Truncated { .. }), "{truncated}");

        let mut trailing = good.clone();
        trailing.push(0);
        let err = decode_ppm(&trailing).unwrap_err();
        assert!(matches!(err, CodecError::TrailingBytes { .. }), "{err}");

        let absurd = decode_ppm(b"P6\n999999999 999999999\n255\n").unwrap_err();
        assert!(matches!(absurd, CodecError::DimensionLimit { .. }), "{absurd}");

        let sixteen_bit = decode_ppm(b"P6\n2 2\n65535\n").unwrap_err();
        assert!(matches!(sixteen_bit, CodecError::Unsupported { .. }), "{sixteen_bit}");

        let no_ws = decode_ppm(b"P63 3\n255\n").unwrap_err();
        assert!(matches!(no_ws, CodecError::Malformed { .. }), "{no_ws}");

        let header_only = decode_ppm(b"P6\n3").unwrap_err();
        assert!(matches!(header_only, CodecError::Truncated { .. }), "{header_only}");
    }

    #[test]
    fn png_negative_suite() {
        let img = quantized_image(4, 5, 5);
        let good = encode_png(&img).unwrap();

        let bad_magic = decode_png(b"notapngfile").unwrap_err();
        assert!(matches!(bad_magic, CodecError::BadMagic { .. }), "{bad_magic}");

        let truncated = decode_png(&good[..good.len() - 5]).unwrap_err();
        assert!(matches!(truncated, CodecError::Truncated { .. }), "{truncated}");

        // Flip one IDAT payload byte: the chunk CRC must catch it.
        let mut crc_broken = good.clone();
        let idat_at = good.windows(4).position(|w| w == b"IDAT").unwrap();
        crc_broken[idat_at + 7] ^= 0xff;
        let err = decode_png(&crc_broken).unwrap_err();
        assert!(matches!(err, CodecError::CrcMismatch { .. }), "{err}");

        let mut trailing = good.clone();
        trailing.push(0);
        let err = decode_png(&trailing).unwrap_err();
        assert!(matches!(err, CodecError::TrailingBytes { .. }), "{err}");

        // Absurd dimensions in IHDR (chunk re-CRC'd so only the bound
        // check can reject it).
        let mut absurd = good.clone();
        absurd[16..20].copy_from_slice(&0x7fff_ffffu32.to_be_bytes());
        let ihdr_crc = crc32(&absurd[12..29]);
        absurd[29..33].copy_from_slice(&ihdr_crc.to_be_bytes());
        let err = decode_png(&absurd).unwrap_err();
        assert!(matches!(err, CodecError::DimensionLimit { .. }), "{err}");

        // 16-bit depth is valid PNG but outside the subset.
        let mut deep = good.clone();
        deep[24] = 16;
        let crc = crc32(&deep[12..29]);
        deep[29..33].copy_from_slice(&crc.to_be_bytes());
        let err = decode_png(&deep).unwrap_err();
        assert!(matches!(err, CodecError::Unsupported { .. }), "{err}");

        // Declared size larger than the pixel data inflates to.
        let mut short = good.clone();
        short[20..24].copy_from_slice(&9u32.to_be_bytes()); // height 4 → 9
        let crc = crc32(&short[12..29]);
        short[29..33].copy_from_slice(&crc.to_be_bytes());
        let err = decode_png(&short).unwrap_err();
        assert!(
            matches!(err, CodecError::Malformed { .. } | CodecError::Truncated { .. }),
            "{err}"
        );
    }

    #[test]
    fn grey_images_refuse_p6() {
        let grey = Image::from_tensor(Tensor::zeros(&[1, 3, 3])).unwrap();
        let err = encode_ppm(&grey).unwrap_err();
        assert!(matches!(err, CodecError::Unencodable { .. }), "{err}");
    }

    #[test]
    fn checksums_match_known_vectors() {
        // Published test vectors: CRC-32("123456789") and Adler-32 of
        // "Wikipedia".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(adler32(b"Wikipedia"), 0x11e6_0398);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn codec_error_display_is_exhaustive() {
        let cases: Vec<(CodecError, &str)> = vec![
            (CodecError::UnknownFormat { found: vec![1, 2] }, "not a known wire image format"),
            (
                CodecError::BadMagic { format: WireFormat::Png, found: vec![3] },
                "not a PNG payload",
            ),
            (CodecError::Truncated { offset: 4, needed: 8, len: 6 }, "needed 8 byte(s) at offset 4"),
            (CodecError::Malformed { offset: 9, what: "bad filter".into() }, "offset 9: bad filter"),
            (CodecError::DimensionLimit { width: 70_000, height: 2 }, "70000x2"),
            (
                CodecError::CrcMismatch { what: "PNG chunk IDAT".into(), stored: 1, computed: 2 },
                "PNG chunk IDAT checksum mismatch",
            ),
            (CodecError::Unsupported { what: "interlace".into() }, "unsupported image feature: interlace"),
            (CodecError::Unencodable { what: "greyscale".into() }, "cannot encode image: greyscale"),
            (CodecError::TrailingBytes { consumed: 5, len: 7 }, "2 trailing byte(s)"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} renders {text:?}, wanted {needle:?}");
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_none(), "{err:?} is a leaf error");
        }
    }
}
