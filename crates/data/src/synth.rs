//! Procedural image synthesis — the reproduction's stand-in for DIV2K and
//! the four SR benchmark sets.
//!
//! Real SR training data is characterised by a mix of smooth shading and
//! high-frequency structure (edges, stripes, textures). The generators here
//! produce exactly those ingredients deterministically from a seed:
//! oriented sinusoidal gratings (the building-facade stripes of Urban100),
//! checkerboards, low-frequency Fourier "cloud" textures, hard-edged
//! geometric primitives, and composites of all of them.

use crate::image::Image;
use rand::rngs::StdRng;
use rand::Rng;
use scales_tensor::Tensor;

/// One procedural primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Oriented sinusoidal grating (stripes).
    Grating,
    /// Checkerboard with random cell size.
    Checker,
    /// Smooth random low-frequency Fourier texture.
    Clouds,
    /// Filled rectangle with hard edges.
    Rectangle,
    /// Filled disc with a hard edge.
    Disc,
    /// Linear shading gradient.
    Gradient,
}

const ALL_PRIMITIVES: [Primitive; 6] = [
    Primitive::Grating,
    Primitive::Checker,
    Primitive::Clouds,
    Primitive::Rectangle,
    Primitive::Disc,
    Primitive::Gradient,
];

fn random_color(rng: &mut StdRng) -> [f32; 3] {
    [rng.gen_range(0.05..0.95), rng.gen_range(0.05..0.95), rng.gen_range(0.05..0.95)]
}

/// Render one primitive over the whole canvas, returning per-pixel
/// intensity in `[0, 1]` (colour applied by the caller).
fn render_field(p: Primitive, h: usize, w: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut field = vec![0.0f32; h * w];
    match p {
        Primitive::Grating => {
            let freq = rng.gen_range(0.15..1.2);
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::PI);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let (s, c) = theta.sin_cos();
            // Square-ish wave mixes hard and soft edges.
            let hardness = rng.gen_range(1.0..6.0);
            for y in 0..h {
                for x in 0..w {
                    let t = (x as f32 * c + y as f32 * s) * freq + phase;
                    let v = (t.sin() * hardness).tanh() * 0.5 + 0.5;
                    field[y * w + x] = v;
                }
            }
        }
        Primitive::Checker => {
            let cell = rng.gen_range(2..=8usize);
            for y in 0..h {
                for x in 0..w {
                    field[y * w + x] = if (x / cell + y / cell) % 2 == 0 { 1.0 } else { 0.0 };
                }
            }
        }
        Primitive::Clouds => {
            // Sum of a few random low-frequency sinusoids.
            let terms: Vec<(f32, f32, f32, f32)> = (0..5)
                .map(|_| {
                    (
                        rng.gen_range(0.02..0.25),
                        rng.gen_range(0.02..0.25),
                        rng.gen_range(0.0..std::f32::consts::TAU),
                        rng.gen_range(0.3..1.0),
                    )
                })
                .collect();
            for y in 0..h {
                for x in 0..w {
                    let mut v = 0.0;
                    let mut norm = 0.0;
                    for &(fx, fy, ph, amp) in &terms {
                        v += amp * (x as f32 * fx + y as f32 * fy + ph).sin();
                        norm += amp;
                    }
                    field[y * w + x] = (v / norm) * 0.5 + 0.5;
                }
            }
        }
        Primitive::Rectangle => {
            let x0 = rng.gen_range(0..w.max(2) / 2);
            let y0 = rng.gen_range(0..h.max(2) / 2);
            let x1 = rng.gen_range(x0 + 1..w);
            let y1 = rng.gen_range(y0 + 1..h);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    field[y * w + x] = 1.0;
                }
            }
        }
        Primitive::Disc => {
            let cx = rng.gen_range(0.0..w as f32);
            let cy = rng.gen_range(0.0..h as f32);
            let r = rng.gen_range(2.0..(h.min(w) as f32) / 2.0);
            for y in 0..h {
                for x in 0..w {
                    let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                    field[y * w + x] = if d <= r { 1.0 } else { 0.0 };
                }
            }
        }
        Primitive::Gradient => {
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let (s, c) = theta.sin_cos();
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for y in 0..h {
                for x in 0..w {
                    let t = x as f32 * c + y as f32 * s;
                    lo = lo.min(t);
                    hi = hi.max(t);
                }
            }
            let span = (hi - lo).max(1e-6);
            for y in 0..h {
                for x in 0..w {
                    let t = x as f32 * c + y as f32 * s;
                    field[y * w + x] = (t - lo) / span;
                }
            }
        }
    }
    field
}

/// Generator configuration biasing which primitives appear — used to give
/// each synthetic benchmark set its own character.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// Number of layered primitives per image (≥ 1).
    pub layers: usize,
    /// Probability weight of structured primitives (gratings/checkers) vs
    /// smooth ones — `SynUrban100` sets this high.
    pub structure_bias: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self { layers: 4, structure_bias: 0.5 }
    }
}

/// Synthesize one RGB scene of the given size.
#[must_use]
pub fn scene(h: usize, w: usize, config: SceneConfig, rng: &mut StdRng) -> Image {
    let mut t = Tensor::zeros(&[3, h, w]);
    // Base layer: clouds or gradient as background.
    let base = if rng.gen_bool(0.5) { Primitive::Clouds } else { Primitive::Gradient };
    let bg = render_field(base, h, w, rng);
    let c0 = random_color(rng);
    let c1 = random_color(rng);
    for y in 0..h {
        for x in 0..w {
            let v = bg[y * w + x];
            for ch in 0..3 {
                *t.at_mut(&[ch, y, x]) = c0[ch] * (1.0 - v) + c1[ch] * v;
            }
        }
    }
    for _ in 0..config.layers.max(1) - 1 {
        let p = if rng.gen::<f32>() < config.structure_bias {
            if rng.gen_bool(0.6) {
                Primitive::Grating
            } else {
                Primitive::Checker
            }
        } else {
            ALL_PRIMITIVES[rng.gen_range(0..ALL_PRIMITIVES.len())]
        };
        let field = render_field(p, h, w, rng);
        let color = random_color(rng);
        let opacity = rng.gen_range(0.35..0.95);
        // Restrict non-background primitives to a random window half the
        // time, so scenes have local structure like real photos.
        let (wy0, wy1, wx0, wx1) = if rng.gen_bool(0.5) && h > 4 && w > 4 {
            let y0 = rng.gen_range(0..h / 2);
            let x0 = rng.gen_range(0..w / 2);
            (y0, rng.gen_range(y0 + h / 4..h), x0, rng.gen_range(x0 + w / 4..w))
        } else {
            (0, h, 0, w)
        };
        for y in wy0..wy1 {
            for x in wx0..wx1 {
                let a = field[y * w + x] * opacity;
                for (ch, &col) in color.iter().enumerate() {
                    let old = t.at(&[ch, y, x]);
                    *t.at_mut(&[ch, y, x]) = old * (1.0 - a) + col * a;
                }
            }
        }
    }
    Image::from_tensor(t).expect("rank/channels fixed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn scenes_are_deterministic_per_seed() {
        let a = scene(16, 16, SceneConfig::default(), &mut rng(9));
        let b = scene(16, 16, SceneConfig::default(), &mut rng(9));
        assert_eq!(a, b);
        let c = scene(16, 16, SceneConfig::default(), &mut rng(10));
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_unit_range() {
        let img = scene(24, 24, SceneConfig::default(), &mut rng(3));
        assert!(img.tensor().min() >= 0.0 && img.tensor().max() <= 1.0);
    }

    #[test]
    fn scenes_have_high_frequency_content() {
        // Mean absolute horizontal difference should be clearly nonzero —
        // flat images would be useless for SR training.
        let img = scene(32, 32, SceneConfig { layers: 5, structure_bias: 0.9 }, &mut rng(4));
        let t = img.tensor();
        let mut diff = 0.0;
        let mut n = 0;
        for c in 0..3 {
            for y in 0..32 {
                for x in 1..32 {
                    diff += (t.at(&[c, y, x]) - t.at(&[c, y, x - 1])).abs();
                    n += 1;
                }
            }
        }
        assert!(diff / n as f32 > 0.01, "too smooth: {}", diff / n as f32);
    }

    #[test]
    fn every_primitive_renders_in_range() {
        let mut r = rng(5);
        for p in ALL_PRIMITIVES {
            let f = render_field(p, 8, 8, &mut r);
            assert_eq!(f.len(), 64);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)), "{p:?} out of range");
        }
    }
}
