//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher` and the
//! `criterion_group!`/`criterion_main!` macros with wall-clock timing and a
//! compact mean/min report per benchmark. Statistical analysis, plots and
//! baselines of the real crate are intentionally out of scope — the
//! workspace benches only need honest relative timings.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            b.reset(1);
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.reset(iters_per_sample);
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  {name:<28} mean {:>12} | min {:>12} | {} samples x {} iters",
            fmt_secs(mean),
            fmt_secs(min),
            samples.len(),
            iters_per_sample,
        );
        self
    }

    /// End the group (separator line, mirroring criterion's API shape).
    pub fn finish(self) {
        println!();
    }
}

/// Per-benchmark iteration driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self, iters: u64) {
        self.iters = iters;
        self.elapsed = Duration::ZERO;
    }

    /// Time `f`, called `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Group one or more bench functions under a single entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        assert!(calls > 0);
    }
}
