//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides exactly the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`
//! (over `f32`/`usize` ranges) and `gen_bool`.
//!
//! The generator is SplitMix64. It does **not** match upstream `StdRng`'s
//! stream bit-for-bit; the reproduction only relies on determinism under a
//! fixed seed, which this preserves.

use std::ops::{Range, RangeInclusive};

/// Construct a reproducible generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a plain `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Pseudo-random value generation over a concrete generator.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its canonical distribution
    /// (`f32`/`f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self.next_u64())
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types with a canonical `gen()` distribution.
pub trait Standard {
    /// Map raw bits to the canonical distribution.
    fn from_rng(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_rng(bits: u64) -> Self {
        ((bits >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_rng(bits: u64) -> Self {
        ((bits >> 11) as f64) / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn from_rng(bits: u64) -> Self {
        bits
    }
}

/// Types `gen_range` can sample uniformly. Mirrors `rand`'s
/// `SampleUniform` so half-open-range type inference behaves identically.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, bits: u64) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self;
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, bits: u64) -> Self {
        assert!(lo < hi, "empty f32 range");
        lo + f32::from_rng(bits) * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
        Self::sample_half_open(lo, hi, bits)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, bits: u64) -> Self {
        assert!(lo < hi, "empty f64 range");
        lo + f64::from_rng(bits) * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
        Self::sample_half_open(lo, hi, bits)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, bits: u64) -> Self {
                assert!(lo < hi, concat!("empty ", stringify!($t), " range"));
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (u128::from(bits) % span) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, bits: u64) -> Self {
                assert!(lo <= hi, concat!("empty ", stringify!($t), " range"));
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(bits) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u32, u64, i32, i64);

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range using the given raw bits.
    fn sample(self, bits: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, bits: u64) -> T {
        T::sample_half_open(self.start, self.end, bits)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, bits: u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, bits)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros fixed point and decorrelate small seeds.
            Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = r.gen_range(2..=8usize);
            assert!((2..=8).contains(&i));
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "got {hits}");
    }
}
