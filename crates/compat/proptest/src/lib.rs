//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` line),
//! range and `prop::collection::vec` strategies, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros. Cases are generated
//! from a fixed seed so failures are reproducible; shrinking is not
//! implemented — the failing inputs are printed instead.

use std::fmt::Debug;
use std::ops::Range;

/// Re-exports matching `proptest::prelude::*` as the tests consume it.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Strategy combinators namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A vector of values drawn from `element`, with a length drawn
        /// uniformly from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::rng::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f32() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + (rng.next_u64() % span) as i64) as i32
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    /// Strategy for vectors; built by [`crate::prop::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start
                + (rng.next_u64() % (self.size.end - self.size.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    // Boxed strategies keep `impl Strategy` returns composable.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

/// Deterministic generator feeding the strategies.
pub mod rng {
    /// SplitMix64 with fixed seeding for reproducible cases.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor; each test uses a seed derived from its name.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f32` in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            ((self.next_u64() >> 40) as f32) / (1u64 << 24) as f32
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) / (1u64 << 53) as f64
        }
    }
}

/// Runner configuration and failure plumbing.
pub mod test_runner {
    /// Number-of-cases configuration, mirroring proptest's field name.
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            Self { message }
        }
    }
}

/// FNV-1a over the test name: stable per-test seed.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Debug-print helper for failure reports.
pub fn describe_value<T: Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Unused; kept so `use std::ops::Range` above is exercised in docs.
pub(crate) type _SizeRange = Range<usize>;

/// Property-test entry macro: generates one `#[test]` per property.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$attr:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $crate::proptest!(@run ($cfg) $( $(#[$attr])+ fn $name ( $( $arg in $strat ),* ) $body )*);
    };
    (
        $( $(#[$attr:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default())
            $( $(#[$attr])+ fn $name ( $( $arg in $strat ),* ) $body )*);
    };
    (@run ($cfg:expr) $( $(#[$attr:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),* ) $body:block )*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::rng::TestRng::new($crate::seed_from_name(stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )*
                    let mut inputs = String::new();
                    $(
                        inputs.push_str(concat!(stringify!($arg), " = "));
                        inputs.push_str(&$crate::describe_value(&$arg));
                        inputs.push('\n');
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, e.message, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(-1.0f32..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn scalar_ranges_hold(x in 0.25f32..0.5, n in 2usize..9) {
            prop_assert!((0.25..0.5).contains(&x));
            prop_assert!((2..9).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]

        #[test]
        #[should_panic(expected = "property always_fails failed")]
        fn always_fails(x in 0usize..2) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
