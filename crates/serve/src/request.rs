//! The request/response pair of the serving API.

use crate::engine::Precision;
use crate::tile::TilePolicy;
use scales_data::Image;
use scales_telemetry::{RequestId, RuntimeStamps};
use scales_tensor::backend::Backend;
use scales_tensor::SimdLevel;
use std::time::{Duration, Instant};

/// A unit of serving work: one or more LR images, with optional
/// per-request overrides of the engine defaults.
#[derive(Clone)]
pub struct SrRequest {
    images: Vec<Image>,
    tile: Option<TilePolicy>,
    tenant: Option<String>,
    deadline: Option<Instant>,
    request_id: Option<RequestId>,
}

impl SrRequest {
    /// Request super-resolution of a single image.
    #[must_use]
    pub fn single(image: Image) -> Self {
        Self::batch(vec![image])
    }

    /// Request super-resolution of a set of images. Sizes may be mixed;
    /// the session micro-batches same-sized images together.
    #[must_use]
    pub fn batch(images: Vec<Image>) -> Self {
        Self { images, tile: None, tenant: None, deadline: None, request_id: None }
    }

    /// Override the engine's tile policy for this request only.
    #[must_use]
    pub fn tile_policy(mut self, policy: TilePolicy) -> Self {
        self.tile = Some(policy);
        self
    }

    /// Tag this request with a tenant name. The `scales-runtime`
    /// admission controller queues each tenant in its own lane — with a
    /// weighted round-robin dequeue and an optional per-tenant quota —
    /// so one hot tenant cannot monopolize the worker pool. Untagged
    /// requests share an anonymous lane.
    #[must_use]
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Give this request an absolute deadline. The runtime refuses a
    /// request whose deadline has already passed, expires it while
    /// queued instead of dispatching it late, and schedules
    /// deadline-tagged work earliest-deadline-first.
    #[must_use]
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Give this request a deadline relative to now. See
    /// [`deadline_at`](Self::deadline_at).
    #[must_use]
    pub fn deadline_in(self, budget: Duration) -> Self {
        self.deadline_at(Instant::now() + budget)
    }

    /// Tag this request with its trace id — the correlation handle the
    /// HTTP edge echoes as `X-Scales-Request-Id` and the flight recorder
    /// keys its traces by. The id travels with the request through
    /// router, runtime queue, and ticket so every layer can attribute
    /// the work to the same trace.
    #[must_use]
    pub fn request_id(mut self, id: RequestId) -> Self {
        self.request_id = Some(id);
        self
    }

    /// The trace id, if the request carries one.
    #[must_use]
    pub fn request_id_tag(&self) -> Option<&RequestId> {
        self.request_id.as_ref()
    }

    /// The requested images.
    #[must_use]
    pub fn images(&self) -> &[Image] {
        &self.images
    }

    /// The tenant tag, if the request carries one.
    #[must_use]
    pub fn tenant_tag(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// The absolute deadline, if the request carries one.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Decompose into the owned images and the per-request tile override.
    /// This is how layered callers (notably the `scales-runtime` batcher)
    /// take requests apart to coalesce them without copying the payloads.
    #[must_use]
    pub fn into_parts(self) -> (Vec<Image>, Option<TilePolicy>) {
        (self.images, self.tile)
    }
}

/// How a request was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferStats {
    /// Images served.
    pub images: usize,
    /// Batched forwards run (one per shape bucket of untiled images).
    pub batches: usize,
    /// Images that went through the split → forward → stitch path.
    pub tiled: usize,
    /// Backend the work ran under.
    pub backend: Backend,
    /// CPU SIMD level the backend's kernel dispatched at
    /// ([`SimdLevel::None`] for the scalar and parallel kernels, the
    /// detected feature level for the simd kernel).
    pub simd: SimdLevel,
    /// Precision the work ran at.
    pub precision: Precision,
    /// Execution plans built during this request (one per input shape the
    /// session had not served before; always 0 on the training path).
    pub plans_built: usize,
    /// Forwards that reused an already-built plan — the session's
    /// workspace served them with zero steady-state allocation.
    pub plan_reuses: usize,
}

/// The super-resolved images of one request, in request order.
pub struct SrResponse {
    pub(crate) images: Vec<Image>,
    pub(crate) stats: InferStats,
    pub(crate) stamps: Option<RuntimeStamps>,
}

impl SrResponse {
    /// Assemble a response from already-served images and their execution
    /// stats. Sessions build responses internally; this constructor exists
    /// for layers that re-slice a served response — the `scales-runtime`
    /// dynamic batcher serves several callers' requests through one
    /// [`Session::infer`](crate::Session::infer) call and hands each
    /// caller its own slice of the images under the shared dispatch stats.
    #[must_use]
    pub fn from_parts(images: Vec<Image>, stats: InferStats) -> Self {
        Self { images, stats, stamps: None }
    }

    /// Attach the runtime's queue/batch/infer stage stamps. The
    /// `scales-runtime` dispatcher sets these on every response it
    /// resolves so the submitter can attribute queue wait, batch
    /// assembly, and the forward without a side channel.
    #[must_use]
    pub fn with_stamps(mut self, stamps: RuntimeStamps) -> Self {
        self.stamps = Some(stamps);
        self
    }

    /// The runtime's stage stamps, when this response crossed the
    /// concurrent runtime (`None` for a direct
    /// [`Session::infer`](crate::Session::infer)).
    #[must_use]
    pub fn stamps(&self) -> Option<RuntimeStamps> {
        self.stamps
    }

    /// The SR images, index-aligned with the request's images.
    #[must_use]
    pub fn images(&self) -> &[Image] {
        &self.images
    }

    /// Consume the response, keeping only the SR images.
    #[must_use]
    pub fn into_images(self) -> Vec<Image> {
        self.images
    }

    /// Execution breakdown for this request.
    #[must_use]
    pub fn stats(&self) -> InferStats {
        self.stats
    }
}
