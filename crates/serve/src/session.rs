//! [`Session`]: the single `infer` entry point serving single, batched and
//! tiled requests through one engine.

use crate::engine::Engine;
use crate::request::{InferStats, SrRequest, SrResponse};
use crate::tile::TileSpec;
use scales_data::Image;
use scales_models::Workspace;
use scales_tensor::{backend, Result, Tensor, TensorError};
use std::cell::{Cell, RefCell};

/// A stream of requests against one [`Engine`]. Cheap to open; carries
/// per-session serving counters and the planned executor's [`Workspace`]
/// — arena slots, kernel scratch, and the per-shape plan cache — so
/// steady-state deployed forwards on this session allocate nothing.
pub struct Session<'e, 'm> {
    engine: &'e Engine<'m>,
    requests: Cell<usize>,
    images_served: Cell<usize>,
    /// Interior-mutable so `infer` can stay `&self` (sessions hand out
    /// shared references); never borrowed across a forward boundary.
    workspace: RefCell<Workspace>,
}

impl<'e, 'm> Session<'e, 'm> {
    pub(crate) fn over(engine: &'e Engine<'m>) -> Self {
        Self {
            engine,
            requests: Cell::new(0),
            images_served: Cell::new(0),
            workspace: RefCell::new(Workspace::new()),
        }
    }

    /// The engine this session serves through.
    #[must_use]
    pub fn engine(&self) -> &'e Engine<'m> {
        self.engine
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests.get()
    }

    /// Images served so far.
    #[must_use]
    pub fn images_served(&self) -> usize {
        self.images_served.get()
    }

    /// Bytes resident in this session's planned-executor workspace (arena
    /// slots plus cached plans); zero until the first deployed forward.
    #[must_use]
    pub fn workspace_bytes(&self) -> usize {
        self.workspace.borrow().memory_bytes()
    }

    /// Switch the workspace's per-op plan profiler on or off (off by
    /// default — the planned forward then reads no clocks).
    pub fn set_profiling(&self, on: bool) {
        self.workspace.borrow_mut().enable_profiling(on);
    }

    /// Snapshot of the cumulative per-op profile this session's planned
    /// forwards have accumulated (empty unless
    /// [`set_profiling`](Session::set_profiling) switched it on).
    #[must_use]
    pub fn op_profile(&self) -> scales_telemetry::OpProfile {
        self.workspace.borrow().op_profile().clone()
    }

    /// Serve one request: every image is either tiled (split → forward →
    /// stitch) or grouped into a same-shape micro-batch, per the tile
    /// policy in force (request override, else engine default). All
    /// forwards run under the engine's backend handle, installed
    /// thread-scoped for the duration of the call.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty request, an invalid per-request tile
    /// policy, or a failed forward.
    pub fn infer(&self, request: SrRequest) -> Result<SrResponse> {
        let (images, tile_override) = request.into_parts();
        let policy = tile_override.unwrap_or_else(|| self.engine.tile_policy());
        let refs: Vec<&Image> = images.iter().collect();
        self.serve_refs(&refs, policy)
    }

    /// Super-resolve one image (request-of-one convenience, under the
    /// engine-default tile policy). Borrows the input — no request
    /// allocation or image copy on this hot path.
    ///
    /// # Errors
    ///
    /// Propagates [`Session::infer`] errors.
    pub fn super_resolve(&self, lr: &Image) -> Result<Image> {
        let mut images =
            self.serve_refs(&[lr], self.engine.tile_policy())?.into_images();
        images.pop().ok_or_else(|| {
            TensorError::InvalidArgument("single-image request returned no image".into())
        })
    }

    /// The borrowed core of [`Session::infer`]: serve `images` under
    /// `policy` without taking ownership of the inputs.
    fn serve_refs(&self, images: &[&Image], policy: crate::TilePolicy) -> Result<SrResponse> {
        let engine = self.engine;
        if images.is_empty() {
            return Err(TensorError::InvalidArgument(
                "inference request needs at least one image".into(),
            ));
        }
        policy.validate()?;
        backend::with_thread_backend(engine.backend(), || {
            let (plans_before, hits_before) = {
                let ws = self.workspace.borrow();
                (ws.plans_built(), ws.plan_hits())
            };
            let forward =
                |t: &Tensor| engine.forward_with(t, &mut self.workspace.borrow_mut());
            let mut out: Vec<Option<Image>> = Vec::new();
            out.resize_with(images.len(), || None);
            let mut tiled = 0usize;
            // Shape buckets of untiled images, in first-seen order so the
            // execution (and therefore any accumulation order) is
            // deterministic.
            let mut buckets: Vec<((usize, usize, usize), Vec<usize>)> = Vec::new();
            for (i, img) in images.iter().enumerate() {
                if let Some(spec) = policy.spec_for(img.height(), img.width()) {
                    out[i] = Some(tiled_with(forward, engine.scale(), img, spec)?);
                    tiled += 1;
                } else {
                    let key = (img.channels(), img.height(), img.width());
                    match buckets.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push(i),
                        None => buckets.push((key, vec![i])),
                    }
                }
            }
            let batches = buckets.len();
            for (_, members) in &buckets {
                let group: Vec<&Image> = members.iter().map(|&i| images[i]).collect();
                for (&i, sr) in members.iter().zip(batch_with(forward, &group)?) {
                    out[i] = Some(sr);
                }
            }
            self.requests.set(self.requests.get() + 1);
            self.images_served.set(self.images_served.get() + images.len());
            let images = out
                .into_iter()
                .map(|sr| {
                    sr.ok_or_else(|| {
                        TensorError::InvalidArgument("request image produced no output".into())
                    })
                })
                .collect::<Result<Vec<Image>>>()?;
            let (plans_built, plan_reuses) = {
                let ws = self.workspace.borrow();
                (ws.plans_built() - plans_before, ws.plan_hits() - hits_before)
            };
            Ok(SrResponse {
                stamps: None,
                stats: InferStats {
                    images: images.len(),
                    batches,
                    tiled,
                    backend: engine.backend(),
                    simd: engine.backend().kernel().simd_level(),
                    precision: engine.precision(),
                    plans_built,
                    plan_reuses,
                },
                images,
            })
        })
    }
}

/// Stack same-sized images into `[N, C, H, W]`, run one forward, unstack.
pub(crate) fn batch_with(
    forward: impl Fn(&Tensor) -> Result<Tensor>,
    images: &[&Image],
) -> Result<Vec<Image>> {
    let first = images.first().ok_or_else(|| {
        TensorError::InvalidArgument("batched inference needs at least one image".into())
    })?;
    let (c, h, w) = (first.channels(), first.height(), first.width());
    let mut data = Vec::with_capacity(images.len() * c * h * w);
    for img in images {
        if img.channels() != c || img.height() != h || img.width() != w {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![c, h, w],
                rhs: vec![img.channels(), img.height(), img.width()],
                op: "batched inference sizes",
            });
        }
        data.extend_from_slice(img.tensor().data());
    }
    let batch = Tensor::from_vec(data, &[images.len(), c, h, w])?;
    let y = forward(&batch)?;
    let (oc, oh, ow) = (y.shape()[1], y.shape()[2], y.shape()[3]);
    (0..images.len())
        .map(|b| {
            let t = y.slice_axis(0, b, 1)?.reshape(&[oc, oh, ow])?;
            Image::from_tensor(t)
        })
        .collect()
}

/// Split → forward → stitch (see the `crate::tile` docs for the exactness
/// conditions).
pub(crate) fn tiled_with(
    forward: impl Fn(&Tensor) -> Result<Tensor>,
    scale: usize,
    lr: &Image,
    spec: TileSpec,
) -> Result<Image> {
    let t = lr.tensor();
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    let mut out = Tensor::zeros(&[c, h * scale, w * scale]);
    let mut y0 = 0;
    while y0 < h {
        let y1 = (y0 + spec.tile).min(h);
        let py0 = y0.saturating_sub(spec.overlap);
        let py1 = (y1 + spec.overlap).min(h);
        let mut x0 = 0;
        while x0 < w {
            let x1 = (x0 + spec.tile).min(w);
            let px0 = x0.saturating_sub(spec.overlap);
            let px1 = (x1 + spec.overlap).min(w);
            // Crop the padded tile [py0..py1) × [px0..px1).
            let tile = t.slice_axis(1, py0, py1 - py0)?.slice_axis(2, px0, px1 - px0)?;
            let tile = tile.reshape(&[1, c, py1 - py0, px1 - px0])?;
            let sr = forward(&tile)?;
            let expect = [1, c, (py1 - py0) * scale, (px1 - px0) * scale];
            if sr.shape() != expect {
                return Err(TensorError::ShapeMismatch {
                    lhs: sr.shape().to_vec(),
                    rhs: expect.to_vec(),
                    op: "tiled inference output",
                });
            }
            // Keep the center crop corresponding to [y0..y1) × [x0..x1).
            let (ky, kx) = ((y0 - py0) * scale, (x0 - px0) * scale);
            let (kh, kw) = ((y1 - y0) * scale, (x1 - x0) * scale);
            let srw = (px1 - px0) * scale;
            for ci in 0..c {
                for ry in 0..kh {
                    let src_row = (ci * (py1 - py0) * scale + ky + ry) * srw + kx;
                    let dst_row = (ci * h * scale + y0 * scale + ry) * w * scale + x0 * scale;
                    out.data_mut()[dst_row..dst_row + kw]
                        .copy_from_slice(&sr.data()[src_row..src_row + kw]);
                }
            }
            x0 = x1;
        }
        y0 = y1;
    }
    Image::from_tensor(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Precision, SrRequest, TilePolicy};
    use scales_core::{Method, ScalesComponents};
    use scales_models::{srresnet, SrConfig, SrNetwork};
    use scales_nn::init::rng;
    use scales_tensor::backend::Backend;

    fn probe_image(h: usize, w: usize, seed: u64) -> Image {
        scales_data::synth::scene(h, w, scales_data::synth::SceneConfig::default(), &mut rng(seed))
    }

    /// SRResNet-lite with 1 block: total conv radius along the deepest
    /// path is 5 (head 1 + two body convs 2 + body-end 1 + tail 1), plus 2
    /// for the bicubic kernel — receptive radius 7.
    fn local_net() -> impl SrNetwork {
        srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            // Local-only components: stitching is exact (tile module docs).
            method: Method::Scales(ScalesComponents::lsf_spatial()),
            seed: 23,
        })
        .unwrap()
    }

    #[test]
    fn session_batch_matches_single_image_forwards() {
        let net = local_net();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let session = engine.session();
        let images = vec![probe_image(8, 8, 41), probe_image(8, 8, 42)];
        let response = session.infer(SrRequest::batch(images.clone())).unwrap();
        assert_eq!(response.stats().batches, 1, "same-sized images share one forward");
        for (img, sr) in images.iter().zip(response.images()) {
            let single = net.super_resolve(img).unwrap();
            assert_eq!((sr.height(), sr.width()), (16, 16));
            assert_eq!(sr.tensor().data(), single.tensor().data(), "bit-identical to single");
        }
    }

    #[test]
    fn session_buckets_mixed_sizes_into_micro_batches() {
        let net = local_net();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let session = engine.session();
        // Interleave two shapes; order must be preserved in the response.
        let images = vec![
            probe_image(8, 8, 1),
            probe_image(6, 10, 2),
            probe_image(8, 8, 3),
            probe_image(6, 10, 4),
        ];
        let response = session.infer(SrRequest::batch(images.clone())).unwrap();
        assert_eq!(response.stats().batches, 2, "two shape buckets");
        assert_eq!(response.stats().tiled, 0);
        for (img, sr) in images.iter().zip(response.images()) {
            assert_eq!((sr.height(), sr.width()), (img.height() * 2, img.width() * 2));
            let single = net.super_resolve(img).unwrap();
            assert_eq!(sr.tensor().data(), single.tensor().data());
        }
        assert_eq!(session.requests(), 1);
        assert_eq!(session.images_served(), 4);
    }

    #[test]
    fn stats_report_buckets_tiling_backend_and_precision_on_mixed_sizes() {
        // Three shape buckets + one auto-tiled image in a single request,
        // checked at both precisions and on an explicit backend handle:
        // every InferStats field must reflect the engine that served it.
        let net = local_net();
        for precision in [Precision::Training, Precision::Deployed] {
            let engine = Engine::builder()
                .model_ref(&net)
                .precision(precision)
                .backend(Backend::Parallel)
                .tile_policy(TilePolicy::Auto { max_side: 12, overlap: 7 })
                .build()
                .unwrap();
            let session = engine.session();
            let images = vec![
                probe_image(8, 8, 61),   // bucket (8, 8)
                probe_image(16, 16, 62), // oversized → tiled
                probe_image(6, 10, 63),  // bucket (6, 10)
                probe_image(8, 8, 64),   // joins bucket (8, 8)
                probe_image(10, 6, 65),  // bucket (10, 6)
            ];
            let stats = session.infer(SrRequest::batch(images)).unwrap().stats();
            assert_eq!(stats.images, 5, "{precision}");
            assert_eq!(stats.batches, 3, "{precision}: three shape buckets");
            assert_eq!(stats.tiled, 1, "{precision}: only the oversized image tiles");
            assert_eq!(stats.backend, Backend::Parallel, "{precision}");
            assert_eq!(stats.backend, engine.backend(), "{precision}");
            assert_eq!(stats.simd, scales_tensor::SimdLevel::None, "{precision}: parallel kernel never dispatches SIMD");
            assert_eq!(stats.precision, precision);
        }
    }

    #[test]
    fn stats_report_detected_simd_level_on_the_simd_backend() {
        let net = local_net();
        let engine = Engine::builder()
            .model_ref(&net)
            .backend(Backend::Simd)
            .build()
            .unwrap();
        let session = engine.session();
        let stats =
            session.infer(SrRequest::single(probe_image(8, 8, 71))).unwrap().stats();
        assert_eq!(stats.backend, Backend::Simd);
        assert_eq!(stats.simd, Backend::detected(), "simd kernel reports what the CPU offers");
    }

    #[test]
    fn stats_report_training_precision_after_deployment_fallback() {
        // A transformer cannot lower; a Deployed request degrades and the
        // per-response stats must say so rather than echoing the request.
        let net = scales_models::swinir(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::FullPrecision,
            seed: 66,
        })
        .unwrap();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
        let stats =
            engine.session().infer(SrRequest::single(probe_image(8, 8, 67))).unwrap().stats();
        assert_eq!(stats.precision, Precision::Training);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.tiled, 0);
    }

    #[test]
    fn stats_count_all_tiled_requests_with_zero_batches() {
        let net = local_net();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let session = engine.session();
        // Per-request override tiles everything: no micro-batches remain.
        let response = session
            .infer(
                SrRequest::batch(vec![probe_image(16, 16, 68), probe_image(14, 14, 69)])
                    .tile_policy(TilePolicy::Fixed(TileSpec::new(8, 7).unwrap())),
            )
            .unwrap();
        assert_eq!(response.stats().tiled, 2);
        assert_eq!(response.stats().batches, 0);
        // Session counters accumulate across requests.
        let _ = session.infer(SrRequest::single(probe_image(8, 8, 70))).unwrap();
        assert_eq!(session.requests(), 2);
        assert_eq!(session.images_served(), 3);
    }

    #[test]
    fn stats_surface_plan_builds_and_reuses() {
        let net = local_net();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
        let session = engine.session();
        // Two shapes in one request: two plans built, nothing to reuse.
        let first = session
            .infer(SrRequest::batch(vec![probe_image(8, 8, 71), probe_image(6, 10, 72)]))
            .unwrap();
        assert_eq!(first.stats().plans_built, 2);
        assert_eq!(first.stats().plan_reuses, 0);
        // Same shapes again: both forwards reuse the session's plans.
        let second = session
            .infer(SrRequest::batch(vec![probe_image(8, 8, 73), probe_image(6, 10, 74)]))
            .unwrap();
        assert_eq!(second.stats().plans_built, 0);
        assert_eq!(second.stats().plan_reuses, 2);
        // The training path never plans.
        let training =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let stats = training.session().infer(SrRequest::single(probe_image(8, 8, 75))).unwrap();
        assert_eq!(stats.stats().plans_built, 0);
        assert_eq!(stats.stats().plan_reuses, 0);
    }

    #[test]
    fn session_rejects_empty_requests() {
        let net = local_net();
        let engine = Engine::builder().model_ref(&net).build().unwrap();
        assert!(engine.session().infer(SrRequest::batch(vec![])).is_err());
    }

    #[test]
    fn fixed_tiling_matches_full_image_on_local_network() {
        let net = local_net();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let session = engine.session();
        let img = probe_image(16, 16, 5);
        let full = session.super_resolve(&img).unwrap();
        let tiled = session
            .infer(
                SrRequest::single(img.clone())
                    .tile_policy(TilePolicy::Fixed(TileSpec::new(12, 8).unwrap())),
            )
            .unwrap();
        assert_eq!(tiled.stats().tiled, 1);
        let tiled = &tiled.images()[0];
        assert_eq!((tiled.height(), tiled.width()), (32, 32));
        for (a, b) in tiled.tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn auto_policy_tiles_only_the_oversized_image_of_a_request() {
        let net = local_net();
        let engine = Engine::builder()
            .model_ref(&net)
            .precision(Precision::Training)
            .tile_policy(TilePolicy::Auto { max_side: 12, overlap: 7 })
            .build()
            .unwrap();
        let session = engine.session();
        let small = probe_image(8, 8, 6);
        let big = probe_image(16, 16, 7);
        let response =
            session.infer(SrRequest::batch(vec![small.clone(), big.clone()])).unwrap();
        assert_eq!(response.stats().tiled, 1);
        assert_eq!(response.stats().batches, 1);
        // The tiled result still matches the full-image forward (overlap 7
        // covers the receptive radius of the local-only net).
        let full = net.super_resolve(&big).unwrap();
        for (a, b) in response.images()[1].tensor().data().iter().zip(full.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        let small_full = net.super_resolve(&small).unwrap();
        assert_eq!(response.images()[0].tensor().data(), small_full.tensor().data());
    }

    #[test]
    fn deployed_precision_auto_lowers_and_matches_training() {
        let net = local_net();
        let training =
            Engine::builder().model_ref(&net).precision(Precision::Training).build().unwrap();
        let deployed =
            Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
        assert_eq!(deployed.precision(), Precision::Deployed);
        assert!(deployed.fallback().is_none());
        assert!(deployed.lowered().is_some());
        let img = probe_image(10, 10, 8);
        let a = training.session().super_resolve(&img).unwrap();
        let b = deployed.session().super_resolve(&img).unwrap();
        for (x, y) in a.tensor().data().iter().zip(b.tensor().data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn unsupported_architecture_falls_back_with_a_report() {
        let net = scales_models::swinir(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::FullPrecision,
            seed: 9,
        })
        .unwrap();
        let engine =
            Engine::builder().model_ref(&net).precision(Precision::Deployed).build().unwrap();
        assert_eq!(engine.requested_precision(), Precision::Deployed);
        assert_eq!(engine.precision(), Precision::Training, "degraded to training");
        let fallback = engine.fallback().expect("fallback must be reported");
        assert!(!fallback.reason().is_empty());
        assert!(fallback.to_string().contains("training path"));
    }

    #[test]
    fn engine_serves_a_pre_lowered_network() {
        let net = local_net();
        let lowered = net.lower().unwrap();
        let engine = Engine::builder().model(lowered).build().unwrap();
        assert_eq!(engine.precision(), Precision::Deployed);
        assert!(engine.fallback().is_none());
        let img = probe_image(8, 8, 10);
        let direct = net.lower().unwrap().super_resolve(&img).unwrap();
        let served = engine.session().super_resolve(&img).unwrap();
        assert_eq!(served.tensor().data(), direct.tensor().data());
    }

    #[test]
    fn training_precision_on_a_deployed_model_is_an_error() {
        let lowered = local_net().lower().unwrap();
        // A lowered graph has no training path; asking for one must fail
        // loudly rather than silently serving deployed numerics.
        assert!(Engine::builder()
            .model(lowered)
            .precision(Precision::Training)
            .build()
            .is_err());
    }

    #[test]
    fn per_engine_backends_agree_and_do_not_touch_process_state() {
        let net = local_net();
        let before = backend::active();
        let img = probe_image(9, 9, 11);
        let mut outputs = Vec::new();
        for be in [Backend::Scalar, Backend::Parallel] {
            let engine = Engine::builder()
                .model_ref(&net)
                .precision(Precision::Deployed)
                .backend(be)
                .build()
                .unwrap();
            assert_eq!(engine.backend(), be);
            outputs.push(engine.session().super_resolve(&img).unwrap());
        }
        assert_eq!(
            outputs[0].tensor().data(),
            outputs[1].tensor().data(),
            "kernels are bit-identical"
        );
        assert_eq!(backend::active(), before, "engines must not mutate global selection");
    }

    #[test]
    fn builder_without_a_model_errors() {
        assert!(Engine::builder().build().is_err());
    }

    #[test]
    fn invalid_tile_policies_are_rejected_at_build_and_per_request() {
        let net = local_net();
        assert!(Engine::builder()
            .model_ref(&net)
            .tile_policy(TilePolicy::Auto { max_side: 4, overlap: 4 })
            .build()
            .is_err());
        let engine = Engine::builder().model_ref(&net).build().unwrap();
        let bad = SrRequest::single(probe_image(8, 8, 12))
            .tile_policy(TilePolicy::Fixed(TileSpec { tile: 0, overlap: 0 }));
        assert!(engine.session().infer(bad).is_err());
    }
}
