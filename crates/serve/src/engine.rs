//! [`Engine`]: the resolved serving configuration — model, precision,
//! backend handle, tile policy — built once and shared by its
//! [`Session`](crate::Session)s.

use crate::tile::TilePolicy;
use scales_core::DeployFallback;
use scales_models::{DeployedNetwork, InferModel};
use scales_tensor::backend::{self, Backend};
use scales_tensor::{Result, Tensor, TensorError};
use std::path::PathBuf;

/// Which forward path an engine serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// The autograd training path — exact reference semantics, builds a
    /// tape per forward.
    Training,
    /// The packed deployment graph — tape-free, bit-packed binary body
    /// convolutions. Auto-lowered at engine build; architectures without
    /// a lowering fall back to `Training` with a reported
    /// [`DeployFallback`].
    Deployed,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Training => "training",
            Precision::Deployed => "deployed",
        })
    }
}

/// Borrow adapter: lets an engine serve a model it does not own.
struct ByRef<'a, M: InferModel + ?Sized>(&'a M);

impl<M: InferModel + ?Sized> InferModel for ByRef<'_, M> {
    fn scale(&self) -> usize {
        self.0.scale()
    }
    fn forward_infer(&self, batch: &Tensor) -> Result<Tensor> {
        self.0.forward_infer(batch)
    }
    fn try_lower(&self) -> Result<DeployedNetwork> {
        self.0.try_lower()
    }
    fn is_deployed(&self) -> bool {
        self.0.is_deployed()
    }
    fn as_deployed(&self) -> Option<&DeployedNetwork> {
        self.0.as_deployed()
    }
}

/// Configures an [`Engine`]. Obtained from [`Engine::builder`].
pub struct EngineBuilder<'m> {
    model: Option<Box<dyn InferModel + 'm>>,
    model_path: Option<PathBuf>,
    precision: Precision,
    backend: Option<Backend>,
    tile: TilePolicy,
}

impl<'m> EngineBuilder<'m> {
    fn new() -> Self {
        Self {
            model: None,
            model_path: None,
            precision: Precision::Deployed,
            backend: None,
            tile: TilePolicy::Off,
        }
    }

    /// Serve an owned model — any [`SrNetwork`](scales_models::SrNetwork)
    /// (including `Box<dyn SrNetwork>`) or a [`DeployedNetwork`].
    #[must_use]
    pub fn model(mut self, model: impl InferModel + 'm) -> Self {
        self.model = Some(Box::new(model));
        self
    }

    /// Serve a borrowed model; the engine lives at most as long as the
    /// borrow. This is what the legacy free-function wrappers use.
    #[must_use]
    pub fn model_ref<M: InferModel + ?Sized>(mut self, model: &'m M) -> Self {
        self.model = Some(Box::new(ByRef(model)));
        self
    }

    /// Serve a model straight from a `scales-io` artifact file. At
    /// [`EngineBuilder::build`] the header is sniffed and either form
    /// loads: a **checkpoint** rebuilds the training network through the
    /// architecture registry (usable at both precisions, with `Deployed`
    /// auto-lowering as usual), a **deployed artifact** reassembles the
    /// packed graph as-is (already deployed; requesting
    /// [`Precision::Training`] on it is the usual build error). Loaded
    /// models serve outputs bit-identical to the model that was saved.
    ///
    /// Load failures surface at [`EngineBuilder::build`] as this crate's
    /// `TensorError`, with the underlying typed `scales_io::Error` in the
    /// message; callers that need to branch on the exact failure (missing
    /// file vs corrupt artifact, say) should load through `scales_io`
    /// directly and pass the model in via [`EngineBuilder::model`].
    #[must_use]
    pub fn model_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.model_path = Some(path.into());
        self
    }

    /// Requested forward path (default: [`Precision::Deployed`], the fast
    /// serving path, with automatic fallback).
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Compute backend for every forward this engine runs, held by value
    /// and installed thread-scoped per request — independent engines never
    /// contend on process state. Defaults to the process-wide selection
    /// ([`backend::active`]) captured once at build.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Engine-default tiling decision (default: [`TilePolicy::Off`]);
    /// individual requests can override it.
    #[must_use]
    pub fn tile_policy(mut self, policy: TilePolicy) -> Self {
        self.tile = policy;
        self
    }

    /// Resolve the configuration into a ready engine.
    ///
    /// With [`Precision::Deployed`] this is where auto-lowering runs (and
    /// where its one-time packing cost is paid); a model without a
    /// lowering degrades to the training path and the reason is kept on
    /// [`Engine::fallback`].
    ///
    /// # Errors
    ///
    /// Returns an error when no model was set (or both a model and a
    /// model path were), when a [`EngineBuilder::model_path`] artifact
    /// fails to load, when the tile policy is geometrically invalid, or
    /// when [`Precision::Training`] is requested for a model that is
    /// already a deployed graph (it has no training path, and silently
    /// substituting the deployed one would hide a numerics difference of
    /// up to `1e-4`).
    pub fn build(self) -> Result<Engine<'m>> {
        // Cheap configuration checks come first: an invalid tile policy
        // must never pay an artifact read/decode (or any other expensive
        // resolution) before being reported.
        self.tile.validate()?;
        let model: Box<dyn InferModel + 'm> = match (self.model, self.model_path) {
            (Some(_), Some(_)) => {
                return Err(TensorError::InvalidArgument(
                    "engine got both a model and a model path; set exactly one".into(),
                ))
            }
            (Some(model), None) => model,
            (None, Some(path)) => {
                let describe = |e: scales_io::Error| {
                    TensorError::InvalidArgument(format!(
                        "loading model artifact {}: {e}",
                        path.display()
                    ))
                };
                // One read of the file: sniff the kind from the in-memory
                // bytes and decode the same buffer.
                let bytes = std::fs::read(&path)
                    .map_err(|e| describe(scales_io::Error::from(e)))?;
                match scales_io::sniff_kind(&bytes).map_err(describe)? {
                    scales_io::ArtifactKind::Checkpoint => {
                        Box::new(scales_io::checkpoint_from_bytes(&bytes).map_err(describe)?)
                    }
                    scales_io::ArtifactKind::Deployed => {
                        Box::new(scales_io::artifact_from_bytes(&bytes).map_err(describe)?)
                    }
                }
            }
            (None, None) => {
                return Err(TensorError::InvalidArgument("engine needs a model".into()))
            }
        };
        let scale = model.scale();
        let (lowered, effective, fallback) = match self.precision {
            Precision::Training if model.is_deployed() => {
                return Err(TensorError::InvalidArgument(
                    "cannot serve a deployed network at training precision: \
                     a lowered graph has no training path"
                        .into(),
                ));
            }
            Precision::Training => (None, Precision::Training, None),
            Precision::Deployed if model.is_deployed() => (None, Precision::Deployed, None),
            Precision::Deployed => match model.try_lower() {
                Ok(net) => (Some(net), Precision::Deployed, None),
                Err(e) => {
                    (None, Precision::Training, Some(DeployFallback::new(e.to_string())))
                }
            },
        };
        Ok(Engine {
            model,
            lowered,
            requested: self.precision,
            effective,
            fallback,
            backend: self.backend.unwrap_or_else(backend::active),
            tile: self.tile,
            scale,
        })
    }
}

/// A resolved serving configuration. Create via [`Engine::builder`], then
/// open a [`Session`](crate::Session) to serve requests.
pub struct Engine<'m> {
    model: Box<dyn InferModel + 'm>,
    /// Present when `Deployed` precision lowered a training model at
    /// build; absent when serving the model directly (training path, or a
    /// model that is already deployed).
    lowered: Option<DeployedNetwork>,
    requested: Precision,
    effective: Precision,
    fallback: Option<DeployFallback>,
    backend: Backend,
    tile: TilePolicy,
    scale: usize,
}

impl<'m> Engine<'m> {
    /// Start configuring an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder<'m> {
        EngineBuilder::new()
    }

    /// Open a session on this engine. Sessions are cheap; open one per
    /// client or per logical stream of requests.
    #[must_use]
    pub fn session(&self) -> crate::Session<'_, 'm> {
        crate::Session::over(self)
    }

    /// Upscaling factor of the served model.
    #[must_use]
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The backend handle every forward of this engine runs under.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The precision actually served (after any deployment fallback).
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.effective
    }

    /// The precision the builder asked for.
    #[must_use]
    pub fn requested_precision(&self) -> Precision {
        self.requested
    }

    /// Why a `Deployed` request degraded to the training path, if it did.
    #[must_use]
    pub fn fallback(&self) -> Option<&DeployFallback> {
        self.fallback.as_ref()
    }

    /// The engine-default tile policy.
    #[must_use]
    pub fn tile_policy(&self) -> TilePolicy {
        self.tile
    }

    /// The deployment graph this engine lowered at build, when it did.
    #[must_use]
    pub fn lowered(&self) -> Option<&DeployedNetwork> {
        self.lowered.as_ref()
    }

    /// One forward through whichever path this engine resolved to. A
    /// deployed graph — auto-lowered at build or passed in pre-lowered —
    /// runs through the planned zero-allocation executor against the
    /// caller's [`Workspace`] (bit-identical to the allocating forward);
    /// the training path ignores the workspace. Callers are responsible
    /// for running under [`Engine::backend`]; sessions do.
    pub(crate) fn forward_with(
        &self,
        batch: &Tensor,
        ws: &mut scales_models::Workspace,
    ) -> Result<Tensor> {
        if let Some(net) = self.lowered.as_ref().or_else(|| self.model.as_deployed()) {
            net.forward_planned(batch, ws)
        } else {
            self.model.forward_infer(batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time contract of the concurrent serving stack: `&Engine`
    /// must be `Send` (equivalently `Engine: Sync`) so one engine can be
    /// shared by every `scales-runtime` worker, and a `Session` must be
    /// `Send` so each worker thread can own one. Sessions are deliberately
    /// *not* `Sync` — they carry interior-mutable per-stream state (serving
    /// counters and the planned executor's workspace), which is exactly why
    /// the worker pool gives each thread its own session instead of sharing
    /// one.
    #[test]
    fn engine_is_shareable_and_sessions_are_movable() {
        fn assert_send<T: Send + ?Sized>() {}
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_send::<Engine<'static>>();
        assert_sync::<Engine<'static>>();
        assert_send::<&Engine<'static>>();
        assert_send::<crate::Session<'static, 'static>>();
    }

    /// An invalid tile policy must be reported before the artifact file is
    /// even opened: the path below does not exist, so reaching the loader
    /// would surface an I/O error instead of the tile error we require.
    #[test]
    fn invalid_tile_policy_errors_before_artifact_io() {
        let dir = std::env::temp_dir()
            .join(format!("scales-engine-no-io-{}", std::process::id()));
        let missing = dir.join("definitely-not-created.sca");
        assert!(!missing.exists(), "precondition: the artifact path must not exist");
        let built = Engine::builder()
            .model_path(&missing)
            .tile_policy(TilePolicy::Auto { max_side: 4, overlap: 4 })
            .build();
        let Err(err) = built else {
            panic!("an invalid tile policy must fail the build")
        };
        let text = err.to_string();
        assert!(text.contains("overlap"), "tile validation must win: {text}");
        assert!(
            !text.contains("artifact"),
            "the loader must not have run for an invalid tile policy: {text}"
        );
    }
}
