//! # scales-serve
//!
//! The serving layer of the SCALES reproduction: one request-oriented API
//! over every inference axis the workspace grew — training vs deployed
//! precision, single images vs batches, full-image vs tiled forwards, and
//! scalar vs parallel compute backends.
//!
//! The shape is the classic serving-engine triple:
//!
//! 1. [`Engine::builder()`] configures a model (anything implementing the
//!    object-safe [`InferModel`] — every `SrNetwork`, or a pre-lowered
//!    [`DeployedNetwork`](scales_models::DeployedNetwork)), a [`Precision`], a per-engine
//!    [`Backend`](scales_tensor::Backend) handle, and a [`TilePolicy`].
//! 2. [`EngineBuilder::build`] resolves the configuration once:
//!    `Precision::Deployed` auto-lowers the model to the packed binary
//!    graph, falling back to the training path — with a reported
//!    [`DeployFallback`](scales_core::DeployFallback) — for architectures
//!    without a lowering (the transformer family).
//! 3. [`Session::infer`] serves [`SrRequest`]s: images are split into
//!    tiled and batchable work by the tile policy (per-request
//!    overridable), batchable images are micro-batched by shape bucket so
//!    same-sized images share one forward, and everything runs under the
//!    engine's backend handle via
//!    [`scales_tensor::backend::with_thread_backend`] — no process-global
//!    backend state is read or written on this path.
//!
//! Outputs are bit-identical to the legacy free functions in
//! `scales_train::infer` (now deprecated wrappers over this engine); the
//! parity is enforced by `tests/deploy.rs` across the whole method
//! registry.
//!
//! ```
//! use scales_serve::{Engine, Precision, SrRequest, TilePolicy};
//! use scales_models::{srresnet, SrConfig};
//! use scales_core::Method;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let engine = Engine::builder()
//!     .model(net)                      // auto-lowered to the packed graph
//!     .precision(Precision::Deployed)
//!     .tile_policy(TilePolicy::auto()) // large inputs tile transparently
//!     .build()?;
//! let session = engine.session();
//! let lr = scales_data::Image::zeros(8, 8);
//! let response = session.infer(SrRequest::batch(vec![lr.clone(), lr]))?;
//! assert_eq!(response.images()[0].height(), 16);
//! # Ok(())
//! # }
//! ```

mod engine;
mod request;
mod session;
mod tile;

pub use engine::{Engine, EngineBuilder, Precision};
pub use request::{InferStats, SrRequest, SrResponse};
pub use session::Session;
pub use tile::{TilePolicy, TileSpec};

// The model handle the engine is generic over, re-exported so `use
// scales_serve::*` is self-contained.
pub use scales_models::InferModel;
