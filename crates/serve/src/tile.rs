//! Tile geometry ([`TileSpec`]) and the engine-level tiling decision
//! ([`TilePolicy`]).
//!
//! ## Tiling equivalence
//!
//! Tiled serving reproduces the full-image output **exactly** when (a) the
//! overlap is at least the network's total receptive-field radius (sum of
//! conv radii along the deepest path, plus 2 for the bicubic skip kernel)
//! and (b) the network contains no whole-image operators. Global operators
//! — the SCALES channel-rescale GAP, BTM's per-image threshold, E2FIF's
//! batch-stats BN — see per-tile statistics instead, which is the standard
//! trade-off of tiled SR serving; the local-only configurations (FP, BAM,
//! `ScalesComponents::lsf_spatial()`) stitch bit-exactly.

use scales_tensor::{Result, TensorError};

/// Tile geometry for tiled serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// Tile side length in LR pixels (the stride of the tiling).
    pub tile: usize,
    /// Context border around each tile, in LR pixels. Must cover the
    /// network's receptive-field radius for exact stitching.
    pub overlap: usize,
}

impl TileSpec {
    /// Build a spec, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero tile, and for an overlap that is not
    /// smaller than the tile (such a split re-forwards every pixel more
    /// than twice per axis and signals a transposed argument order).
    pub fn new(tile: usize, overlap: usize) -> Result<Self> {
        if tile == 0 {
            return Err(TensorError::InvalidArgument("tile size must be positive".into()));
        }
        if overlap >= tile {
            return Err(TensorError::InvalidArgument(format!(
                "tile overlap ({overlap}) must be smaller than the tile ({tile})"
            )));
        }
        Ok(Self { tile, overlap })
    }

    /// Re-validate a spec (fields are public, so a struct literal can
    /// bypass [`TileSpec::new`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TileSpec::new`].
    pub fn validate(self) -> Result<()> {
        Self::new(self.tile, self.overlap).map(|_| ())
    }
}

/// When the engine splits an image into tiles instead of forwarding it
/// whole. Set per engine at build time; overridable per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TilePolicy {
    /// Never tile: every image runs in one forward (and joins a shape
    /// bucket for micro-batching).
    #[default]
    Off,
    /// Tile every image with this geometry.
    Fixed(TileSpec),
    /// Tile by input size: images whose longer LR side exceeds `max_side`
    /// are split into `max_side`-pixel tiles with `overlap` context;
    /// smaller images run whole.
    Auto {
        /// Longest LR side served in a single forward (also the tile size).
        max_side: usize,
        /// Context border in LR pixels, as in [`TileSpec::overlap`].
        overlap: usize,
    },
}

impl TilePolicy {
    /// The default size-adaptive policy: tile above 64 px with 8 px of
    /// context — enough overlap for exact stitching on every CNN in the
    /// zoo's lite profiles.
    #[must_use]
    pub fn auto() -> Self {
        TilePolicy::Auto { max_side: 64, overlap: 8 }
    }

    /// The tile geometry to use for an `h × w` LR image, or `None` to
    /// forward it whole.
    #[must_use]
    pub fn spec_for(&self, height: usize, width: usize) -> Option<TileSpec> {
        match *self {
            TilePolicy::Off => None,
            TilePolicy::Fixed(spec) => Some(spec),
            TilePolicy::Auto { max_side, overlap } => {
                (height.max(width) > max_side).then_some(TileSpec { tile: max_side, overlap })
            }
        }
    }

    /// Validate the policy's geometry.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid tile geometry (see [`TileSpec::new`]).
    pub fn validate(&self) -> Result<()> {
        match *self {
            TilePolicy::Off => Ok(()),
            TilePolicy::Fixed(spec) => spec.validate(),
            TilePolicy::Auto { max_side, overlap } => TileSpec::new(max_side, overlap).map(|_| ()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_spec_rejects_zero_tile() {
        assert!(TileSpec::new(0, 0).is_err());
        assert!(TileSpec::new(0, 2).is_err());
    }

    #[test]
    fn tile_spec_rejects_overlap_not_smaller_than_tile() {
        // Boundary: overlap == tile is invalid, overlap == tile - 1 is the
        // largest valid context.
        assert!(TileSpec::new(8, 8).is_err());
        assert!(TileSpec::new(8, 9).is_err());
        assert!(TileSpec::new(8, 7).is_ok());
        assert!(TileSpec::new(1, 0).is_ok());
        assert!(TileSpec::new(8, 0).is_ok());
    }

    #[test]
    fn auto_policy_tiles_only_oversized_images() {
        let policy = TilePolicy::Auto { max_side: 16, overlap: 4 };
        assert_eq!(policy.spec_for(16, 16), None);
        assert_eq!(policy.spec_for(8, 12), None);
        assert_eq!(policy.spec_for(17, 8), Some(TileSpec { tile: 16, overlap: 4 }));
        assert_eq!(policy.spec_for(8, 40), Some(TileSpec { tile: 16, overlap: 4 }));
    }

    #[test]
    fn policy_validation_covers_every_variant() {
        assert!(TilePolicy::Off.validate().is_ok());
        assert!(TilePolicy::auto().validate().is_ok());
        assert!(TilePolicy::Fixed(TileSpec { tile: 4, overlap: 9 }).validate().is_err());
        assert!(TilePolicy::Auto { max_side: 0, overlap: 0 }.validate().is_err());
        assert!(TilePolicy::Auto { max_side: 8, overlap: 8 }.validate().is_err());
    }
}
