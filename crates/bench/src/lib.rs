//! # scales-bench
//!
//! Shared plumbing for the benchmark harnesses that regenerate every table
//! and figure of the SCALES paper. Each `benches/*.rs` target is a
//! standalone binary (`harness = false`) that prints the paper-style table
//! and drops artefacts in `target/scales-report/`.

use scales_autograd::Var;
use scales_data::synth::{scene, SceneConfig};
use scales_metrics::ActivationRecord;
use scales_models::Recorder;
use scales_nn::init::rng;
use scales_tensor::{Result, Tensor};

/// Deterministic probe images (`[1, 3, size, size]` tensors) shared by the
/// motivation-study benches.
#[must_use]
pub fn probe_images(n: usize, size: usize) -> Vec<Tensor> {
    let mut r = rng(0xF16);
    (0..n)
        .map(|_| {
            scene(size, size, SceneConfig { layers: 4, structure_bias: 0.6 }, &mut r)
                .into_tensor()
                .reshape(&[1, 3, size, size])
                .expect("volume preserved")
        })
        .collect()
}

/// Run a recording forward over the probe set and collect
/// [`ActivationRecord`]s, keeping only activations whose rank matches
/// `want_rank` (3 for CHW conv inputs, 2 for token inputs).
///
/// # Errors
///
/// Propagates forward errors.
pub fn collect_records(
    images: &[Tensor],
    want_rank: usize,
    mut forward: impl FnMut(&Var, &mut Recorder) -> Result<()>,
) -> Result<Vec<ActivationRecord>> {
    let mut out = Vec::new();
    for (i, img) in images.iter().enumerate() {
        let mut rec = Recorder::new();
        forward(&Var::new(img.clone()), &mut rec)?;
        for (l, t) in rec.into_records().into_iter().enumerate() {
            if t.rank() == want_rank {
                out.push(ActivationRecord { layer: l, image: i, activation: t });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_images_are_deterministic() {
        assert_eq!(probe_images(2, 8), probe_images(2, 8));
    }

    #[test]
    fn collect_filters_by_rank() {
        let images = probe_images(1, 8);
        let records = collect_records(&images, 3, |x, rec| {
            rec.record(x)?; // [1,3,8,8] -> [3,8,8] rank 3, kept
            rec.record(&x.reshape(&[1, 3, 64])?)?; // rank 2 after squeeze, dropped
            Ok(())
        })
        .unwrap();
        assert_eq!(records.len(), 1);
    }
}
