//! Regenerates **Table VI** — inference latency. The paper deploys with
//! Larq on a Snapdragon 870 phone; this harness measures the same four
//! configurations on the host CPU with the crate's own kernels:
//!
//! * FP SRResNet body conv (64 channels, f32 im2col GEMM)
//! * E2FIF body conv (binary XNOR kernel, 64 channels, plus BN cost)
//! * SCALES body conv, chl = 64 (binary kernel + FP re-scaling branches)
//! * SCALES body conv, chl = 40 (the paper's speed point)
//!
//! Expected shape: binary ≫ FP; SCALES(40) faster than E2FIF(64); the
//! re-scaling branches cost little next to the conv. Absolute times differ
//! from the phone, ratios are the reproduction target.
//!
//! Uses Criterion for the measurements.
//!
//! ```sh
//! cargo bench --bench table6_latency
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use scales_binary::BinaryConv2d;
use scales_nn::init::{kaiming_normal, rng};
use scales_tensor::ops::{conv2d, global_avg_pool, Conv2dSpec};
use scales_tensor::Tensor;
use std::time::Duration;

const H: usize = 32;
const W: usize = 32;

fn body_input(c: usize) -> Tensor {
    let mut r = rng(99);
    kaiming_normal(&[1, c, H, W], 1, &mut r)
}

/// The FP re-scaling branch work SCALES adds per conv: 1×1 conv to one
/// channel + sigmoid + multiply, and GAP + conv1d(k=5) + sigmoid + multiply.
fn rescale_branches(input: &Tensor, spatial_w: &Tensor, chl_w: &Tensor, out: &mut Tensor) {
    let smap = conv2d(input, spatial_w, Conv2dSpec { stride: 1, padding: 0 })
        .expect("1x1 conv")
        .map(scales_tensor::ops::sigmoid);
    let pooled = global_avg_pool(input).expect("gap");
    let c = pooled.len();
    let tokens = pooled.reshape(&[1, 1, c]).expect("reshape");
    let mixed = scales_tensor::ops::conv1d(&tokens, chl_w, 2)
        .expect("conv1d")
        .map(scales_tensor::ops::sigmoid);
    let (h, w) = (out.shape()[2], out.shape()[3]);
    for ci in 0..c {
        let g = mixed.data()[ci];
        for p in 0..h * w {
            let idx = ci * h * w + p;
            out.data_mut()[idx] *= g * smap.data()[p];
        }
    }
}

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_latency");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500)).sample_size(20);
    let mut r = rng(7);

    // FP SRResNet conv, 64 channels.
    let w64 = kaiming_normal(&[64, 64, 3, 3], 64 * 9, &mut r);
    let x64 = body_input(64);
    group.bench_function("fp_srresnet_conv64", |b| {
        b.iter(|| conv2d(std::hint::black_box(&x64), &w64, Conv2dSpec::same(3)).expect("conv"));
    });

    // E2FIF binary conv, 64 channels (binary conv + BN-ish per-element op).
    let bin64 = BinaryConv2d::from_float_weight(&w64).expect("pack");
    group.bench_function("e2fif_binconv64", |b| {
        b.iter(|| {
            let mut y = bin64.forward(std::hint::black_box(&x64)).expect("binconv");
            y.map_inplace(|v| v * 1.01 + 0.001); // BN scale+shift
            y
        });
    });

    // SCALES binary conv, chl = 64.
    let spatial64 = kaiming_normal(&[1, 64, 1, 1], 64, &mut r);
    let chl_k = kaiming_normal(&[1, 1, 5], 5, &mut r);
    group.bench_function("scales_binconv64", |b| {
        b.iter(|| {
            let mut y = bin64.forward(std::hint::black_box(&x64)).expect("binconv");
            rescale_branches(&x64, &spatial64, &chl_k, &mut y);
            y
        });
    });

    // SCALES binary conv, chl = 40 (the paper's fast configuration).
    let w40 = kaiming_normal(&[40, 40, 3, 3], 40 * 9, &mut r);
    let x40 = body_input(40);
    let bin40 = BinaryConv2d::from_float_weight(&w40).expect("pack");
    let spatial40 = kaiming_normal(&[1, 40, 1, 1], 40, &mut r);
    group.bench_function("scales_binconv40", |b| {
        b.iter(|| {
            let mut y = bin40.forward(std::hint::black_box(&x40)).expect("binconv");
            rescale_branches(&x40, &spatial40, &chl_k, &mut y);
            y
        });
    });
    group.finish();

    // Paper reference rows for the report.
    println!("\npaper Table VI reference (Redmi K40S, Snapdragon 870, Larq):");
    println!("  FP SRResNet 1649 ms | E2FIF 197 ms | SCALES(64) 237 ms | SCALES(40) 166 ms");
    println!("expected shape here: fp_srresnet_conv64 >> binary rows; scales_binconv40 < e2fif_binconv64");
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
