//! Fleet routing benchmark: what does the `scales-router` layer cost on
//! top of a bare runtime, and how long does a zero-downtime hot-swap
//! take while clients are on the route?
//!
//! Three measurements:
//!
//! 1. **baseline** — `Runtime::submit_wait_timeout` straight into a
//!    worker pool, per-request client latency;
//! 2. **routed** — the same requests through
//!    `ModelRouter::submit_wait_timeout` by name (the name lookup, entry
//!    lock, and version `Arc` clone are the router tax);
//! 3. **hot-swap** — repeated `reload` calls while client threads hammer
//!    the model; every client request through every swap must be served
//!    (the zero-drop guarantee is asserted, not assumed), and the
//!    reload's own wall time — load + swap + drain — is reported.
//!
//! The run ends with one machine-readable line — `BENCH_router {...}` —
//! so CI logs give a per-commit trajectory for the fleet layer.
//!
//! ```sh
//! cargo bench --bench router            # full request count
//! SCALES_BENCH_SMOKE=1 cargo bench --bench router
//! ```

use scales_core::Method;
use scales_models::{srresnet, SrConfig, SrNetwork};
use scales_router::{ModelRouter, RouterConfig};
use scales_runtime::{Runtime, RuntimeConfig};
use scales_serve::{Engine, SrRequest};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);

fn scene(h: usize, w: usize, seed: u64) -> scales_data::Image {
    scales_data::synth::scene(
        h,
        w,
        scales_data::synth::SceneConfig::default(),
        &mut scales_nn::init::rng(seed),
    )
}

fn net(seed: u64) -> impl SrNetwork {
    srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed })
        .expect("srresnet config is valid")
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        workers: std::thread::available_parallelism().map_or(1, usize::from),
        queue_capacity: 64,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        ..RuntimeConfig::default()
    }
}

fn quantiles(latencies: &mut [Duration]) -> (Duration, Duration) {
    latencies.sort();
    let q = |f: f64| latencies[((latencies.len() - 1) as f64 * f).round() as usize];
    (q(0.50), q(0.99))
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let requests: usize = if smoke { 24 } else { 192 };
    let swaps: usize = if smoke { 3 } else { 12 };
    let side = 16usize;
    let probe = scene(side, side, 7);

    println!(
        "fleet routing: {requests} {side}x{side} requests direct vs routed, then {swaps} \
         hot-swaps under client load"
    );

    // 1. Baseline: the bare runtime.
    let engine = Engine::builder().model(net(1)).build().unwrap();
    let runtime = Runtime::spawn(engine, runtime_config()).unwrap();
    let mut direct: Vec<Duration> = Vec::with_capacity(requests);
    for _ in 0..requests {
        let sent = Instant::now();
        runtime
            .submit_wait_timeout(SrRequest::single(probe.clone()), TIMEOUT)
            .expect("runtime accepts")
            .expect("runtime serves");
        direct.push(sent.elapsed());
    }
    let direct_stats = runtime.shutdown();
    assert_eq!(direct_stats.failed, 0);
    let (direct_p50, direct_p99) = quantiles(&mut direct);
    println!("  direct  p50 {direct_p50:.2?}, p99 {direct_p99:.2?}");

    // 2. Routed: the same traffic through the fleet layer by name. The
    //    model is path-backed so the same registration also feeds the
    //    hot-swap phase.
    let dir = std::env::temp_dir().join(format!("scales-router-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("m.dep.sca");
    scales_io::save_artifact(&artifact, &net(1).lower().unwrap()).unwrap();
    let router =
        ModelRouter::new(RouterConfig { memory_budget: None, runtime: runtime_config(), ..RouterConfig::default() }).unwrap();
    router.register_path("m", &artifact).unwrap();
    let mut routed: Vec<Duration> = Vec::with_capacity(requests);
    for _ in 0..requests {
        let sent = Instant::now();
        router
            .submit_wait_timeout("m", SrRequest::single(probe.clone()), TIMEOUT)
            .expect("router accepts")
            .expect("router serves");
        routed.push(sent.elapsed());
    }
    let (routed_p50, routed_p99) = quantiles(&mut routed);
    let overhead_us = (routed_p50.as_secs_f64() - direct_p50.as_secs_f64()) * 1e6;
    println!("  routed  p50 {routed_p50:.2?}, p99 {routed_p99:.2?} (p50 overhead {overhead_us:+.1} us)");

    // 3. Hot-swap under load: two client threads hammer the route while
    //    the artifact is reloaded `swaps` times. Every submit must be
    //    served — the zero-drop contract is the point of the design.
    let stop = AtomicBool::new(false);
    let (served, mut reloads) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let router = router.clone();
                let probe = probe.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        router
                            .submit_wait_timeout("m", SrRequest::single(probe.clone()), TIMEOUT)
                            .expect("a hot-swap must never refuse a request")
                            .expect("a hot-swap must never fail a request");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let mut reloads: Vec<Duration> = Vec::with_capacity(swaps);
        for _ in 0..swaps {
            std::thread::sleep(Duration::from_millis(30));
            let begun = Instant::now();
            router.reload("m").expect("reload succeeds");
            reloads.push(begun.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
        let served: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
        (served, reloads)
    });
    let (swap_p50, swap_max) =
        (quantiles(&mut reloads).0, *reloads.iter().max().expect("at least one swap"));
    println!(
        "  hot-swap: {swaps} reloads while {served} client requests flowed; \
         reload p50 {swap_p50:.2?}, max {swap_max:.2?}"
    );

    let fleet = router.shutdown();
    let merged = fleet.merged_runtime();
    assert_eq!(merged.failed, 0, "no request may fail through the swaps");
    assert_eq!(merged.rejected, 0, "no request may be rejected through the swaps");
    assert_eq!(
        merged.submitted, merged.completed,
        "every accepted request was served — zero drops across {swaps} swaps"
    );
    let model = &fleet.models[0];
    assert_eq!(model.swaps as usize, swaps, "every reload swapped");
    std::fs::remove_dir_all(&dir).unwrap();

    println!(
        "\nBENCH_router {{\"requests\":{requests},\"swaps\":{swaps},\
         \"direct_p50_ms\":{:.3},\"routed_p50_ms\":{:.3},\"overhead_us\":{overhead_us:.1},\
         \"swap_p50_ms\":{:.2},\"swap_max_ms\":{:.2},\"served_during_swaps\":{served},\
         \"completed\":{},\"failed\":{}}}",
        direct_p50.as_secs_f64() * 1e3,
        routed_p50.as_secs_f64() * 1e3,
        swap_p50.as_secs_f64() * 1e3,
        swap_max.as_secs_f64() * 1e3,
        merged.completed,
        merged.failed,
    );
}
