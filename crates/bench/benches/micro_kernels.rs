//! Hot-kernel micro-benchmarks tracking the serving primitives this
//! workspace's latency story is built on:
//!
//! * the register-blocked float GEMM at the SRResNet serving shapes
//!   (head / body / tail convolutions over a 64×64 LR image, plus the
//!   paper-scale 64-channel body), scalar vs the runtime-detected SIMD
//!   kernel (bit-identical outputs, asserted here);
//! * the XNOR-popcount row-agree primitive (the binary GEMM's interior
//!   inner loop), scalar vs hardware popcount / AVX2;
//! * the bit-packed binary convolution on a 64×64 image, comparing the
//!   allocating `forward` against the scratch-reusing `forward_into`
//!   (interior fast path + no per-call buffers), on scalar and simd
//!   backends.
//!
//! On AVX2 hardware the run **asserts** the issue's speedup floors: SIMD
//! float GEMM ≥ 1.3× scalar on the paper-scale shape, AVX2 popcount row
//! agree ≥ 1.5× the scalar loop. Off-AVX2 the rows are reported without
//! the assertions.
//!
//! The run ends with one machine-readable line —
//! `BENCH_kernels {...}` — so CI logs give a per-commit perf trajectory
//! that scripts can scrape without parsing the human table.
//!
//! ```sh
//! cargo bench --bench micro_kernels           # full reps
//! SCALES_BENCH_SMOKE=1 cargo bench --bench micro_kernels
//! ```

use scales_binary::BinaryConv2d;
use scales_tensor::backend;
use scales_tensor::backend::Backend;
use scales_tensor::workspace::BitScratch;
use scales_tensor::Tensor;
use std::time::Instant;

fn filled(n: usize, seed: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32 + seed) * 0.37).sin()).collect()
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let reps = if smoke { 3 } else { 10 };
    let mut json = Vec::new();

    println!(
        "hot-kernel micro-benchmarks ({} backend, {} reps, best-of)",
        backend::active().name(),
        reps
    );

    let level = Backend::detected();
    println!("  detected CPU simd level: {level}");

    // Float GEMM at the shapes the SRResNet serving path actually runs
    // over a 64×64 LR probe: head 3→16 (k3), body 16→16 (k3), tail
    // 16→12 (k3), and the paper-scale 64-channel body — scalar kernel vs
    // the runtime-dispatched SIMD kernel on identical buffers.
    println!(
        "\n  {:<22} {:>12} {:>12} {:>12} {:>9}",
        "gemm (m,k,n)", "scalar", "GFLOP/s", "simd", "speedup"
    );
    let mut paper_gemm_speedup = 0.0f64;
    for &(label, m, k, n) in &[
        ("head 16x27x4096", 16usize, 27usize, 4096usize),
        ("body 16x144x4096", 16, 144, 4096),
        ("tail 12x144x4096", 12, 144, 4096),
        ("paper 64x576x4096", 64, 576, 4096),
    ] {
        let a = filled(m * k, 1.0);
        let b = filled(k * n, 2.0);
        let mut c = vec![0.0f32; m * n];
        let scalar_kernel = Backend::Scalar.kernel();
        let simd_kernel = Backend::Simd.kernel();
        let t = best_of(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            scalar_kernel.gemm(&a, &b, &mut c, m, k, n);
        });
        let scalar_out = c.clone();
        let ts = best_of(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            simd_kernel.gemm(&a, &b, &mut c, m, k, n);
        });
        // The house contract, checked where it is cheapest to check.
        assert!(
            scalar_out.iter().zip(c.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "simd gemm must be bit-identical to scalar at {label}"
        );
        let gflops = (2.0 * m as f64 * k as f64 * n as f64) / t / 1e9;
        let speedup = t / ts;
        if label.starts_with("paper") {
            paper_gemm_speedup = speedup;
        }
        println!(
            "  {label:<22} {:>9.1} us {gflops:>12.2} {:>9.1} us {speedup:>8.2}x",
            t * 1e6,
            ts * 1e6
        );
        json.push(format!("\"gemm_{m}x{k}x{n}_us\":{:.1}", t * 1e6));
        json.push(format!("\"gemm_simd_{m}x{k}x{n}_us\":{:.1}", ts * 1e6));
    }
    if level.has_avx2() {
        assert!(
            paper_gemm_speedup >= 1.3,
            "AVX2 float GEMM must be >= 1.3x scalar on the paper-scale shape, got {paper_gemm_speedup:.2}x"
        );
    }

    // The XNOR-popcount row-agree primitive — the binary GEMM's interior
    // inner loop — over a 3×3 × 64-channel kernel row repeated across a
    // 64×64 output plane's worth of pixels, scalar vs the detected level.
    {
        let taps = 9usize;
        let pixels = 62 * 62; // interior of a 64×64 same-padded conv
        let wrow: Vec<u64> = (0..taps).map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let prows: Vec<u64> =
            (0..pixels * taps).map(|i| (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)).collect();
        let scalar_fn = scales_binary::count::row_agree_for(scales_tensor::SimdLevel::None);
        let simd_fn = scales_binary::count::row_agree_for(level);
        let mut sink = 0u64;
        let t = best_of(reps, || {
            for p in 0..pixels {
                sink = sink
                    .wrapping_add(u64::from(scalar_fn(&wrow, &prows[p * taps..(p + 1) * taps], 1, u64::MAX)));
            }
        });
        let ts = best_of(reps, || {
            for p in 0..pixels {
                sink = sink
                    .wrapping_add(u64::from(simd_fn(&wrow, &prows[p * taps..(p + 1) * taps], 1, u64::MAX)));
            }
        });
        let speedup = t / ts;
        println!(
            "\n  {:<22} {:>9.1} us {:>12} {:>9.1} us {speedup:>8.2}x  (sink {})",
            "popcount row agree",
            t * 1e6,
            "",
            ts * 1e6,
            sink % 10
        );
        json.push(format!("\"popcount_row_scalar_us\":{:.1}", t * 1e6));
        json.push(format!("\"popcount_row_simd_us\":{:.1}", ts * 1e6));
        if level.has_avx2() {
            assert!(
                speedup >= 1.5,
                "AVX2 popcount row agree must be >= 1.5x the scalar loop, got {speedup:.2}x"
            );
        }
    }

    // Binary convolution over a 64×64 image: allocating forward vs the
    // scratch-reusing forward_into that serving runs, on the scalar and
    // simd backends (the simd rows pick up the hardware-popcount agree
    // loops end to end, im2col and packing included).
    println!(
        "\n  {:<22} {:>12} {:>12} {:>12} {:>9}",
        "binary conv 64x64", "alloc", "scratch", "simd scratch", "speedup"
    );
    for &(label, ch) in &[("16 channels", 16usize), ("64 channels", 64usize)] {
        let weight = Tensor::from_vec(filled(ch * ch * 9, 3.0), &[ch, ch, 3, 3]).unwrap();
        let conv = BinaryConv2d::from_float_weight(&weight).unwrap();
        let input = Tensor::from_vec(filled(ch * 64 * 64, 4.0), &[1, ch, 64, 64]).unwrap();
        let alloc = best_of(reps, || {
            let _ = conv.forward(&input).unwrap();
        });
        let mut scratch = BitScratch::default();
        let mut out = vec![0.0f32; ch * 64 * 64];
        // Warm the scratch so the timed region is the steady state.
        conv.forward_into(input.data(), 1, 64, 64, &mut scratch, &mut out).unwrap();
        let fast = backend::with_backend(Backend::Scalar, || {
            best_of(reps, || {
                conv.forward_into(input.data(), 1, 64, 64, &mut scratch, &mut out).unwrap();
            })
        });
        let scalar_out = out.clone();
        let simd = backend::with_backend(Backend::Simd, || {
            best_of(reps, || {
                conv.forward_into(input.data(), 1, 64, 64, &mut scratch, &mut out).unwrap();
            })
        });
        assert!(
            scalar_out.iter().zip(out.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "simd binary conv must be bit-identical to scalar at {label}"
        );
        println!(
            "  {label:<22} {:>9.1} us {:>9.1} us {:>9.1} us {:>8.2}x",
            alloc * 1e6,
            fast * 1e6,
            simd * 1e6,
            fast / simd
        );
        json.push(format!("\"binconv_{ch}ch_alloc_us\":{:.1}", alloc * 1e6));
        json.push(format!("\"binconv_{ch}ch_scratch_us\":{:.1}", fast * 1e6));
        json.push(format!("\"binconv_{ch}ch_simd_us\":{:.1}", simd * 1e6));
    }

    println!("\nBENCH_kernels {{{}}}", json.join(","));
}
