//! Hot-kernel micro-benchmarks tracking the serving primitives this
//! workspace's latency story is built on:
//!
//! * the register-blocked float GEMM at the SRResNet serving shapes
//!   (head / body / tail convolutions over a 64×64 LR image, plus the
//!   paper-scale 64-channel body);
//! * the bit-packed binary convolution on a 64×64 image, comparing the
//!   allocating `forward` against the scratch-reusing `forward_into`
//!   (interior fast path + no per-call buffers).
//!
//! The run ends with one machine-readable line —
//! `BENCH_kernels {...}` — so CI logs give a per-commit perf trajectory
//! that scripts can scrape without parsing the human table.
//!
//! ```sh
//! cargo bench --bench micro_kernels           # full reps
//! SCALES_BENCH_SMOKE=1 cargo bench --bench micro_kernels
//! ```

use scales_binary::BinaryConv2d;
use scales_tensor::backend;
use scales_tensor::workspace::BitScratch;
use scales_tensor::Tensor;
use std::time::Instant;

fn filled(n: usize, seed: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32 + seed) * 0.37).sin()).collect()
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let reps = if smoke { 3 } else { 10 };
    let mut json = Vec::new();

    println!(
        "hot-kernel micro-benchmarks ({} backend, {} reps, best-of)",
        backend::active().name(),
        reps
    );

    // Float GEMM at the shapes the SRResNet serving path actually runs
    // over a 64×64 LR probe: head 3→16 (k3), body 16→16 (k3), tail
    // 16→12 (k3), and the paper-scale 64-channel body.
    println!("\n  {:<22} {:>12} {:>12}", "gemm (m,k,n)", "time", "GFLOP/s");
    for &(label, m, k, n) in &[
        ("head 16x27x4096", 16usize, 27usize, 4096usize),
        ("body 16x144x4096", 16, 144, 4096),
        ("tail 12x144x4096", 12, 144, 4096),
        ("paper 64x576x4096", 64, 576, 4096),
    ] {
        let a = filled(m * k, 1.0);
        let b = filled(k * n, 2.0);
        let mut c = vec![0.0f32; m * n];
        let t = best_of(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            backend::kernel().gemm(&a, &b, &mut c, m, k, n);
        });
        let gflops = (2.0 * m as f64 * k as f64 * n as f64) / t / 1e9;
        println!("  {label:<22} {:>9.1} us {gflops:>12.2}", t * 1e6);
        json.push(format!("\"gemm_{m}x{k}x{n}_us\":{:.1}", t * 1e6));
    }

    // Binary convolution over a 64×64 image: allocating forward vs the
    // scratch-reusing forward_into that serving runs.
    println!("\n  {:<22} {:>12} {:>12} {:>9}", "binary conv 64x64", "alloc", "scratch", "speedup");
    for &(label, ch) in &[("16 channels", 16usize), ("64 channels", 64usize)] {
        let weight = Tensor::from_vec(filled(ch * ch * 9, 3.0), &[ch, ch, 3, 3]).unwrap();
        let conv = BinaryConv2d::from_float_weight(&weight).unwrap();
        let input = Tensor::from_vec(filled(ch * 64 * 64, 4.0), &[1, ch, 64, 64]).unwrap();
        let alloc = best_of(reps, || {
            let _ = conv.forward(&input).unwrap();
        });
        let mut scratch = BitScratch::default();
        let mut out = vec![0.0f32; ch * 64 * 64];
        // Warm the scratch so the timed region is the steady state.
        conv.forward_into(input.data(), 1, 64, 64, &mut scratch, &mut out).unwrap();
        let fast = best_of(reps, || {
            conv.forward_into(input.data(), 1, 64, 64, &mut scratch, &mut out).unwrap();
        });
        println!(
            "  {label:<22} {:>9.1} us {:>9.1} us {:>8.2}x",
            alloc * 1e6,
            fast * 1e6,
            alloc / fast
        );
        json.push(format!("\"binconv_{ch}ch_alloc_us\":{:.1}", alloc * 1e6));
        json.push(format!("\"binconv_{ch}ch_scratch_us\":{:.1}", fast * 1e6));
    }

    println!("\nBENCH_kernels {{{}}}", json.join(","));
}
