//! Extra design-choice ablations called out in DESIGN.md (beyond the
//! paper's Table V):
//!
//! 1. Channel re-scaling Conv1d kernel size k ∈ {3, 5, 7} — the paper picks
//!    k = 5 empirically (§IV-C).
//! 2. LSF with vs without the channel-wise threshold β.
//! 3. Identity skip on vs off around the binary conv.
//!
//! Each ablation trains a small SRResNet-SCALES variant under the shared
//! budget and reports SynSet5/SynUrban100 PSNR.
//!
//! ```sh
//! SCALES_BENCH_ITERS=600 cargo bench --bench ablation_extra
//! ```

use scales_autograd::Var;
use scales_core::{ChannelRescale, LsfBinarizer, Method, ScalesComponents};
use scales_data::Benchmark;
use scales_models::{srresnet, SrConfig};
use scales_nn::init::rng;
use scales_nn::Module;
use scales_tensor::Tensor;
use scales_train::{evaluate, train, write_report, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let scale = 2;
    let set5 = Benchmark::SynSet5.build(scale, budget.hr_eval)?;
    let urban = Benchmark::SynUrban100.build(scale, budget.hr_eval)?;
    let mut out = String::from("Extra ablations (SRResNet-SCALES x2)\n\n");

    // --- 1. Conv1d kernel size in the channel re-scaling branch.
    out.push_str("1. channel re-scale Conv1d kernel size\n");
    for k in [3usize, 5, 7] {
        let method = Method::Scales(ScalesComponents { channel_kernel: k, ..ScalesComponents::full() });
        let net = srresnet(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale,
            method,
            seed: 1234,
        })?;
        train(&net, budget.train_config(42))?;
        let s5 = evaluate(&net, &set5)?;
        let ur = evaluate(&net, &urban)?;
        out.push_str(&format!(
            "   k={k}: SynSet5 {:6.2}/{:5.3}  SynUrban100 {:6.2}/{:5.3}\n",
            s5.psnr, s5.ssim, ur.psnr, ur.ssim
        ));
    }

    // --- 2. LSF threshold β: behavioural check (no retraining needed).
    // With β frozen at 0 the binarizer ignores channel shifts; with a
    // per-channel β it re-centres each channel before the sign.
    out.push_str("\n2. LSF channel threshold beta\n");
    let binz = LsfBinarizer::new(2);
    // Channel 0 shifted up by 2: without beta everything saturates to +α.
    let x = Var::new(Tensor::from_vec(
        vec![2.1, 2.3, 2.2, 2.4, -0.1, 0.1, -0.2, 0.2],
        &[1, 2, 2, 2],
    )?);
    let before = binz.forward(&x)?.value();
    let saturated0 = before.data()[..4].iter().all(|&v| v > 0.0);
    binz.beta().set_value(Tensor::from_vec(vec![2.2, 0.0], &[1, 2, 1, 1])?);
    let after = binz.forward(&x)?.value();
    let recentred = after.data()[..4].iter().filter(|&&v| v > 0.0).count();
    out.push_str(&format!(
        "   beta=0: shifted channel saturates to +alpha ({saturated0}); \
         per-channel beta recovers texture ({recentred}/4 positive — mixed signs)\n"
    ));
    assert!(saturated0 && recentred < 4);

    // --- 3. Skip connection on/off.
    out.push_str("\n3. identity skip around the binary conv\n");
    for (label, skip) in [("with skip", true), ("without skip", false)] {
        // Build the conv directly so the skip flag is controllable.
        let mut r = rng(7);
        let conv = scales_core::ScalesConv2d::with_components(
            8,
            8,
            3,
            ScalesComponents::full(),
            skip,
            &mut r,
        );
        let x = Var::new(Tensor::from_vec(
            (0..8 * 16).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[1, 8, 4, 4],
        )?);
        let y = conv.forward(&x)?.value();
        // Correlation with the input is the FP-information-flow signature.
        let xm = x.value();
        let corr: f32 = xm
            .data()
            .iter()
            .zip(y.data().iter())
            .map(|(&a, &b)| a * b)
            .sum::<f32>()
            / (xm.data().iter().map(|v| v * v).sum::<f32>().sqrt()
                * y.data().iter().map(|v| v * v).sum::<f32>().sqrt());
        out.push_str(&format!("   {label}: input-output correlation {corr:+.3}\n"));
    }

    // --- 4. ChannelRescale parameter count vs SE block (paper §IV-C math).
    let cr = {
        let mut r = rng(8);
        ChannelRescale::new(256, &mut r).param_count()
    };
    let se = scales_binary::count::se_block_cost(256, 16, 1, 1).fp_params;
    out.push_str(&format!(
        "\n4. channel re-scale params: Conv1d(k=5) = {cr} vs SE block = {se} ({}x, paper: 1638x)\n",
        se as usize / cr
    ));

    print!("{out}");
    let path = write_report("ablation_extra.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
