//! Overload benchmark: the admission controller under a burst at roughly
//! 2× what the runtime can absorb, from a hot low-weight tenant and a
//! cold weighted tenant, with tight deadlines on half the hot traffic.
//!
//! What this measures is *robustness*, not peak speed: goodput under
//! overload, the shed/quota/queue-full refusal mix, the deadline-miss
//! rate, and the served p99 — and it asserts the overload floors the
//! serving stack promises: every request gets a typed outcome, the
//! arithmetic closes exactly, some work was refused early (the overload
//! was real), deadline-tagged stragglers expired instead of being served
//! late, and the cold tenant was never starved.
//!
//! The run ends with one machine-readable line — `BENCH_overload {...}` —
//! so CI logs give a per-commit overload trajectory.
//!
//! ```sh
//! cargo bench --bench overload            # full burst
//! SCALES_BENCH_SMOKE=1 cargo bench --bench overload
//! ```

use scales_core::Method;
use scales_models::{srresnet, SrConfig};
use scales_runtime::{Runtime, RuntimeConfig, ServeError, ShedPolicy, SubmitError};
use scales_serve::{Engine, Precision, SrRequest};
use std::time::{Duration, Instant};

fn scene(h: usize, w: usize, seed: u64) -> scales_data::Image {
    scales_data::synth::scene(
        h,
        w,
        scales_data::synth::SceneConfig::default(),
        &mut scales_nn::init::rng(seed),
    )
}

/// Typed-outcome tally for one tenant's share of the burst.
#[derive(Default)]
struct Tally {
    attempted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    quota: u64,
    expired: u64,
}

impl Tally {
    fn absorb(&mut self, other: &Tally) {
        self.attempted += other.attempted;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.quota += other.quota;
        self.expired += other.expired;
    }
}

/// Drive `count` requests for one tenant as fast as the door admits
/// them, then resolve every accepted ticket. Every submission ends in
/// exactly one bucket.
fn drive(runtime: &Runtime, tenant: &str, count: u64, deadline: Option<Duration>) -> Tally {
    let mut tally = Tally { attempted: count, ..Tally::default() };
    let mut tickets = Vec::new();
    for i in 0..count {
        let mut request = SrRequest::single(scene(16, 16, 9_000 + i)).tenant(tenant);
        // Every other request carries the tight deadline, so the tenant
        // mixes urgent and patient traffic.
        if let Some(budget) = deadline.filter(|_| i % 2 == 0) {
            request = request.deadline_in(budget);
        }
        match runtime.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::QueueFull { .. }) => tally.rejected += 1,
            Err(SubmitError::Shedding { .. }) => tally.shed += 1,
            Err(SubmitError::TenantQuota { .. }) => tally.quota += 1,
            Err(SubmitError::Expired) => tally.expired += 1,
            Err(other) => panic!("untyped refusal under overload: {other}"),
        }
    }
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => tally.completed += 1,
            Err(ServeError::Rejected(SubmitError::Expired)) => tally.expired += 1,
            Err(other) => panic!("an accepted ticket must serve or expire, got: {other}"),
        }
    }
    tally
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let attempted: u64 = if smoke { 64 } else { 384 };
    // The hot tenant offers 3× the cold tenant's load but weighs 1 to
    // the cold tenant's 3 — fairness must come from the scheduler, not
    // from polite clients.
    let hot_share = attempted * 3 / 4;
    let cold_share = attempted - hot_share;

    let net = srresnet(SrConfig {
        channels: 8,
        blocks: 1,
        scale: 2,
        method: Method::scales(),
        seed: 7,
    })
    .unwrap();
    let engine = Engine::builder().model(net).precision(Precision::Deployed).build().unwrap();
    // Capacity is deliberately small against the burst (~2× overload
    // after the early-refusal valves): a short queue, a shed watermark
    // below it, and a per-tenant quota below that.
    let runtime = Runtime::spawn(
        engine,
        RuntimeConfig {
            workers: 2,
            queue_capacity: 16,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            shed: ShedPolicy { queue_watermark: Some(12), ..ShedPolicy::default() },
            tenant_quota: Some(10),
            tenant_weights: vec![("cold".into(), 3)],
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    println!(
        "overload: {attempted} requests ({hot_share} hot/deadline-mixed + {cold_share} cold) \
         against queue 16, watermark 12, quota 10"
    );

    // Warm the plan caches outside the timed region.
    runtime.submit_wait(SrRequest::single(scene(16, 16, 7))).unwrap().wait().unwrap();

    let start = Instant::now();
    let (hot, cold) = std::thread::scope(|scope| {
        let hot = scope
            .spawn(|| drive(&runtime, "hot", hot_share, Some(Duration::from_millis(5))));
        let cold = scope.spawn(|| drive(&runtime, "cold", cold_share, None));
        (hot.join().expect("hot tenant"), cold.join().expect("cold tenant"))
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut total = Tally::default();
    total.absorb(&hot);
    total.absorb(&cold);
    let stats = runtime.shutdown();

    // The floors. Every request got exactly one typed outcome...
    assert_eq!(
        total.completed + total.rejected + total.shed + total.quota + total.expired,
        attempted,
        "the outcome arithmetic must close"
    );
    // ...and the runtime's own ledger agrees with the callers' tallies.
    assert_eq!(stats.completed, total.completed + 1, "warm-up plus the burst");
    assert_eq!(stats.shed, total.shed);
    assert_eq!(stats.quota_rejected, total.quota);
    assert_eq!(stats.expired, total.expired);
    assert_eq!(stats.failed, 0, "overload must never surface as an inference failure");
    let refused = total.rejected + total.shed + total.quota + total.expired;
    assert!(refused > 0, "the burst must actually overload the runtime");
    assert!(total.expired > 0, "tight deadlines under overload must expire, not serve late");
    assert!(cold.completed > 0, "the weighted cold tenant must not be starved");

    let goodput = total.completed as f64 / wall_secs;
    let shed_rate = (total.shed + total.quota + total.rejected) as f64 / attempted as f64;
    let miss_rate = (total.expired + stats.deadline_misses) as f64 / attempted as f64;
    let p99 = stats.latency.p99();
    println!(
        "  goodput {goodput:>7.1} req/s; refused {refused} ({:.0}% early), expired {}, \
         served p99 {p99:.2?}",
        shed_rate * 1e2,
        total.expired,
    );

    println!(
        "\nBENCH_overload {{\"attempted\":{attempted},\"completed\":{},\"rejected\":{},\
         \"shed\":{},\"quota_rejected\":{},\"expired\":{},\"deadline_misses\":{},\
         \"goodput_rps\":{goodput:.1},\"shed_rate\":{shed_rate:.3},\
         \"deadline_miss_rate\":{miss_rate:.3},\"p99_us\":{}}}",
        total.completed,
        total.rejected,
        total.shed,
        total.quota,
        total.expired,
        stats.deadline_misses,
        p99.as_micros(),
    );
}
