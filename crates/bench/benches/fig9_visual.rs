//! Regenerates **Fig. 9** — qualitative SR comparison panels:
//! (a) SynUrban100 ×4 on the RCAN architecture, (b) SynSet14 ×2 on EDSR,
//! each as an HR | Bicubic | E2FIF | SCALES strip with per-panel PSNR.
//!
//! Expected shape: SCALES closer to HR than E2FIF (sharper stripes, fewer
//! direction errors on the Urban-style gratings).
//!
//! ```sh
//! SCALES_BENCH_ITERS=600 cargo bench --bench fig9_visual
//! ```

use scales_core::Method;
use scales_data::{upscale, Benchmark, Image};
use scales_metrics::psnr_y;
use scales_models::{edsr, rcan, SrConfig, SrNetwork};
use scales_train::{report_dir, train, write_report, Budget};

fn panel(
    arch: &str,
    build: &dyn Fn(SrConfig) -> scales_tensor::Result<Box<dyn SrNetwork>>,
    bench: Benchmark,
    scale: usize,
    budget: &Budget,
    out: &mut String,
) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    let set = bench.build(scale, budget.hr_eval.max(32))?;
    let pair = &set.pairs()[1 % set.len()];
    let mut panels: Vec<(String, Image)> = vec![
        ("HR".into(), pair.hr.clone()),
        ("Bicubic".into(), upscale(&pair.lr, scale)?.clamped()),
    ];
    for method in [Method::E2fif, Method::scales()] {
        let net = build(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale,
            method,
            seed: 1234,
        })?;
        train(net.as_ref(), budget.train_config(42))?;
        panels.push((method.to_string(), net.super_resolve(&pair.lr)?.clamped()));
    }
    out.push_str(&format!("{arch} x{scale} on {}:\n", bench.name()));
    for (name, img) in &panels[1..] {
        let p = psnr_y(img, &pair.hr, scale)?;
        out.push_str(&format!("  {name:<8} PSNR {p:6.2} dB\n"));
    }
    let refs: Vec<&Image> = panels.iter().map(|(_, i)| i).collect();
    let strip = Image::hstack(&refs)?;
    let path = report_dir().join(format!("fig9_{}_{}_x{scale}.ppm", arch.to_lowercase(), bench.name()));
    strip.save_pnm(&path)?;
    Ok(path)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut out = String::from("Fig. 9: visual comparison (strips: HR | Bicubic | E2FIF | SCALES)\n");
    let p1 = panel(
        "RCAN",
        &|c| rcan(c).map(|m| Box::new(m) as Box<dyn SrNetwork>),
        Benchmark::SynUrban100,
        4,
        &budget,
        &mut out,
    )?;
    let p2 = panel(
        "EDSR",
        &|c| edsr(c).map(|m| Box::new(m) as Box<dyn SrNetwork>),
        Benchmark::SynSet14,
        2,
        &budget,
        &mut out,
    )?;
    out.push_str(&format!("strips: {} and {}\n", p1.display(), p2.display()));
    print!("{out}");
    let _ = write_report("fig9_visual.txt", &out);
    Ok(())
}
