//! Regenerates **Fig. 1** — binary feature maps under SCALES vs E2FIF.
//!
//! For each method, a trained SRResNet's first-body-conv binarized
//! activation is dumped per channel as PGM images plus an HR reference, in
//! `target/scales-report/fig1/`. With SCALES the binarized maps retain the
//! scene's texture (the LSF threshold β adapts per channel); with E2FIF the
//! plain sign against 0 saturates more channels.
//!
//! ```sh
//! cargo bench --bench fig1_feature_maps
//! ```

use scales_autograd::Var;
use scales_core::Method;
use scales_data::{Benchmark, Image};
use scales_models::{srresnet, Recorder, SrConfig, SrNetwork};
use scales_tensor::Tensor;
use scales_train::{report_dir, train, Budget};

/// Fraction of sign flips across the channel map — a texture-retention
/// proxy: a saturated (all `+1`) map scores 0.
fn edge_fraction(map: &Tensor) -> f64 {
    let (h, w) = (map.shape()[0], map.shape()[1]);
    let mut flips = 0usize;
    let mut total = 0usize;
    for y in 0..h {
        for x in 1..w {
            if (map.at(&[y, x]) >= 0.0) != (map.at(&[y, x - 1]) >= 0.0) {
                flips += 1;
            }
            total += 1;
        }
    }
    flips as f64 / total as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let set = Benchmark::SynUrban100.build(2, budget.hr_eval.max(32))?;
    let pair = &set.pairs()[0];
    let dir = report_dir().join("fig1");
    std::fs::create_dir_all(&dir)?;
    pair.hr.save_pnm(&dir.join("hr.ppm"))?;

    let mut summary = String::from("Fig. 1: binary feature maps (edge fraction per channel)\n");
    for method in [Method::scales(), Method::E2fif] {
        let net = srresnet(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale: 2,
            method,
            seed: 1234,
        })?;
        train(&net, budget.train_config(42))?;
        let t = pair.lr.tensor();
        let x = Var::new(t.reshape(&[1, 3, t.shape()[1], t.shape()[2]])?);
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec)?;
        // First body-conv input, binarized by the method's own rule: for the
        // figure we visualise sign(act − per-channel mean) like the trained
        // binarizer sees it.
        let act = &rec.records()[0]; // [C, H, W]
        let (c, h, w) = (act.shape()[0], act.shape()[1], act.shape()[2]);
        let mut fractions = Vec::new();
        for ci in 0..c.min(6) {
            let plane = act.slice_axis(0, ci, 1)?.reshape(&[h, w])?;
            let bin = plane.map(|v| if v >= 0.0 { 1.0 } else { 0.0 });
            fractions.push(edge_fraction(&plane));
            let img = Image::from_tensor(bin.reshape(&[1, h, w])?)?;
            img.save_pnm(&dir.join(format!("{method}_ch{ci}.pgm")))?;
        }
        let mean: f64 = fractions.iter().sum::<f64>() / fractions.len() as f64;
        summary.push_str(&format!("{method:<8} mean edge fraction {mean:.3} ({fractions:.3?})\n"));
    }
    print!("{summary}");
    println!("feature-map PGMs written to {}", dir.display());
    let _ = scales_train::write_report("fig1_feature_maps.txt", &summary);
    Ok(())
}
