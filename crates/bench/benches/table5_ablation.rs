//! Regenerates **Table V** — the component ablation on SRResNet ×4:
//! E2FIF baseline, LSF, LSF + channel re-scale, LSF + spatial re-scale,
//! full SCALES, with OPs computed on a 128×128 input like the paper.
//!
//! Expected shape: LSF alone already has fewer OPs than E2FIF (BN removal);
//! each added component buys quality for a small OPs increase; full SCALES
//! is the best of the binary rows.
//!
//! ```sh
//! SCALES_BENCH_ITERS=600 cargo bench --bench table5_ablation
//! ```

use scales_core::{Method, ScalesComponents};
use scales_data::Benchmark;
use scales_models::{srresnet, SrConfig, SrNetwork};
use scales_train::{evaluate, train, write_report, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let scale = 4;
    let rows = [
        ("SRResNet-E2FIF", Method::E2fif),
        ("LSF", Method::Scales(ScalesComponents::lsf_only())),
        ("LSF + chl. re-scale", Method::Scales(ScalesComponents::lsf_channel())),
        ("LSF + spatial re-scale", Method::Scales(ScalesComponents::lsf_spatial())),
        ("SCALES", Method::scales()),
    ];
    let set5 = Benchmark::SynSet5.build(scale, budget.hr_eval)?;
    let urban = Benchmark::SynUrban100.build(scale, budget.hr_eval)?;

    let mut out = String::new();
    out.push_str(&format!("Table V: effect of SCALES components (SRResNet x{scale})\n"));
    out.push_str(&format!(
        "{:<24} {:>8}  {:>14}  {:>14}\n",
        "Method", "OPs", "SynSet5", "SynUrban100"
    ));
    let mut ops_series = Vec::new();
    for (label, method) in rows {
        eprintln!("[table5] {label} (iters={})...", budget.iters);
        let net = srresnet(SrConfig {
            channels: budget.channels,
            blocks: budget.blocks,
            scale,
            method,
            seed: 1234,
        })?;
        train(&net, budget.train_config(42))?;
        let s5 = evaluate(&net, &set5)?;
        let ur = evaluate(&net, &urban)?;
        let cost = net.cost(128, 128);
        ops_series.push((label, cost.effective_ops()));
        out.push_str(&format!(
            "{:<24} {:>8}  {:>6.2} {:>6.3}  {:>6.2} {:>6.3}\n",
            label,
            cost.ops_display(),
            s5.psnr,
            s5.ssim,
            ur.psnr,
            ur.ssim
        ));
    }
    out.push_str("\npaper reference: E2FIF 1.83G / LSF 1.56G / +chl 1.63G / +spatial 1.67G / SCALES 1.74G\n");
    // Shape checks on the OPs ordering, which is architecture-determined.
    let ops: std::collections::HashMap<&str, f64> = ops_series.iter().copied().collect();
    assert!(ops["LSF"] < ops["SRResNet-E2FIF"], "LSF must be cheaper than E2FIF (BN removal)");
    assert!(ops["LSF"] < ops["LSF + chl. re-scale"]);
    assert!(ops["LSF + chl. re-scale"] < ops["SCALES"]);
    assert!(ops["LSF + spatial re-scale"] < ops["SCALES"]);
    assert!(ops["SCALES"] < ops["SRResNet-E2FIF"], "full SCALES must stay below E2FIF, like the paper");
    out.push_str("shape check PASSED: OPs ordering matches the paper\n");
    print!("{out}");
    let path = write_report("table5_ablation.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
