//! End-to-end HTTP serving benchmark: requests/sec and client-observed
//! latency of the full network path — TCP loopback → `scales-http`
//! parser → runtime worker pool → deployed engine → wire codec — under a
//! fixed burst from several keep-alive client threads.
//!
//! Two bursts run back to back on fresh stacks: one with the per-op plan
//! profiler **off** (the production default) and one with it **on** (the
//! full instrumentation path). The profiled burst must hold req/s within
//! the overhead budget of the baseline, keeping the observability layer
//! honest about its own cost.
//!
//! The run ends with one machine-readable line — `BENCH_http {...}` —
//! now including the mean per-stage breakdown (from the flight recorder)
//! and the profiled/baseline throughput ratio, so CI logs give a
//! per-commit serving *and* attribution trajectory for the network edge.
//! Both bursts must complete with `200`s and a clean, error-free runtime
//! record.
//!
//! ```sh
//! cargo bench --bench http_serve            # full request count
//! SCALES_BENCH_SMOKE=1 cargo bench --bench http_serve
//! ```

use scales_core::Method;
use scales_data::{encode_image, WireFormat};
use scales_http::{HttpConfig, HttpServer};
use scales_models::{srresnet, SrConfig};
use scales_runtime::{Runtime, RuntimeConfig};
use scales_serve::{Engine, Precision};
use scales_telemetry::STAGES;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn scene(h: usize, w: usize, seed: u64) -> scales_data::Image {
    scales_data::synth::scene(
        h,
        w,
        scales_data::synth::SceneConfig::default(),
        &mut scales_nn::init::rng(seed),
    )
}

/// Read one response off a keep-alive stream; returns the status.
fn read_response(stream: &mut TcpStream) -> u16 {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert!(stream.read(&mut byte).expect("read head") > 0, "server closed early");
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(&head).expect("head is UTF-8");
    let status: u16 = text.split(' ').nth(1).expect("status").parse().expect("numeric status");
    let length: usize = text
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().to_string()))
        .map_or(0, |v| v.parse().expect("numeric length"));
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    status
}

struct BurstResult {
    rps: f64,
    p50: Duration,
    p99: Duration,
    /// Mean nanoseconds per stage across the burst's recorded traces.
    stage_mean_ns: [u64; STAGES.len()],
    completed: u64,
    failed: u64,
}

/// Drive one full burst against a fresh train-free stack and tear it
/// down, reporting throughput, latency quantiles, and the mean stage
/// breakdown the flight recorder saw.
fn run_burst(profile_ops: bool, requests: usize, clients: usize, raw: &[u8]) -> BurstResult {
    let net = srresnet(SrConfig {
        channels: 16,
        blocks: 2,
        scale: 2,
        method: Method::scales(),
        seed: 7,
    })
    .unwrap();
    let engine = Engine::builder().model(net).precision(Precision::Deployed).build().unwrap();
    let runtime = Runtime::spawn(
        engine,
        RuntimeConfig {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            queue_capacity: requests.max(64),
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            profile_ops,
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let server = HttpServer::bind(
        "127.0.0.1:0",
        runtime,
        HttpConfig {
            workers: clients,
            // Retain the whole burst so the stage breakdown covers it.
            trace_capacity: requests + 8,
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Warm up outside the timed region (plan caches, connection setup).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        assert_eq!(read_response(&mut stream), 200, "warm-up request");
    }

    // The burst: each client thread drives its share over one keep-alive
    // connection and records per-request wall latency.
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let share = requests / clients + usize::from(c < requests % clients);
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                    let mut latencies = Vec::with_capacity(share);
                    for _ in 0..share {
                        let sent = Instant::now();
                        stream.write_all(raw).unwrap();
                        let status = read_response(&mut stream);
                        assert_eq!(status, 200, "burst must complete without errors");
                        latencies.push(sent.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let total_secs = start.elapsed().as_secs_f64();
    let rps = requests as f64 / total_secs;

    let mut sorted = latencies.clone();
    sorted.sort();
    let quantile = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    let (p50, p99) = (quantile(0.50), quantile(0.99));

    // The flight recorder retained every trace in the burst (capacity is
    // sized for it); fold them into a mean per-stage breakdown.
    let traces = server.traces();
    assert!(!traces.is_empty(), "the flight recorder must have seen the burst");
    let mut stage_mean_ns = [0u64; STAGES.len()];
    for trace in &traces {
        for (mean, ns) in stage_mean_ns.iter_mut().zip(trace.stage_ns) {
            *mean += ns;
        }
    }
    for mean in &mut stage_mean_ns {
        *mean /= traces.len() as u64;
    }

    let stats = server.shutdown();
    assert_eq!(stats.failed, 0, "no request may fail");
    assert!(
        stats.completed >= (requests + 1) as u64,
        "every posted request completes (got {})",
        stats.completed
    );
    BurstResult { rps, p50, p99, stage_mean_ns, completed: stats.completed, failed: stats.failed }
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let requests: usize = if smoke { 24 } else { 192 };
    let clients = 3usize;
    let side = 16usize;

    println!(
        "http serving: {requests} POST /v1/upscale of a {side}x{side} PPM over {clients} \
         keep-alive loopback clients, profiler off then on"
    );

    let payload = encode_image(&scene(side, side, 7), WireFormat::Ppm).unwrap();
    let raw = {
        let mut raw = format!(
            "POST /v1/upscale HTTP/1.1\r\nHost: bench\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n",
            WireFormat::Ppm.content_type(),
            payload.len()
        )
        .into_bytes();
        raw.extend_from_slice(&payload);
        raw
    };

    let baseline = run_burst(false, requests, clients, &raw);
    println!(
        "  baseline (profiler off): {:>8.1} req/s; client latency p50 {:.2?}, p99 {:.2?}",
        baseline.rps, baseline.p50, baseline.p99
    );
    let profiled = run_burst(true, requests, clients, &raw);
    println!(
        "  profiled (profiler on):  {:>8.1} req/s; client latency p50 {:.2?}, p99 {:.2?}",
        profiled.rps, profiled.p50, profiled.p99
    );

    println!("  mean stage breakdown (baseline burst):");
    for (name, ns) in STAGES.iter().zip(baseline.stage_mean_ns) {
        println!("    {name:<11} {:>10.3} ms", ns as f64 / 1e6);
    }

    // The observability layer must stay cheap: the fully instrumented
    // burst holds req/s within 10% of the baseline. The smoke burst is
    // too small for a tight bound on a loaded CI box, so it only guards
    // against order-of-magnitude regressions.
    let ratio = profiled.rps / baseline.rps;
    let floor = if smoke { 0.5 } else { 0.9 };
    println!("  overhead: profiled/baseline req/s ratio {ratio:.3} (floor {floor})");
    assert!(
        ratio >= floor,
        "profiling overhead out of budget: {:.1} -> {:.1} req/s (ratio {ratio:.3} < {floor})",
        baseline.rps,
        profiled.rps
    );

    let stage_json: String = STAGES
        .iter()
        .zip(baseline.stage_mean_ns)
        .map(|(name, ns)| format!("\"{name}_ms\":{:.3}", ns as f64 / 1e6))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "\nBENCH_http {{\"requests\":{requests},\"clients\":{clients},\"rps\":{:.1},\
         \"p50_ms\":{:.2},\"p99_ms\":{:.2},\"completed\":{},\"failed\":{},\
         \"profiled_rps\":{:.1},\"overhead_ratio\":{ratio:.3},\"stage_mean\":{{{stage_json}}}}}",
        baseline.rps,
        baseline.p50.as_secs_f64() * 1e3,
        baseline.p99.as_secs_f64() * 1e3,
        baseline.completed,
        baseline.failed,
        profiled.rps,
    );
}
