//! Serving-throughput benchmark: requests/sec of a serial `Session` loop
//! vs the concurrent `scales-runtime` worker pool with cross-request
//! dynamic batching, over the same deployed engine and the same traffic
//! (a burst of single-image requests — the many-small-callers pattern).
//!
//! The run ends with one machine-readable line — `BENCH_throughput {...}`
//! — so CI logs give a per-commit serving-throughput trajectory
//! (requests/sec serial and runtime, batch fill ratio, p50/p99 latency).
//!
//! ```sh
//! cargo bench --bench throughput            # full request count
//! SCALES_BENCH_SMOKE=1 cargo bench --bench throughput
//! ```

use scales_core::Method;
use scales_models::{srresnet, SrConfig};
use scales_runtime::{Runtime, RuntimeConfig, Ticket};
use scales_serve::{Engine, Precision, SrRequest};
use std::time::{Duration, Instant};

fn scene(h: usize, w: usize, seed: u64) -> scales_data::Image {
    scales_data::synth::scene(
        h,
        w,
        scales_data::synth::SceneConfig::default(),
        &mut scales_nn::init::rng(seed),
    )
}

fn engine() -> Engine<'static> {
    let net = srresnet(SrConfig {
        channels: 16,
        blocks: 2,
        scale: 2,
        method: Method::scales(),
        seed: 7,
    })
    .unwrap();
    Engine::builder().model(net).precision(Precision::Deployed).build().unwrap()
}

fn main() {
    let smoke = std::env::var("SCALES_BENCH_SMOKE").is_ok();
    let requests: u64 = if smoke { 32 } else { 256 };
    let side = 16usize;
    println!(
        "serving throughput: {requests} single-image {side}x{side} requests, deployed engine"
    );

    // Serial baseline: one session, one request at a time — what a
    // single-caller deployment of PR 2's API does.
    let serial_engine = engine();
    let session = serial_engine.session();
    // Warm the plan cache so both sides are measured in steady state.
    let _ = session.infer(SrRequest::single(scene(side, side, 0))).unwrap();
    let start = Instant::now();
    for i in 0..requests {
        let _ = session.infer(SrRequest::single(scene(side, side, i))).unwrap();
    }
    let serial_secs = start.elapsed().as_secs_f64();
    let serial_rps = requests as f64 / serial_secs;
    println!("  serial:  {serial_rps:>8.1} req/s ({:.1} ms total)", serial_secs * 1e3);

    // Concurrent runtime over an identical engine: submit the whole burst
    // (the backlog is what cross-request batching feeds on), then wait.
    let max_batch = 8usize;
    let runtime = Runtime::spawn(
        engine(),
        RuntimeConfig {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            queue_capacity: requests as usize,
            max_batch,
            max_wait: Duration::from_millis(50),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    // Best-effort warm-up outside the timed region: a burst large enough
    // to hand every worker at least one full dispatch. (Plan shapes vary
    // with the gathered batch size, so worker plan caches can still grow
    // during the timed run; the serial baseline has the same property on
    // its first request only.)
    // (submit_wait: on many-core machines the warm burst can exceed the
    // queue bound, and blocking for space is fine outside the timing.)
    let warm: Vec<Ticket> = (0..runtime.workers() * max_batch)
        .map(|i| runtime.submit_wait(SrRequest::single(scene(side, side, i as u64))).unwrap())
        .collect();
    for ticket in warm {
        ticket.wait().unwrap();
    }
    // Snapshot after warm-up so the reported batching counters describe
    // only the timed region, not the warm-up traffic.
    let base = runtime.stats();
    let start = Instant::now();
    let tickets: Vec<Ticket> = (0..requests)
        .map(|i| runtime.submit(SrRequest::single(scene(side, side, i))).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let runtime_secs = start.elapsed().as_secs_f64();
    let runtime_rps = requests as f64 / runtime_secs;
    let stats = runtime.shutdown();
    let timed_dispatches = stats.dispatches - base.dispatches;
    let timed_completed = stats.completed - base.completed;
    let timed_fill = if timed_dispatches == 0 {
        0.0
    } else {
        (stats.images - base.images) as f64 / (timed_dispatches * max_batch as u64) as f64
    };
    println!(
        "  runtime: {runtime_rps:>8.1} req/s ({:.1} ms total, {} workers)",
        runtime_secs * 1e3,
        stats.workers
    );
    println!(
        "  batching: {timed_dispatches} dispatches for {timed_completed} requests, \
         fill {timed_fill:.2} of max_batch {max_batch}"
    );
    // (The latency histogram spans warm-up + timed run; both are the same
    // traffic shape, and per-phase histograms would need subtraction the
    // metrics API deliberately doesn't offer.)
    println!(
        "  latency:  p50 {:.2?}, p99 {:.2?}, max {:.2?}",
        stats.latency.p50(),
        stats.latency.p99(),
        stats.latency.max()
    );

    // The burst was fully queued before the batcher gathered, so the
    // coalescing contract is hard: dispatches must come in well under one
    // per request. (Throughput itself is hardware-dependent — on a 1-core
    // container the pool cannot beat serial wall time, so the asserted
    // invariant is the batching, plus a sanity floor on relative speed.)
    assert!(
        timed_dispatches < timed_completed,
        "dynamic batcher never coalesced: {timed_dispatches} dispatches for {timed_completed} requests"
    );
    assert!(
        runtime_rps > serial_rps * 0.25,
        "runtime throughput collapsed: {runtime_rps:.1} req/s vs serial {serial_rps:.1} req/s"
    );

    println!(
        "\nBENCH_throughput {{\"serial_rps\":{serial_rps:.1},\"runtime_rps\":{runtime_rps:.1},\
         \"workers\":{},\"dispatches\":{timed_dispatches},\"batch_fill\":{timed_fill:.3},\
         \"p50_us\":{:.1},\"p99_us\":{:.1}}}",
        stats.workers,
        stats.latency.p50().as_secs_f64() * 1e6,
        stats.latency.p99().as_secs_f64() * 1e6,
    );
}
