//! Regenerates **Table IV** — Transformer-based SR comparison on
//! SwinIR-lite and HAT-lite: FP / BiBERT-baseline / SCALES at ×2 and ×4.
//!
//! Expected shape: FP best; SCALES well above the BiBERT baseline
//! (the paper's ">1 dB" headline), with only a small parameter overhead.
//!
//! ```sh
//! SCALES_BENCH_ITERS=400 cargo bench --bench table4_transformer
//! ```

use scales_core::Method;
use scales_train::{render_table, run_row, write_report, Arch, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut out = String::new();
    let methods = [Method::FullPrecision, Method::Bibert, Method::scales()];
    for arch in [Arch::SwinIr, Arch::Hat] {
        for scale in [2usize, 4] {
            let mut rows = Vec::new();
            for m in methods {
                eprintln!("[table4] {arch}-{m} x{scale} (iters={})...", budget.iters);
                rows.push(run_row(arch, m, scale, &budget)?);
            }
            out.push_str(&render_table(
                &format!("Table IV (x{scale}): Transformer-based SR, {arch}"),
                arch.name(),
                scale,
                &rows,
            ));
            out.push('\n');
            // Shape check: SCALES params stay near the BiBERT baseline
            // (small overhead), both below FP. The paper's ~10x ratio
            // appears at the 60-channel scale asserted in scales-models'
            // unit tests; the tiny default budget only preserves ordering.
            let fp = rows[0].cost.as_ref().expect("cost").effective_params();
            let bb = rows[1].cost.as_ref().expect("cost").effective_params();
            let sc = rows[2].cost.as_ref().expect("cost").effective_params();
            assert!(sc < fp, "binary transformer params must be below FP");
            assert!(sc < bb * 2.0, "SCALES overhead over the baseline must stay small");
        }
    }
    out.push_str(&format!("(budget {budget:?})\n"));
    print!("{out}");
    let path = write_report("table4_transformer.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
