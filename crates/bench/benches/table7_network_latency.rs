//! Whole-network deployment latency — the Table VI story extended from a
//! single conv to an entire SR network, comparing three serving paths on
//! the same trained SRResNet (64×64 LR input, ×2):
//!
//! * training path, scalar backend — the seed's only inference route;
//! * training path, parallel backend — same math on the blocked
//!   multi-threaded tensor kernels;
//! * deployed engine (packed XNOR-popcount body) on each backend.
//!
//! Expected shape: deployed ≫ training path (no tape, packed body convs);
//! the parallel backend beats scalar whenever more than one core is
//! available, and on a single core the deployed path still dominates.
//!
//! ```sh
//! cargo bench --bench table7_network_latency
//! ```

use scales_autograd::Var;
use scales_core::Method;
use scales_models::{srresnet, SrConfig, SrNetwork};
use scales_nn::Module as _;
use scales_tensor::backend::{self, Backend};
use scales_tensor::Tensor;
use std::time::{Duration, Instant};

const SIZE: usize = 64;
const CHANNELS: usize = 16;
const BLOCKS: usize = 2;

fn probe_input() -> Tensor {
    Tensor::from_vec(
        (0..3 * SIZE * SIZE).map(|i| ((i as f32) * 0.071).sin() * 0.4 + 0.5).collect(),
        &[1, 3, SIZE, SIZE],
    )
    .expect("probe volume")
}

fn time_forward(reps: usize, mut f: impl FnMut()) -> Duration {
    // One untimed warm-up call.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps as u32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = srresnet(SrConfig {
        channels: CHANNELS,
        blocks: BLOCKS,
        scale: 2,
        method: Method::scales(),
        seed: 77,
    })?;
    let deployed = net.lower()?;
    let input = probe_input();
    let reps = 5;

    println!(
        "whole-network inference latency (SRResNet/SCALES, {CHANNELS} ch x {BLOCKS} blocks, \
         {SIZE}x{SIZE} LR, x2, {} packed layers, {} cores)",
        deployed.packed_layers(),
        std::thread::available_parallelism().map_or(1, usize::from),
    );

    let mut rows = Vec::new();
    for backend_kind in [Backend::Scalar, Backend::Parallel] {
        let (train_t, deploy_t) = backend::with_backend(backend_kind, || {
            let t = time_forward(reps, || {
                let _ = net.forward(&Var::new(input.clone())).expect("training forward");
            });
            let d = time_forward(reps, || {
                let _ = deployed.forward(&input).expect("deployed forward");
            });
            (t, d)
        });
        rows.push((backend_kind.name(), train_t, deploy_t));
    }

    println!("\n  {:<10} {:>18} {:>18}", "backend", "training path", "deployed engine");
    for (name, train_t, deploy_t) in &rows {
        println!("  {name:<10} {:>15.2?} {:>15.2?}", train_t, deploy_t);
    }
    let seed_path = rows[0].1; // scalar training path = the seed's route
    let best_deploy = rows.iter().map(|r| r.2).min().expect("rows");
    println!(
        "\n  speedup (deployed vs seed scalar training path): {:.1}x",
        seed_path.as_secs_f64() / best_deploy.as_secs_f64().max(1e-9)
    );
    assert!(
        best_deploy < seed_path,
        "deployed whole-network inference must beat the seed scalar path"
    );
    Ok(())
}
