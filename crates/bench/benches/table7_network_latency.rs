//! Whole-network deployment latency — the Table VI story extended from a
//! single conv to an entire SR network, comparing serving paths on the
//! same trained SRResNet (64×64 LR input, ×2) through the unified
//! `scales-serve` Engine API:
//!
//! * training-precision engine, scalar backend — the seed's only
//!   inference route;
//! * training-precision engine, parallel backend — same math on the
//!   blocked multi-threaded tensor kernels;
//! * training-precision engine, simd backend — runtime-detected AVX2
//!   float GEMM and hardware-popcount loops, bit-identical outputs;
//! * deployed-precision engine (packed XNOR-popcount body) on each
//!   backend.
//!
//! On AVX2 hardware the simd deployed row must not lose to the scalar
//! deployed row (asserted; skipped when detection reports no AVX2).
//!
//! Each row is a separate `Engine` carrying its backend by value — the
//! process-global backend selection is never touched, which is itself the
//! smoke test for per-engine backend threading.
//!
//! Deployed graphs come through `scales_train::lower_cached`: point
//! `SCALES_ARTIFACT_CACHE` at a directory and only the first engine pays
//! the lowering/packing cost — every later one deserializes the packed
//! `scales-io` artifact from disk (bit-identical by format contract).
//!
//! Expected shape: deployed ≫ training path (no tape, packed body convs);
//! the parallel backend beats scalar whenever more than one core is
//! available, and on a single core the deployed path still dominates.
//!
//! ```sh
//! cargo bench --bench table7_network_latency
//! ```

use scales_core::Method;
use scales_data::Image;
use scales_models::{srresnet, SrConfig, Workspace};
use scales_serve::{Engine, Precision, Session};
use scales_train::lower_cached;
use scales_tensor::backend::Backend;
use scales_tensor::Tensor;
use std::time::{Duration, Instant};

const SIZE: usize = 64;
const CHANNELS: usize = 16;
const BLOCKS: usize = 2;
const SEED: u64 = 77;

fn probe_input() -> Image {
    let t = Tensor::from_vec(
        (0..3 * SIZE * SIZE).map(|i| ((i as f32) * 0.071).sin() * 0.4 + 0.5).collect(),
        &[3, SIZE, SIZE],
    )
    .expect("probe volume");
    Image::from_tensor(t).expect("probe image")
}

fn time_serving(reps: usize, session: &Session<'_, '_>, input: &Image) -> Duration {
    // One untimed warm-up call.
    let _ = session.super_resolve(input).expect("serving forward");
    let start = Instant::now();
    for _ in 0..reps {
        let _ = session.super_resolve(input).expect("serving forward");
    }
    start.elapsed() / reps as u32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = srresnet(SrConfig {
        channels: CHANNELS,
        blocks: BLOCKS,
        scale: 2,
        method: Method::scales(),
        seed: SEED,
    })?;
    let input = probe_input();
    let reps = 5;

    let mut rows = Vec::new();
    let mut packed_layers = 0;
    for backend_kind in [Backend::Scalar, Backend::Parallel, Backend::Simd] {
        let training = Engine::builder()
            .model_ref(&net)
            .precision(Precision::Training)
            .backend(backend_kind)
            .build()?;
        // With SCALES_ARTIFACT_CACHE set only the first iteration lowers;
        // the second deserializes the packed scales-io artifact.
        // The cache key must encode every axis the artifact itself cannot
        // reveal (method and seed here; arch/scale are checked by
        // lower_cached).
        let graph = lower_cached(
            &net,
            &format!("srresnet-{}-c{CHANNELS}b{BLOCKS}s{SEED}", Method::scales()),
        )?;
        packed_layers = graph.packed_layers();
        let deployed = Engine::builder()
            .model(graph)
            .precision(Precision::Deployed)
            .backend(backend_kind)
            .build()?;
        let t = time_serving(reps, &training.session(), &input);
        let d = time_serving(reps, &deployed.session(), &input);
        rows.push((backend_kind.name(), t, d));
    }

    println!(
        "whole-network serving latency via Engine (SRResNet/SCALES, {CHANNELS} ch x {BLOCKS} \
         blocks, {SIZE}x{SIZE} LR, x2, {packed_layers} packed layers, {} cores, simd {})",
        std::thread::available_parallelism().map_or(1, usize::from),
        Backend::detected(),
    );

    println!("\n  {:<10} {:>18} {:>18}", "backend", "training engine", "deployed engine");
    for (name, train_t, deploy_t) in &rows {
        println!("  {name:<10} {:>15.2?} {:>15.2?}", train_t, deploy_t);
    }
    let seed_path = rows[0].1; // scalar training path = the seed's route
    let best_deploy = rows.iter().map(|r| r.2).min().expect("rows");
    println!(
        "\n  speedup (deployed engine vs seed scalar training path): {:.1}x",
        seed_path.as_secs_f64() / best_deploy.as_secs_f64().max(1e-9)
    );
    assert!(
        best_deploy < seed_path,
        "deployed whole-network serving must beat the seed scalar path"
    );
    if Backend::detected().has_avx2() {
        // rows: [scalar, parallel, simd]; allow 10% timer jitter — the
        // per-kernel floors are asserted in micro_kernels, this guards
        // against the simd path regressing at the whole-network level.
        let (scalar_deploy, simd_deploy) = (rows[0].2, rows[2].2);
        assert!(
            simd_deploy.as_secs_f64() <= scalar_deploy.as_secs_f64() * 1.1,
            "simd deployed serving must not lose to scalar (got {simd_deploy:.2?} vs {scalar_deploy:.2?})"
        );
    }
    let json: Vec<String> = rows
        .iter()
        .flat_map(|(name, t, d)| {
            [
                format!("\"{name}_training_us\":{:.1}", t.as_secs_f64() * 1e6),
                format!("\"{name}_deployed_us\":{:.1}", d.as_secs_f64() * 1e6),
            ]
        })
        .collect();
    println!("\nBENCH_table7 {{{}}}", json.join(","));

    // Planned zero-allocation executor vs the allocating deployed forward
    // (the serving route before the graph memory plan) on the same probe:
    // same graph, same backend, bit-identical outputs — only the executor
    // differs.
    let graph = lower_cached(
        &net,
        &format!("srresnet-{}-c{CHANNELS}b{BLOCKS}s{SEED}", Method::scales()),
    )?;
    let batch = {
        let t = input.tensor();
        t.reshape(&[1, 3, SIZE, SIZE])?
    };
    let _ = graph.forward(&batch)?; // warm-up
    // Best-of with more reps than the engine rows: this pair gates CI on
    // a ratio, so give scheduler noise more chances to cancel out.
    let ratio_reps = reps * 2;
    let timed = |f: &mut dyn FnMut() -> Duration| -> Duration {
        (0..ratio_reps).map(|_| f()).min().expect("reps > 0")
    };
    let allocating = timed(&mut || {
        let start = Instant::now();
        let _ = graph.forward(&batch).expect("allocating forward");
        start.elapsed()
    });
    let mut ws = Workspace::new();
    let _ = graph.forward_planned(&batch, &mut ws)?; // builds + warms the plan
    let planned = timed(&mut || {
        let start = Instant::now();
        let _ = graph.forward_planned(&batch, &mut ws).expect("planned forward");
        start.elapsed()
    });
    let gain = allocating.as_secs_f64() / planned.as_secs_f64().max(1e-9);
    println!(
        "\n  planned executor (graph memory plan, {} arena slots): {:.2?} vs allocating {:.2?} \
         — {gain:.2}x",
        ws.plans()[0].slot_count(),
        planned,
        allocating,
    );
    assert!(
        gain >= 1.3,
        "planned executor must beat the allocating deployed forward by >= 1.3x, got {gain:.2}x"
    );
    Ok(())
}
