//! Regenerates **Table II** — activation variance comparison between SR
//! networks (EDSR, SwinIR) and classification networks (ResNet, SwinViT).
//!
//! Expected shape (matching the paper): every variance figure for the SR
//! networks is orders of magnitude above the classification networks, and
//! EDSR's layer-to-layer variance dominates everything.
//!
//! ```sh
//! cargo bench --bench table2_variance
//! ```

use scales_bench::{collect_records, probe_images};
use scales_core::Method;
use scales_metrics::{variance_report, Layout, VarianceReport};
use scales_models::{edsr, swinir, ResNetTiny, SrConfig, SrNetwork, SwinVitTiny};
use scales_train::write_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let images = probe_images(6, 16);
    // Input conventions match the published systems: EDSR consumes 0-255
    // RGB (rgb_range = 255), SwinIR consumes [0, 1], classification
    // networks consume per-image standardized inputs. This asymmetry —
    // plus the SR networks' lack of normalisation layers on the conv path —
    // is exactly what the paper's Table II measures.
    let edsr_inputs: Vec<_> = images.iter().map(|t| t.map(|v| v * 255.0)).collect();
    let cls_inputs: Vec<_> = images
        .iter()
        .map(|t| {
            let m = t.mean();
            let s = t.variance().sqrt().max(1e-6);
            t.map(|v| (v - m) / s)
        })
        .collect();

    let edsr_net = edsr(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 21 })?;
    let edsr_var = variance_report(
        &collect_records(&edsr_inputs, 3, |x, rec| edsr_net.forward_recorded(x, rec).map(|_| ()))?,
        Layout::Chw,
    )?;

    // SwinIR row: image-domain conv inputs (Fig. 5d) — the unnormalised
    // path where SwinIR's layer-to-layer variation lives.
    let swin = swinir(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 22 })?;
    let swin_var = variance_report(
        &collect_records(&images, 3, |x, rec| swin.forward_recorded(x, rec).map(|_| ()))?,
        Layout::Chw,
    )?;

    let resnet = ResNetTiny::new(16, 2, 10, 23);
    let res_var = variance_report(
        &collect_records(&cls_inputs, 3, |x, rec| resnet.forward_recorded(x, rec).map(|_| ()))?,
        Layout::Chw,
    )?;

    let vit = SwinVitTiny::new(16, 2, 10, 24);
    let vit_var = variance_report(
        &collect_records(&cls_inputs, 2, |x, rec| vit.forward_recorded(x, rec).map(|_| ()))?,
        Layout::Tokens,
    )?;

    let mut out = String::new();
    out.push_str("Table II: Activation variance comparison\n");
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}\n",
        "", "EDSR", "ResNet", "SwinIR", "SwinViT"
    ));
    type Sel = fn(&VarianceReport) -> f64;
    let rows: [(&str, Sel); 4] = [
        ("chl-to-chl", |v| v.channel),
        ("pixel-to-pixel", |v| v.pixel),
        ("layer-to-layer", |v| v.layer),
        ("image-to-image", |v| v.image),
    ];
    for (label, f) in rows {
        out.push_str(&format!(
            "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>12.4}\n",
            label,
            f(&edsr_var),
            f(&res_var),
            f(&swin_var),
            f(&vit_var)
        ));
    }
    out.push_str("\npaper reference (Table II):\n");
    out.push_str("chl-to-chl       439.17  0.10  0.11  0.10\n");
    out.push_str("pixel-to-pixel   622.25  0.34  0.87  0.12\n");
    out.push_str("layer-to-layer  3494.38  0.92 162.70 3.46\n");
    out.push_str("image-to-image   599.39  0.32  0.84  0.13\n");
    print!("{out}");
    // Shape checks (relative ordering, not absolute numbers).
    assert!(edsr_var.pixel > res_var.pixel * 5.0, "EDSR pixel variance must dominate ResNet");
    assert!(edsr_var.channel > res_var.channel * 5.0, "EDSR channel variance must dominate ResNet");
    println!("\nshape check PASSED: SR-network variances dominate classification networks");
    let path = write_report("table2_variance.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
