//! Regenerates **Table III** — CNN-based SR comparison on SRResNet:
//! FP / Bicubic / BAM / BTM / E2FIF / SCALES at ×2 and ×4, with PSNR/SSIM
//! on all four synthetic benchmarks plus Params and OPs, and prints the
//! **Table I** capability matrix as a preamble.
//!
//! Expected shape: FP on top, SCALES best among binary methods (largest
//! margin on SynUrban100), every binary method far below FP in Params/OPs.
//!
//! Budget knobs: `SCALES_BENCH_ITERS`, `SCALES_BENCH_HR`,
//! `SCALES_BENCH_CHANNELS`, `SCALES_BENCH_BLOCKS`.
//!
//! ```sh
//! SCALES_BENCH_ITERS=600 cargo bench --bench table3_cnn
//! ```

use scales_core::Method;
use scales_train::{render_table, run_row, write_report, Arch, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut out = String::new();

    // Table I preamble: capability matrix.
    out.push_str("Table I: adaptability of BNN-SR methods\n");
    out.push_str(&format!(
        "{:<10} {:>5} {:>5} {:>6} {:>5}  {}\n",
        "Method", "Spa.", "Chl.", "Layer", "Img.", "HW cost"
    ));
    for m in [Method::Bam, Method::Btm, Method::E2fif, Method::scales()] {
        let c = m.capabilities();
        let tick = |b: bool| if b { "Y" } else { "-" };
        out.push_str(&format!(
            "{:<10} {:>5} {:>5} {:>6} {:>5}  {}\n",
            m.to_string(),
            tick(c.spatial),
            tick(c.channel),
            tick(c.layer),
            tick(c.image),
            c.hw_cost
        ));
    }
    out.push('\n');

    let methods = [
        Method::FullPrecision,
        Method::Bicubic,
        Method::Bam,
        Method::Btm,
        Method::E2fif,
        Method::scales(),
    ];
    for scale in [2usize, 4] {
        let mut rows = Vec::new();
        for m in methods {
            eprintln!("[table3] SRResNet-{m} x{scale} (iters={})...", budget.iters);
            rows.push(run_row(Arch::SrResNet, m, scale, &budget)?);
        }
        out.push_str(&render_table(
            &format!("Table III (x{scale}): CNN-based SR, SRResNet"),
            "SRResNet",
            scale,
            &rows,
        ));
        out.push('\n');
        // Shape check: SCALES cost below FP cost. (At the tiny default
        // budget the FP head/tail dominate, so only strict ordering is
        // asserted here; the paper's ~30x OPs ratio is asserted at
        // 64-channel scale in scales-models' unit tests.)
        let fp_cost = rows[0].cost.as_ref().expect("fp has cost").effective_ops();
        let sc_cost = rows[5].cost.as_ref().expect("scales has cost").effective_ops();
        assert!(sc_cost < fp_cost, "binary OPs must be below FP");
    }
    out.push_str(&format!("(budget {budget:?}; paper: 300 epochs on DIV2K at 64ch/16 blocks)\n"));
    print!("{out}");
    let path = write_report("table3_cnn.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
