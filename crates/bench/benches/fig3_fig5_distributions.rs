//! Regenerates **Figs. 3, 4 and 5** — activation-distribution box plots:
//!
//! * Fig. 3: EDSR — across pixels (two images), across layers, across
//!   channels.
//! * Fig. 4: ResNet / SwinViT classifiers — across pixels (the squashed
//!   contrast case).
//! * Fig. 5: SwinIR — across pixels (two images) and across layers
//!   (linear inputs and conv inputs separately).
//!
//! Output is text box plots (min/q1/median/q3/max per sample), which is
//! what the paper's figures plot.
//!
//! ```sh
//! cargo bench --bench fig3_fig5_distributions
//! ```

use scales_bench::{collect_records, probe_images};
use scales_core::Method;
use scales_metrics::{
    channel_distributions, layer_distributions, pixel_distributions, BoxStats,
};
use scales_models::{edsr, swinir, ResNetTiny, SrConfig, SrNetwork, SwinVitTiny};
use scales_train::write_report;

fn render(series: &str, stats: &[BoxStats]) -> String {
    let mut s = format!("  {series}\n");
    for (i, b) in stats.iter().enumerate() {
        s.push_str(&format!(
            "    {:>2}: min {:+8.3} q1 {:+8.3} med {:+8.3} q3 {:+8.3} max {:+8.3}\n",
            i + 1,
            b.min,
            b.q1,
            b.median,
            b.q3,
            b.max
        ));
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let images = probe_images(4, 16);
    let mut out = String::new();

    // ---- Fig. 3: EDSR.
    let edsr_net = edsr(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 21 })?;
    let recs = collect_records(&images, 3, |x, rec| edsr_net.forward_recorded(x, rec).map(|_| ()))?;
    out.push_str("Fig. 3: activation distributions in EDSR\n");
    let img1: Vec<_> = recs.iter().filter(|r| r.image == 0 && r.layer == 0).collect();
    out.push_str(&render("(a) across pixels, img1, layer 1 (20 pixels)", &pixel_distributions(&img1[0].activation, 20)?));
    let img2: Vec<_> = recs.iter().filter(|r| r.image == 1 && r.layer == 0).collect();
    out.push_str(&render("(b) across pixels, img2, layer 1 (20 pixels)", &pixel_distributions(&img2[0].activation, 20)?));
    let per_layer = layer_distributions(&recs);
    out.push_str(&render(
        "(c) across layers",
        &per_layer.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
    ));
    out.push_str(&render("(d) across channels, img1, layer 1", &channel_distributions(&img1[0].activation, 16)?));
    // The paper's even/odd layer magnitude alternation (§III-A).
    let ranges: Vec<f32> = per_layer.iter().map(|(_, b)| b.max - b.min).collect();
    out.push_str(&format!("  layer ranges: {ranges:.2?}\n\n"));

    // ---- Fig. 4: classification networks.
    out.push_str("Fig. 4: activation distributions in classification networks\n");
    let resnet = ResNetTiny::new(16, 2, 10, 23);
    let r_recs = collect_records(&images, 3, |x, rec| resnet.forward_recorded(x, rec).map(|_| ()))?;
    let r_img1: Vec<_> = r_recs.iter().filter(|r| r.image == 0 && r.layer == 0).collect();
    out.push_str(&render("(a) ResNet, across pixels (20 pixels)", &pixel_distributions(&r_img1[0].activation, 20)?));
    let vit = SwinVitTiny::new(16, 2, 10, 24);
    let v_recs = collect_records(&images, 2, |x, rec| vit.forward_recorded(x, rec).map(|_| ()))?;
    let v_img1: Vec<_> = v_recs.iter().filter(|r| r.image == 0 && r.layer == 0).collect();
    // Token layout: tokens play the pixel role; reuse pixel_distributions by
    // transposing [L, C] into [C', H=L, W=1]-like views is unnecessary —
    // sample token rows directly.
    let tok = &v_img1[0].activation;
    let l = tok.shape()[0];
    let c = tok.shape()[1];
    let stats: Vec<BoxStats> = (0..20.min(l))
        .map(|i| {
            let p = i * l / 20.min(l);
            BoxStats::from_samples(&tok.data()[p * c..(p + 1) * c])
        })
        .collect();
    out.push_str(&render("(b) SwinViT, across tokens (20 tokens)", &stats));
    out.push('\n');

    // ---- Fig. 5: SwinIR.
    out.push_str("Fig. 5: activation distributions in SwinIR\n");
    let swin = swinir(SrConfig { channels: 16, blocks: 2, scale: 2, method: Method::FullPrecision, seed: 22 })?;
    let tok_recs = collect_records(&images, 2, |x, rec| swin.forward_recorded(x, rec).map(|_| ()))?;
    let s_img1: Vec<_> = tok_recs.iter().filter(|r| r.image == 0 && r.layer == 0).collect();
    let tok = &s_img1[0].activation;
    let l = tok.shape()[0];
    let c = tok.shape()[1];
    let stats: Vec<BoxStats> = (0..20.min(l))
        .map(|i| BoxStats::from_samples(&tok.data()[(i * l / 20.min(l)) * c..(i * l / 20.min(l) + 1) * c]))
        .collect();
    out.push_str(&render("(a) across pixels (tokens), img1", &stats));
    let lin_layers = layer_distributions(&tok_recs);
    out.push_str(&render(
        "(c) across layers (linear inputs)",
        &lin_layers.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
    ));
    let conv_recs = collect_records(&images, 3, |x, rec| swin.forward_recorded(x, rec).map(|_| ()))?;
    let conv_layers = layer_distributions(&conv_recs);
    out.push_str(&render(
        "(d) across layers (conv inputs)",
        &conv_layers.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
    ));

    print!("{out}");
    let path = write_report("fig3_fig5_distributions.txt", &out);
    println!("report written to {}", path.display());
    Ok(())
}
