//! The `Module` abstraction: anything that maps a tape variable to a tape
//! variable and owns trainable parameters.

use scales_autograd::Var;
use scales_tensor::Result;

/// A neural-network building block.
///
/// Modules hold their parameters as [`Var`] leaves (cheap shared handles),
/// so `forward` takes `&self`: every call extends the tape with a fresh
/// subgraph over the same parameter nodes.
pub trait Module {
    /// Run the module on an input, extending the autodiff tape.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the input geometry is incompatible with
    /// the module configuration.
    fn forward(&self, input: &Var) -> Result<Var>;

    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Var>;

    /// Number of scalar parameters (for model cards and cost accounting).
    fn param_count(&self) -> usize {
        self.params().iter().map(Var::len).sum()
    }
}

impl<M: Module + ?Sized> Module for Box<M> {
    fn forward(&self, input: &Var) -> Result<Var> {
        (**self).forward(input)
    }
    fn params(&self) -> Vec<Var> {
        (**self).params()
    }
}

/// A chain of modules applied in order.
///
/// ```
/// use scales_nn::{Module, Sequential};
/// use scales_nn::layers::Relu;
/// let net = Sequential::new(vec![Box::new(Relu), Box::new(Relu)]);
/// assert!(net.params().is_empty());
/// ```
#[derive(Default)]
pub struct Sequential {
    stages: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Build from an explicit stage list.
    #[must_use]
    pub fn new(stages: Vec<Box<dyn Module>>) -> Self {
        Self { stages }
    }

    /// Append a stage, builder-style.
    #[must_use]
    pub fn push(mut self, stage: impl Module + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, input: &Var) -> Result<Var> {
        let mut x = input.clone();
        for s in &self.stages {
            x = s.forward(&x)?;
        }
        Ok(x)
    }

    fn params(&self) -> Vec<Var> {
        self.stages.iter().flat_map(|s| s.params()).collect()
    }
}
