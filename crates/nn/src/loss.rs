//! Loss functions. The paper trains with L1 between the SR and HR images.

use scales_autograd::Var;
use scales_tensor::Result;

/// Mean absolute error (the paper's training loss).
///
/// # Errors
///
/// Returns an error when the operand shapes do not broadcast together.
pub fn l1_loss(pred: &Var, target: &Var) -> Result<Var> {
    pred.sub(target)?.abs().mean_all()
}

/// Mean squared error, used by some ablations and by PSNR sanity checks.
///
/// # Errors
///
/// Returns an error when the operand shapes do not broadcast together.
pub fn mse_loss(pred: &Var, target: &Var) -> Result<Var> {
    let d = pred.sub(target)?;
    d.mul(&d)?.mean_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    #[test]
    fn l1_matches_hand_computation() {
        let p = Var::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let t = Var::new(Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap());
        let l = l1_loss(&p, &t).unwrap().value();
        assert!((l.data()[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let p = Var::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let t = Var::new(Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap());
        let l = mse_loss(&p, &t).unwrap().value();
        assert!((l.data()[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn l1_gradient_is_sign_over_n() {
        let p = Var::param(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let t = Var::new(Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap());
        l1_loss(&p, &t).unwrap().backward().unwrap();
        assert_eq!(p.grad().unwrap().data(), &[0.5, -0.5]);
    }

    #[test]
    fn zero_loss_for_identical_inputs() {
        let p = Var::new(Tensor::ones(&[3, 3]));
        let t = Var::new(Tensor::ones(&[3, 3]));
        assert_eq!(l1_loss(&p, &t).unwrap().value().data()[0], 0.0);
        assert_eq!(mse_loss(&p, &t).unwrap().value().data()[0], 0.0);
    }
}
