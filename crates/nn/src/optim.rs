//! Optimizers and learning-rate schedules.

use scales_autograd::Var;
use scales_tensor::Tensor;

/// Adam optimizer with the paper's hyper-parameters as defaults
/// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
pub struct Adam {
    params: Vec<Var>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl Adam {
    /// Construct over a parameter list with a given learning rate.
    #[must_use]
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self { params, m, v, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Override the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clear gradients on every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply one bias-corrected Adam update using each parameter's
    /// accumulated gradient. Parameters without a gradient are skipped.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mi, vi), &gi) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data().iter())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let lr = self.lr;
            let eps = self.eps;
            let m_ref = &*m;
            let v_ref = &*v;
            p.update_value(|val| {
                for ((x, &mi), &vi) in val
                    .data_mut()
                    .iter_mut()
                    .zip(m_ref.data().iter())
                    .zip(v_ref.data().iter())
                {
                    let mh = mi / bc1;
                    let vh = vi / bc2;
                    *x -= lr * mh / (vh.sqrt() + eps);
                }
            });
        }
    }
}

/// Plain SGD, useful for deterministic unit tests.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
}

impl Sgd {
    /// Construct over a parameter list with a given learning rate.
    #[must_use]
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        Self { params, lr }
    }

    /// Clear gradients on every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply `p ← p − lr·∇p` to every parameter with a gradient.
    pub fn step(&self) {
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let lr = self.lr;
            p.update_value(|val| {
                for (x, &gi) in val.data_mut().iter_mut().zip(g.data().iter()) {
                    *x -= lr * gi;
                }
            });
        }
    }
}

/// The paper's schedule: start at `initial` and halve every
/// `halve_every` steps (the paper halves every 200 epochs of 300).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalvingSchedule {
    /// Starting learning rate.
    pub initial: f32,
    /// Steps between halvings.
    pub halve_every: u64,
}

impl HalvingSchedule {
    /// Learning rate at a given step.
    #[must_use]
    pub fn lr_at(&self, step: u64) -> f32 {
        let halvings = step.checked_div(self.halve_every).unwrap_or(0);
        self.initial * 0.5_f32.powi(halvings as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // minimise (x − 3)² from x = 0.
        let x = Var::param(Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        for _ in 0..200 {
            opt.zero_grad();
            let diff = x.add_scalar(-3.0);
            let loss = diff.mul(&diff).unwrap().sum_all().unwrap();
            loss.backward().unwrap();
            opt.step();
        }
        assert!((x.value().data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_descends() {
        let x = Var::param(Tensor::scalar(1.0));
        let opt = Sgd::new(vec![x.clone()], 0.5);
        opt.zero_grad();
        let loss = x.mul(&x).unwrap().sum_all().unwrap();
        loss.backward().unwrap();
        opt.step();
        assert_eq!(x.value().data()[0], 0.0); // 1 − 0.5·2
    }

    #[test]
    fn halving_schedule() {
        let s = HalvingSchedule { initial: 2e-4, halve_every: 100 };
        assert_eq!(s.lr_at(0), 2e-4);
        assert_eq!(s.lr_at(99), 2e-4);
        assert_eq!(s.lr_at(100), 1e-4);
        assert_eq!(s.lr_at(250), 0.5e-4);
    }

    #[test]
    fn step_without_grad_is_noop() {
        let x = Var::param(Tensor::scalar(1.5));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step();
        assert_eq!(x.value().data()[0], 1.5);
    }
}
