//! Weight initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scales_tensor::Tensor;

/// Deterministic RNG used across the reproduction; every experiment passes
/// an explicit seed so runs are repeatable.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample a standard normal via Box–Muller (keeps `rand` feature surface
/// minimal — no `rand_distr` dependency).
pub fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Kaiming-normal initialisation: `N(0, sqrt(2/fan_in))`, the standard for
/// ReLU convnets.
#[must_use]
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| randn(rng) * std).collect(), shape).expect("volume matches")
}

/// Xavier-uniform initialisation: `U(−a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
#[must_use]
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-a..a)).collect(), shape).expect("volume matches")
}

/// Uniform initialisation over `(-bound, bound)`.
#[must_use]
pub fn uniform(shape: &[usize], bound: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-bound..bound)).collect(), shape)
        .expect("volume matches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_normal(&[4, 4], 4, &mut rng(7));
        let b = kaiming_normal(&[4, 4], 4, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut r = rng(1);
        let t = kaiming_normal(&[64, 64], 64, &mut r);
        let std = t.variance().sqrt();
        let expect = (2.0f32 / 64.0).sqrt();
        assert!((std - expect).abs() < expect * 0.2, "std {std} vs {expect}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut r = rng(2);
        let t = xavier_uniform(&[32, 32], 32, 32, &mut r);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }
}
