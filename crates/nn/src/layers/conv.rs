//! Full-precision convolution layers.

use crate::init::{kaiming_normal, rng as seeded_rng};
use crate::module::Module;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::{Result, Tensor};

/// A full-precision 2-D convolution layer with optional bias.
///
/// Weight layout `[out_channels, in_channels, k, k]`, NCHW activations.
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    spec: Conv2dSpec,
    out_channels: usize,
}

impl Conv2d {
    /// Construct with Kaiming-normal weights and "same" padding.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        Self::with_spec(in_channels, out_channels, kernel, Conv2dSpec::same(kernel), true, rng)
    }

    /// Construct with an explicit spec and bias flag.
    #[must_use]
    pub fn with_spec(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = bias.then(|| Var::param(Tensor::zeros(&[1, out_channels, 1, 1])));
        Self { weight, bias, spec, out_channels }
    }

    /// The convolution weight parameter.
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The layer's convolution spec.
    #[must_use]
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

impl Module for Conv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        let y = input.conv2d(&self.weight, self.spec)?;
        match &self.bias {
            Some(b) => y.add(b),
            None => Ok(y),
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// A full-precision 1-D convolution layer (no bias), as used by the SCALES
/// channel re-scaling branch.
pub struct Conv1d {
    weight: Var,
    padding: usize,
}

impl Conv1d {
    /// Construct with Kaiming-normal weights and symmetric zero padding.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, padding: usize, rng: &mut StdRng) -> Self {
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel],
            in_channels * kernel,
            rng,
        ));
        Self { weight, padding }
    }

    /// The convolution weight parameter.
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }
}

impl Module for Conv1d {
    fn forward(&self, input: &Var) -> Result<Var> {
        input.conv1d(&self.weight, self.padding)
    }

    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }
}

/// Helper used in tests and examples: a deterministic layer RNG.
#[must_use]
pub fn test_rng() -> StdRng {
    seeded_rng(42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_shapes_and_params() {
        let mut r = test_rng();
        let c = Conv2d::new(3, 8, 3, &mut r);
        let x = Var::new(Tensor::ones(&[2, 3, 6, 6]));
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 8, 6, 6]);
        assert_eq!(c.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn conv2d_bias_trains() {
        let mut r = test_rng();
        let c = Conv2d::new(1, 1, 1, &mut r);
        let x = Var::new(Tensor::ones(&[1, 1, 2, 2]));
        let y = c.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        for p in c.params() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn conv1d_same_length() {
        let mut r = test_rng();
        let c = Conv1d::new(1, 1, 5, 2, &mut r);
        let x = Var::new(Tensor::ones(&[1, 1, 16]));
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 1, 16]);
    }
}
