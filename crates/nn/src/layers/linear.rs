//! Full-precision linear (dense) layer operating on the trailing axis.

use crate::init::xavier_uniform;
use crate::module::Module;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_tensor::{Result, Tensor};

/// A dense layer `y = x·Wᵀ + b` applied to the last axis of an arbitrary
/// leading shape (`[..., in] → [..., out]`).
///
/// Weight layout is `[out, in]` — output-channel first, matching the
/// per-channel weight binarizer.
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Construct with Xavier-uniform weights and a zero bias.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self::with_bias(in_features, out_features, true, rng)
    }

    /// Construct choosing whether a bias is present.
    #[must_use]
    pub fn with_bias(in_features: usize, out_features: usize, bias: bool, rng: &mut StdRng) -> Self {
        let weight = Var::param(xavier_uniform(&[out_features, in_features], in_features, out_features, rng));
        let bias = bias.then(|| Var::param(Tensor::zeros(&[out_features])));
        Self { weight, bias, in_features, out_features }
    }

    /// The `[out, in]` weight parameter.
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Apply with an externally-transformed weight (used by binary layers
    /// that binarize the weight before the product).
    ///
    /// # Errors
    ///
    /// Returns an error when the trailing axis differs from `in_features`.
    pub fn forward_with_weight(&self, input: &Var, weight: &Var) -> Result<Var> {
        let in_shape = input.shape();
        let last = *in_shape.last().ok_or_else(|| {
            scales_tensor::TensorError::InvalidArgument("linear needs rank >= 1".into())
        })?;
        if last != self.in_features {
            return Err(scales_tensor::TensorError::ShapeMismatch {
                lhs: in_shape.clone(),
                rhs: vec![self.in_features],
                op: "linear",
            });
        }
        let m: usize = in_shape[..in_shape.len() - 1].iter().product();
        let flat = input.reshape(&[m, self.in_features])?;
        let wt = weight.permute(&[1, 0])?;
        let mut y = flat.matmul(&wt)?;
        if let Some(b) = &self.bias {
            y = y.add(b)?;
        }
        let mut out_shape = in_shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_features;
        y.reshape(&out_shape)
    }
}

impl Module for Linear {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_with_weight(input, &self.weight)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn linear_maps_trailing_axis() {
        let mut r = rng(3);
        let l = Linear::new(4, 6, &mut r);
        let x = Var::new(Tensor::ones(&[2, 5, 4]));
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 5, 6]);
    }

    #[test]
    fn linear_rejects_bad_trailing_axis() {
        let mut r = rng(3);
        let l = Linear::new(4, 6, &mut r);
        let x = Var::new(Tensor::ones(&[2, 5]));
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn linear_grads_flow() {
        let mut r = rng(3);
        let l = Linear::new(3, 2, &mut r);
        let x = Var::param(Tensor::ones(&[1, 3]));
        let y = l.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert!(x.grad().is_some());
        assert!(l.weight().grad().is_some());
    }
}
