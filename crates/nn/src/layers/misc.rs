//! Small stateless / lightly-parameterised layers.

use crate::module::Module;
use scales_autograd::Var;
use scales_tensor::{Result, Tensor};

/// Rectified linear unit as a module.
pub struct Relu;

impl Module for Relu {
    fn forward(&self, input: &Var) -> Result<Var> {
        Ok(input.relu())
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// GELU as a module (transformer MLPs).
pub struct Gelu;

impl Module for Gelu {
    fn forward(&self, input: &Var) -> Result<Var> {
        Ok(input.gelu())
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Leaky ReLU as a module.
pub struct LeakyRelu {
    /// Negative-region slope.
    pub slope: f32,
}

impl Module for LeakyRelu {
    fn forward(&self, input: &Var) -> Result<Var> {
        Ok(input.leaky_relu(self.slope))
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// PReLU with a single learnable negative slope (SRResNet's activation).
pub struct Prelu {
    slope: Var,
}

impl Prelu {
    /// Construct with the conventional initial slope 0.25.
    #[must_use]
    pub fn new() -> Self {
        Self { slope: Var::param(Tensor::from_vec(vec![0.25], &[1]).expect("scalar shape")) }
    }
}

impl Default for Prelu {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Prelu {
    fn forward(&self, input: &Var) -> Result<Var> {
        // prelu(x) = relu(x) + a · (x − relu(x))
        let pos = input.relu();
        let neg = input.sub(&pos)?;
        pos.add(&neg.mul(&self.slope)?)
    }
    fn params(&self) -> Vec<Var> {
        vec![self.slope.clone()]
    }
}

/// Sub-pixel upsampling module.
pub struct PixelShuffle {
    /// Upscale factor.
    pub factor: usize,
}

impl Module for PixelShuffle {
    fn forward(&self, input: &Var) -> Result<Var> {
        input.pixel_shuffle(self.factor)
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Global average pooling module.
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, input: &Var) -> Result<Var> {
        input.global_avg_pool()
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Sigmoid gate module.
pub struct Sigmoid;

impl Module for Sigmoid {
    fn forward(&self, input: &Var) -> Result<Var> {
        Ok(input.sigmoid())
    }
    fn params(&self) -> Vec<Var> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelu_halves_negative_slope_when_a_quarter() {
        let p = Prelu::new();
        let x = Var::new(Tensor::from_vec(vec![-2.0, 4.0], &[2]).unwrap());
        let y = p.forward(&x).unwrap().value();
        assert_eq!(y.data(), &[-0.5, 4.0]);
    }

    #[test]
    fn pixel_shuffle_module_matches_op() {
        let m = PixelShuffle { factor: 2 };
        let x = Var::new(Tensor::ones(&[1, 4, 2, 2]));
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 1, 4, 4]);
    }

    #[test]
    fn stateless_modules_have_no_params() {
        assert!(Relu.params().is_empty());
        assert!(Gelu.params().is_empty());
        assert!(Sigmoid.params().is_empty());
        assert!(GlobalAvgPool.params().is_empty());
    }
}
