//! Normalisation layers: LayerNorm (transformer blocks) and a
//! batch-statistics BatchNorm2d (kept for the E2FIF/BAM-era baselines; the
//! paper's LSF removes BN from the binary SR networks).

use crate::module::Module;
use scales_autograd::Var;
use scales_tensor::{Result, Tensor};

/// Layer normalisation over the trailing axis with learnable affine
/// parameters, as used in every transformer block.
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
    features: usize,
}

impl LayerNorm {
    /// Construct with unit gain, zero shift and the conventional `1e-5`
    /// epsilon.
    #[must_use]
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Var::param(Tensor::ones(&[features])),
            beta: Var::param(Tensor::zeros(&[features])),
            eps: 1e-5,
            features,
        }
    }

    /// Feature count of the trailing axis this layer normalises.
    #[must_use]
    pub fn features(&self) -> usize {
        self.features
    }
}

impl Module for LayerNorm {
    fn forward(&self, input: &Var) -> Result<Var> {
        let mean = input.mean_axis(input.shape().len() - 1)?;
        let centered = input.sub(&mean)?;
        let var = centered.mul(&centered)?.mean_axis(input.shape().len() - 1)?;
        let denom = var.add_scalar(self.eps).sqrt();
        let normed = centered.div(&denom)?;
        normed.mul(&self.gamma)?.add(&self.beta)
    }

    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Batch normalisation for NCHW activations using **batch statistics** in
/// both training and evaluation.
///
/// The reproduction trains tiny models for a handful of iterations, so
/// running-average statistics would never converge; batch statistics keep
/// the baseline honest while preserving BN's variance-squashing behaviour
/// (the property the paper's motivation section contrasts against).
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    eps: f32,
}

impl BatchNorm2d {
    /// Construct with unit gain and zero shift.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Var::param(Tensor::ones(&[1, channels, 1, 1])),
            beta: Var::param(Tensor::zeros(&[1, channels, 1, 1])),
            eps: 1e-5,
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        // Normalise per channel over (N, H, W): permute stats axes via two
        // keepdim means.
        let s = input.shape();
        if s.len() != 4 {
            return Err(scales_tensor::TensorError::RankMismatch {
                expected: 4,
                actual: s.len(),
                op: "batchnorm2d",
            });
        }
        let mean = input.mean_axis(0)?.mean_axis(2)?.mean_axis(3)?;
        let centered = input.sub(&mean)?;
        let var = centered.mul(&centered)?.mean_axis(0)?.mean_axis(2)?.mean_axis(3)?;
        let denom = var.add_scalar(self.eps).sqrt();
        let normed = centered.div(&denom)?;
        normed.mul(&self.gamma)?.add(&self.beta)
    }

    fn params(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(4);
        let x = Var::new(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]).unwrap());
        let y = ln.forward(&x).unwrap().value();
        for row in 0..2 {
            let r = &y.data()[row * 4..(row + 1) * 4];
            let m: f32 = r.iter().sum::<f32>() / 4.0;
            let v: f32 = r.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn layernorm_grads_flow_to_affine() {
        let ln = LayerNorm::new(3);
        let x = Var::param(Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]).unwrap());
        let y = ln.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert!(ln.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn batchnorm_squashes_channel_variance() {
        let bn = BatchNorm2d::new(2);
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 3.0).collect();
        let x = Var::new(Tensor::from_vec(data, &[2, 2, 2, 2]).unwrap());
        let y = bn.forward(&x).unwrap().value();
        // Per-channel variance should be ~1 after normalisation.
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..2 {
                for h in 0..2 {
                    for w in 0..2 {
                        vals.push(y.at(&[n, c, h, w]));
                    }
                }
            }
            let m: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let v: f32 = vals.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / vals.len() as f32;
            assert!(m.abs() < 1e-4);
            assert!((v - 1.0).abs() < 0.05);
        }
    }
}
