//! Layer catalogue.

mod conv;
mod linear;
mod misc;
mod norm;

pub use conv::{test_rng, Conv1d, Conv2d};
pub use linear::Linear;
pub use misc::{Gelu, GlobalAvgPool, LeakyRelu, PixelShuffle, Prelu, Relu, Sigmoid};
pub use norm::{BatchNorm2d, LayerNorm};
