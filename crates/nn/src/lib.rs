//! # scales-nn
//!
//! Neural-network building blocks for the SCALES reproduction, built on
//! [`scales_autograd`]: the [`Module`] trait, a layer catalogue
//! (convolutions, linear, normalisation, activations, pixel shuffle), the
//! Adam/SGD optimizers with the paper's hyper-parameters, and L1/MSE losses.
//!
//! ```
//! use scales_nn::{layers::Conv2d, init, Module};
//! use scales_autograd::Var;
//! use scales_tensor::Tensor;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let mut rng = init::rng(0);
//! let conv = Conv2d::new(3, 8, 3, &mut rng);
//! let y = conv.forward(&Var::new(Tensor::ones(&[1, 3, 8, 8])))?;
//! assert_eq!(y.shape(), vec![1, 8, 8, 8]);
//! # Ok(())
//! # }
//! ```

pub mod init;
pub mod layers;
pub mod loss;
mod module;
pub mod optim;

pub use module::{Module, Sequential};
