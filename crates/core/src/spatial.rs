//! Spatial re-scaling — paper §IV-B, Fig. 6.
//!
//! Predicts an input-dependent `B×1×H×W` (CNN) or `B×L×1` (transformer)
//! scale map from the **full-precision** pre-binarization activation, then
//! multiplies it onto the binary layer's output. Because the predictor runs
//! on the FP input at inference time, the scale is *not* a fixed constant —
//! this is how SCALES captures pixel-to-pixel and image-to-image variation.

use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::layers::{Conv2d, Linear};
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::Result;

/// Spatial re-scaling for NCHW activations: FP 1×1 conv (`C → 1`) followed
/// by a sigmoid (Fig. 6a).
pub struct SpatialRescale {
    proj: Conv2d,
}

impl SpatialRescale {
    /// Build the predictor branch for `channels` input channels.
    #[must_use]
    pub fn new(channels: usize, rng: &mut StdRng) -> Self {
        let spec = Conv2dSpec { stride: 1, padding: 0 };
        Self { proj: Conv2d::with_spec(channels, 1, 1, spec, true, rng) }
    }

    /// Predict the `B×1×H×W` scale map from the FP activation.
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible geometry.
    pub fn scale_map(&self, fp_input: &Var) -> Result<Var> {
        Ok(self.proj.forward(fp_input)?.sigmoid())
    }

    /// Apply to a binary-branch output: `y ⊙ S(a)` (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible geometry.
    pub fn apply(&self, binary_out: &Var, fp_input: &Var) -> Result<Var> {
        binary_out.mul(&self.scale_map(fp_input)?)
    }
}

impl Module for SpatialRescale {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.scale_map(input)
    }

    fn params(&self) -> Vec<Var> {
        self.proj.params()
    }
}

/// Spatial re-scaling for `B×L×C` token activations: FP linear (`C → 1`)
/// followed by a sigmoid (Fig. 6b).
pub struct SpatialRescaleToken {
    proj: Linear,
}

impl SpatialRescaleToken {
    /// Build the predictor branch for `channels` token features.
    #[must_use]
    pub fn new(channels: usize, rng: &mut StdRng) -> Self {
        Self { proj: Linear::new(channels, 1, rng) }
    }

    /// Predict the `B×L×1` scale map from the FP token activation.
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible geometry.
    pub fn scale_map(&self, fp_input: &Var) -> Result<Var> {
        Ok(self.proj.forward(fp_input)?.sigmoid())
    }

    /// Apply to a binary-branch output: `y ⊙ S(a)`.
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible geometry.
    pub fn apply(&self, binary_out: &Var, fp_input: &Var) -> Result<Var> {
        binary_out.mul(&self.scale_map(fp_input)?)
    }
}

impl Module for SpatialRescaleToken {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.scale_map(input)
    }

    fn params(&self) -> Vec<Var> {
        self.proj.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;
    use scales_tensor::Tensor;

    #[test]
    fn scale_map_shape_and_range() {
        let mut r = rng(11);
        let s = SpatialRescale::new(4, &mut r);
        let x = Var::new(Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[1, 4, 4, 4]).unwrap());
        let m = s.scale_map(&x).unwrap().value();
        assert_eq!(m.shape(), &[1, 1, 4, 4]);
        assert!(m.min() > 0.0 && m.max() < 1.0, "sigmoid range");
    }

    #[test]
    fn apply_broadcasts_over_channels() {
        let mut r = rng(11);
        let s = SpatialRescale::new(2, &mut r);
        let fp = Var::new(Tensor::ones(&[1, 2, 3, 3]));
        let y = Var::new(Tensor::ones(&[1, 8, 3, 3]));
        let out = s.apply(&y, &fp).unwrap();
        assert_eq!(out.shape(), vec![1, 8, 3, 3]);
    }

    #[test]
    fn map_is_input_dependent() {
        let mut r = rng(12);
        let s = SpatialRescale::new(2, &mut r);
        let a = Var::new(Tensor::full(&[1, 2, 2, 2], 1.0));
        let b = Var::new(Tensor::full(&[1, 2, 2, 2], -1.0));
        let ma = s.scale_map(&a).unwrap().value();
        let mb = s.scale_map(&b).unwrap().value();
        assert_ne!(ma.data(), mb.data(), "different inputs must give different scales");
    }

    #[test]
    fn token_variant_shapes() {
        let mut r = rng(13);
        let s = SpatialRescaleToken::new(6, &mut r);
        let x = Var::new(Tensor::ones(&[2, 5, 6]));
        let m = s.scale_map(&x).unwrap();
        assert_eq!(m.shape(), vec![2, 5, 1]);
        let y = Var::new(Tensor::ones(&[2, 5, 6]));
        assert_eq!(s.apply(&y, &x).unwrap().shape(), vec![2, 5, 6]);
    }

    #[test]
    fn predictor_params_are_tiny() {
        let mut r = rng(14);
        let s = SpatialRescale::new(64, &mut r);
        // 64 weights + 1 bias: negligible next to a 64×64×3×3 binary conv.
        assert_eq!(s.param_count(), 65);
    }
}
