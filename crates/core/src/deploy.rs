//! Deployment: fold trained binary layers into the bit-packed
//! XNOR-popcount inference path.
//!
//! [`DeployedScalesConv2d`] lowers a single [`ScalesConv2d`];
//! [`DeployedBodyConv`] lowers *any* [`BodyConv`] method variant (FP,
//! E2FIF, BTM, BAM, BiBERT-style, SCALES), which is what whole-network
//! lowering in `scales-models` builds on.
//!
//! This is the Larq role in the paper's Table VI: after training, the
//! latent FP weights are sign-packed once, the weight scale `s_c` and the
//! learned layer scale `α` fold into the per-channel output scale, the
//! channel threshold `β` folds into an input shift (since
//! `sign((x−β)/α) = sign(x−β)` for `α > 0`), and only the two small
//! re-scaling branches plus the skip run in floating point.
//!
//! [`DeployedScalesConv2d::forward`] is numerically equivalent to the
//! training-path forward (verified by unit and integration tests).

use crate::conv::ScalesConv2d;
use crate::factory::BodyConv;
use scales_nn::Module as _;
use scales_binary::BinaryConv2d;
use scales_tensor::ops::{conv1d, conv2d, conv2d_into, global_avg_pool, sigmoid, Conv2dSpec};
use scales_tensor::workspace::{sized, ConvScratch};
use scales_tensor::{Result, Tensor, TensorError};

/// Why a `Deployed`-precision serving engine is running the training path
/// instead of a lowered graph.
///
/// Produced when whole-network lowering fails (e.g. the transformer
/// family has no deployment lowering yet); the serving layer surfaces it
/// so operators can see the degradation instead of silently paying the
/// tape-building cost per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployFallback {
    reason: String,
}

impl DeployFallback {
    /// Record a fallback with the lowering failure's message.
    #[must_use]
    pub fn new(reason: impl Into<String>) -> Self {
        Self { reason: reason.into() }
    }

    /// The lowering failure that forced the fallback.
    #[must_use]
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for DeployFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serving the training path: {}", self.reason)
    }
}

impl std::error::Error for DeployFallback {}

/// A trained SCALES convolution lowered to the packed binary kernel.
pub struct DeployedScalesConv2d {
    conv: BinaryConv2d,
    /// Per-input-channel threshold β (empty when LSF was disabled).
    beta: Vec<f32>,
    /// Spatial branch: 1×1 conv weight `[1, C, 1, 1]` and bias.
    spatial: Option<(Tensor, f32)>,
    /// Channel branch: Conv1d weight `[1, 1, k]`.
    channel: Option<Tensor>,
    skip: bool,
    in_channels: usize,
}

impl DeployedScalesConv2d {
    /// Fold a trained layer into packed form.
    ///
    /// # Errors
    ///
    /// Returns an error when the trained layer's tensors are malformed
    /// (cannot happen for layers built by this crate).
    pub fn from_trained(layer: &ScalesConv2d) -> Result<Self> {
        let weight = layer.weight().value();
        let oc = weight.shape()[0];
        let ic = weight.shape()[1];
        let per = weight.len() / oc;
        let mut conv = BinaryConv2d::from_float_weight(&weight)?;
        // Fold α into the per-channel scales: ŷ = α·s_c·(xnor dot).
        let (alpha, beta) = match layer.lsf() {
            Some(lsf) => {
                let a = lsf.alpha().value().data()[0].max(1e-6);
                (a, lsf.beta().value().data().to_vec())
            }
            None => (1.0, Vec::new()),
        };
        let scales: Vec<f32> = (0..oc)
            .map(|c| {
                let chunk = &weight.data()[c * per..(c + 1) * per];
                alpha * chunk.iter().map(|v| v.abs()).sum::<f32>() / per as f32
            })
            .collect();
        conv.set_scales(scales)?;
        let spatial = match layer.spatial() {
            Some(s) => {
                let params = s.params();
                if params.len() != 2 {
                    return Err(TensorError::InvalidArgument(
                        "spatial branch must hold weight and bias".into(),
                    ));
                }
                Some((params[0].value(), params[1].value().data()[0]))
            }
            None => None,
        };
        let channel = layer.channel().map(|c| c.params()[0].value());
        Ok(Self {
            conv,
            beta,
            spatial,
            channel,
            skip: layer.has_skip(),
            in_channels: ic,
        })
    }

    /// Rebuild a lowered layer from its serialized parts: the packed
    /// convolution, the folded channel thresholds β (empty when LSF was
    /// off), the spatial branch (1×1 map weight `[1, C, 1, 1]` plus bias),
    /// the channel branch Conv1d kernel `[1, 1, k]`, the FP-skip flag, and
    /// the input channel count. Inverse of the accessors below.
    ///
    /// # Errors
    ///
    /// Returns an error when any part disagrees with the layer geometry
    /// the forward assumes: β must be empty or one value per input
    /// channel, the packed conv must consume `in_channels`, the spatial
    /// map must be a `[1, in_channels, 1, 1]` 1×1 conv weight, and the
    /// channel kernel must be `[1, 1, odd]` gating at most `in_channels`
    /// outputs. The parts may come from an untrusted serialized artifact,
    /// so a violation must be a typed error here — never an
    /// out-of-bounds panic at the first forward.
    pub fn from_parts(
        conv: BinaryConv2d,
        beta: Vec<f32>,
        spatial: Option<(Tensor, f32)>,
        channel: Option<Tensor>,
        skip: bool,
        in_channels: usize,
    ) -> Result<Self> {
        if !beta.is_empty() && beta.len() != in_channels {
            return Err(TensorError::LengthMismatch { expected: in_channels, actual: beta.len() });
        }
        if conv.in_channels() != in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![conv.out_channels(), conv.in_channels()],
                rhs: vec![conv.out_channels(), in_channels],
                op: "scales conv packed-weight channels",
            });
        }
        if let Some((map, _)) = &spatial {
            if map.shape() != [1, in_channels, 1, 1] {
                return Err(TensorError::ShapeMismatch {
                    lhs: map.shape().to_vec(),
                    rhs: vec![1, in_channels, 1, 1],
                    op: "scales conv spatial map",
                });
            }
            // The gate is computed on the *input* grid, so the packed conv
            // must be shape-preserving (stride-1 "same") for the per-pixel
            // indexing to line up; anything else would read out of bounds
            // (padding > k/2) or gate misaligned pixels (stride > 1).
            let spec = conv.spec();
            if spec.stride != 1 || conv.kernel() != 2 * spec.padding + 1 {
                return Err(TensorError::InvalidArgument(format!(
                    "scales conv with a spatial branch needs a stride-1 \"same\" spec, got \
                     stride {} padding {} for kernel {}",
                    spec.stride,
                    spec.padding,
                    conv.kernel(),
                )));
            }
        }
        if let Some(k) = &channel {
            let ok = k.rank() == 3
                && k.shape()[0] == 1
                && k.shape()[1] == 1
                && k.shape()[2] % 2 == 1;
            // The gate indexes the mixed tokens by output channel, so the
            // forward can only serve oc ≤ ic with this branch — exactly
            // what every trained layer satisfies.
            if !ok || conv.out_channels() > in_channels {
                return Err(TensorError::InvalidArgument(format!(
                    "scales conv channel branch needs a [1, 1, odd] kernel gating at most \
                     {in_channels} channels, got {:?} for {} outputs",
                    k.shape(),
                    conv.out_channels(),
                )));
            }
        }
        Ok(Self { conv, beta, spatial, channel, skip, in_channels })
    }

    /// The packed binary convolution with folded α·s_c scales.
    #[must_use]
    pub fn conv(&self) -> &BinaryConv2d {
        &self.conv
    }

    /// The folded per-input-channel thresholds β (empty without LSF).
    #[must_use]
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// The spatial re-scaling branch: 1×1 map weight and bias.
    #[must_use]
    pub fn spatial(&self) -> Option<(&Tensor, f32)> {
        self.spatial.as_ref().map(|(w, b)| (w, *b))
    }

    /// The channel re-scaling branch's Conv1d kernel.
    #[must_use]
    pub fn channel(&self) -> Option<&Tensor> {
        self.channel.as_ref()
    }

    /// Whether the FP identity skip applies.
    #[must_use]
    pub fn skip(&self) -> bool {
        self.skip
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.conv.out_channels()
    }

    /// Run packed inference on `[N, C, H, W]`, reproducing the training
    /// path exactly (up to f32 rounding in the FP branches).
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "deployed conv" });
        }
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        if c != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![0, self.in_channels, 0, 0],
                op: "deployed conv channels",
            });
        }
        // β folds into an input shift before the sign packing.
        let shifted = if self.beta.is_empty() {
            input.clone()
        } else {
            let mut t = input.clone();
            for b in 0..n {
                for ci in 0..c {
                    let beta = self.beta[ci];
                    for v in &mut t.data_mut()[(b * c + ci) * h * w..(b * c + ci + 1) * h * w] {
                        *v -= beta;
                    }
                }
            }
            t
        };
        let mut y = self.conv.forward(&shifted)?;
        let oc = y.shape()[1];
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        // Spatial re-scaling from the FP input.
        if let Some((wmap, bias)) = &self.spatial {
            let m = conv2d(input, wmap, Conv2dSpec { stride: 1, padding: 0 })?;
            for b in 0..n {
                for p in 0..oh * ow {
                    let g = sigmoid(m.data()[b * oh * ow + p] + bias);
                    for co in 0..oc {
                        y.data_mut()[((b * oc) + co) * oh * ow + p] *= g;
                    }
                }
            }
        }
        // Channel re-scaling from the FP input.
        if let Some(k) = &self.channel {
            let pooled = global_avg_pool(input)?; // [N, C, 1, 1]
            let tokens = pooled.reshape(&[n, 1, c])?;
            let mixed = conv1d(&tokens, k, k.shape()[2] / 2)?;
            for b in 0..n {
                for co in 0..oc {
                    let g = sigmoid(mixed.data()[b * c + co]);
                    for v in &mut y.data_mut()[((b * oc) + co) * oh * ow..((b * oc) + co + 1) * oh * ow] {
                        *v *= g;
                    }
                }
            }
        }
        if self.skip {
            y = y.zip_map(input, |a, b| a + b)?;
        }
        Ok(y)
    }

    /// The zero-allocation core of [`DeployedScalesConv2d::forward`]:
    /// serve a flat `[n, in_channels, h, w]` input into a caller-provided
    /// output buffer (fully overwritten), staging the β-shifted input, the
    /// packed-bit buffers and the re-scaling gates in a reusable
    /// [`ConvScratch`]. Bit-identical to the allocating forward.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched lengths or geometry.
    pub fn forward_into(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        scratch: &mut ConvScratch,
        out: &mut [f32],
    ) -> Result<()> {
        let c = self.in_channels;
        let k = self.conv.kernel();
        let spec = self.conv.spec();
        let (oh, ow) = (spec.out_extent(h, k)?, spec.out_extent(w, k)?);
        let oc = self.conv.out_channels();
        if input.len() != n * c * h * w {
            return Err(TensorError::LengthMismatch { expected: n * c * h * w, actual: input.len() });
        }
        let hw = h * w;
        let ConvScratch { shifted, plane, chan, chan2, bits, .. } = scratch;
        // β folds into an input shift before the sign packing.
        if self.beta.is_empty() {
            self.conv.forward_into(input, n, h, w, bits, out)?;
        } else {
            let src = sized(shifted, input.len());
            src.copy_from_slice(input);
            for b in 0..n {
                for ci in 0..c {
                    let beta = self.beta[ci];
                    for v in &mut src[(b * c + ci) * hw..(b * c + ci + 1) * hw] {
                        *v -= beta;
                    }
                }
            }
            self.conv.forward_into(src, n, h, w, bits, out)?;
        }
        // Spatial re-scaling from the FP input: the per-pixel channel dot
        // replicates `conv2d(input, wmap, 1×1)` — accumulation in
        // ascending-channel order, matching the GEMM's per-element order.
        if let Some((wmap, bias)) = &self.spatial {
            let gate = sized(plane, n * hw);
            let wd = wmap.data();
            for b in 0..n {
                for p in 0..hw {
                    let mut acc = 0.0f32;
                    for (ci, &wv) in wd.iter().enumerate() {
                        acc += wv * input[(b * c + ci) * hw + p];
                    }
                    gate[b * hw + p] = acc;
                }
            }
            for b in 0..n {
                for p in 0..oh * ow {
                    let g = sigmoid(gate[b * hw + p] + bias);
                    for co in 0..oc {
                        out[((b * oc) + co) * (oh * ow) + p] *= g;
                    }
                }
            }
        }
        // Channel re-scaling from the FP input (global average pool →
        // 1-D conv over channel tokens → sigmoid gate).
        if let Some(kker) = &self.channel {
            let pooled = sized(chan, n * c);
            scales_tensor::ops::global_avg_pool_into(input, n, c, hw, pooled);
            let kd = kker.data();
            let pad = kd.len() / 2;
            let mixed = sized(chan2, n * c);
            for b in 0..n {
                for t in 0..c {
                    let mut acc = 0.0f32;
                    for (ki, &kv) in kd.iter().enumerate() {
                        let pos = t as isize + ki as isize - pad as isize;
                        if pos < 0 || pos >= c as isize {
                            continue;
                        }
                        acc += pooled[b * c + pos as usize] * kv;
                    }
                    mixed[b * c + t] = acc;
                }
            }
            for b in 0..n {
                for co in 0..oc {
                    let g = sigmoid(mixed[b * c + co]);
                    for v in &mut out[((b * oc) + co) * (oh * ow)..((b * oc) + co + 1) * (oh * ow)] {
                        *v *= g;
                    }
                }
            }
        }
        if self.skip {
            add_identity_skip(out, (n, oc, oh, ow), input, (n, c, h, w))?;
        }
        Ok(())
    }
}

/// In-place FP identity skip `out += input`, requiring identical shapes —
/// the deployed graphs only attach skips to shape-preserving layers.
fn add_identity_skip(
    out: &mut [f32],
    out_dims: (usize, usize, usize, usize),
    input: &[f32],
    in_dims: (usize, usize, usize, usize),
) -> Result<()> {
    if out_dims != in_dims {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![out_dims.0, out_dims.1, out_dims.2, out_dims.3],
            rhs: vec![in_dims.0, in_dims.1, in_dims.2, in_dims.3],
            op: "deployed conv identity skip",
        });
    }
    for (o, &x) in out.iter_mut().zip(input.iter()) {
        *o += x;
    }
    Ok(())
}

/// A full-precision convolution in deployed (tape-free) form: raw tensors
/// plus the spec, evaluated with the backend conv kernel directly.
pub struct FloatConv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
}

impl FloatConv2d {
    /// Build from a weight `[OC, IC, kh, kw]`, an optional bias that
    /// broadcasts over `[N, OC, OH, OW]` (e.g. `[1, OC, 1, 1]`), and a spec.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-rank-4 weight.
    pub fn new(weight: Tensor, bias: Option<Tensor>, spec: Conv2dSpec) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: weight.rank(),
                op: "deployed float conv weight",
            });
        }
        Ok(Self { weight, bias, spec })
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// The weight tensor `[OC, IC, kh, kw]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The broadcastable bias tensor, when present.
    #[must_use]
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// The convolution spec (stride and padding).
    #[must_use]
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Run the convolution (plus bias) on `[N, IC, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let y = conv2d(input, &self.weight, self.spec)?;
        match &self.bias {
            Some(b) => y.zip_map(b, |a, bv| a + bv),
            None => Ok(y),
        }
    }

    /// Output dimensions `(oc, oh, ow)` for an input of spatial extent
    /// `(h, w)` — the shape-inference hook the planned executor uses.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel does not fit the padded input.
    pub fn out_shape(&self, h: usize, w: usize) -> Result<(usize, usize, usize)> {
        let (kh, kw) = (self.weight.shape()[2], self.weight.shape()[3]);
        Ok((self.weight.shape()[0], self.spec.out_extent(h, kh)?, self.spec.out_extent(w, kw)?))
    }

    /// The zero-allocation core of [`FloatConv2d::forward`]: convolve a
    /// flat `[n, ic, h, w]` input into a caller-provided output buffer
    /// (fully overwritten), staging im2col in a reusable grow-only
    /// buffer. Bit-identical to the allocating forward.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched lengths or geometry, or a bias
    /// whose broadcast would change the output shape.
    pub fn forward_into(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        col: &mut Vec<f32>,
        out: &mut [f32],
    ) -> Result<()> {
        let ic = self.weight.shape()[1];
        conv2d_into(input, n, ic, h, w, &self.weight, self.spec, col, out)?;
        if let Some(bias) = &self.bias {
            let (oc, oh, ow) = self.out_shape(h, w)?;
            if bias.shape() == [1, oc, 1, 1] {
                // The canonical lowered bias: one value per channel.
                let bd = bias.data();
                for b in 0..n {
                    for (co, &bv) in bd.iter().enumerate() {
                        for v in &mut out[((b * oc) + co) * oh * ow..((b * oc) + co + 1) * oh * ow] {
                            *v += bv;
                        }
                    }
                }
            } else {
                // General broadcastable bias (possible via
                // `FloatConv2d::new` from serialized parts): replicate the
                // allocating `zip_map` element-for-element.
                let yshape = [n, oc, oh, ow];
                let bshape = scales_tensor::shape::broadcast_shape(&yshape, bias.shape())?;
                if bshape != yshape {
                    return Err(TensorError::ShapeMismatch {
                        lhs: yshape.to_vec(),
                        rhs: bias.shape().to_vec(),
                        op: "deployed float conv bias broadcast",
                    });
                }
                for (i, v) in out.iter_mut().enumerate() {
                    *v += bias.data()
                        [scales_tensor::shape::broadcast_src_index(i, &yshape, bias.shape())];
                }
            }
        }
        Ok(())
    }
}

/// Per-channel batch-statistics batch norm in deployed form, matching
/// `scales_nn::layers::BatchNorm2d` (which uses batch statistics at
/// evaluation too — see its module docs for why).
fn batchnorm_batch_stats(y: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
    // Same nested-mean reduction order as the training layer so the two
    // paths agree to f32 rounding.
    let mean = y.mean_axis(0, true)?.mean_axis(2, true)?.mean_axis(3, true)?;
    let centered = y.zip_map(&mean, |a, m| a - m)?;
    let var = centered
        .zip_map(&centered, |a, b| a * b)?
        .mean_axis(0, true)?
        .mean_axis(2, true)?
        .mean_axis(3, true)?;
    let denom = var.map(|v| (v + eps).sqrt());
    let normed = centered.zip_map(&denom, |a, d| a / d)?;
    normed.zip_map(gamma, |a, g| a * g)?.zip_map(beta, |a, b| a + b)
}

/// In-place scratch-buffered twin of [`batchnorm_batch_stats`]: the same
/// staged reductions (sum over batch, then height, then width, each
/// divided by its extent after the full sum) in the same per-element
/// order, so the result is bit-identical — without allocating the six
/// intermediate tensors.
#[allow(clippy::too_many_arguments)]
fn batchnorm_batch_stats_inplace(
    y: &mut [f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    scratch: &mut ConvScratch,
) -> Result<()> {
    if gamma.len() != c || beta.len() != c {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![1, c, 1, 1],
            rhs: gamma.shape().to_vec(),
            op: "deployed batch-norm affine shape",
        });
    }
    let (hw, chw) = (h * w, c * h * w);
    let ConvScratch { col, plane, chan, chan2, .. } = scratch;
    let m1 = sized(col, chw); // per-(c,h,w) batch mean
    let m2 = sized(plane, c * w); // then reduced over height
    let mean = sized(chan, c); // then reduced over width
    let denom = sized(chan2, c);
    // Per-channel mean, staged exactly like mean_axis(0) → (2) → (3).
    m1.fill(0.0);
    for b in 0..n {
        for (o, &v) in m1.iter_mut().zip(&y[b * chw..(b + 1) * chw]) {
            *o += v;
        }
    }
    m1.iter_mut().for_each(|v| *v /= n as f32);
    m2.fill(0.0);
    for ci in 0..c {
        for row in 0..h {
            for (o, &v) in m2[ci * w..(ci + 1) * w].iter_mut().zip(&m1[ci * hw + row * w..]) {
                *o += v;
            }
        }
    }
    m2.iter_mut().for_each(|v| *v /= h as f32);
    for (ci, m) in mean.iter_mut().enumerate() {
        *m = m2[ci * w..(ci + 1) * w].iter().sum::<f32>() / w as f32;
    }
    // Center in place, then run the identical staged reduction over the
    // squared values for the variance.
    for b in 0..n {
        for ci in 0..c {
            let m = mean[ci];
            for v in &mut y[(b * c + ci) * hw..(b * c + ci + 1) * hw] {
                *v -= m;
            }
        }
    }
    m1.fill(0.0);
    for b in 0..n {
        for (o, &v) in m1.iter_mut().zip(&y[b * chw..(b + 1) * chw]) {
            *o += v * v;
        }
    }
    m1.iter_mut().for_each(|v| *v /= n as f32);
    m2.fill(0.0);
    for ci in 0..c {
        for row in 0..h {
            for (o, &v) in m2[ci * w..(ci + 1) * w].iter_mut().zip(&m1[ci * hw + row * w..]) {
                *o += v;
            }
        }
    }
    m2.iter_mut().for_each(|v| *v /= h as f32);
    for (ci, d) in denom.iter_mut().enumerate() {
        let var = m2[ci * w..(ci + 1) * w].iter().sum::<f32>() / w as f32;
        *d = (var + eps).sqrt();
    }
    // normed·γ + β, fused per element in the zip_map order
    // ((centered / denom) · γ) + β.
    let (gd, bd) = (gamma.data(), beta.data());
    for b in 0..n {
        for ci in 0..c {
            let (d, g, be) = (denom[ci], gd[ci], bd[ci]);
            for v in &mut y[(b * c + ci) * hw..(b * c + ci + 1) * hw] {
                *v = *v / d * g + be;
            }
        }
    }
    Ok(())
}

/// Any trained body convolution lowered to its deployment form: packed
/// XNOR-popcount kernels for the binary methods, raw-tensor float
/// convolution for the FP method. This is what [`DeployedNetwork`] graphs
/// are made of.
///
/// [`DeployedNetwork`]: https://docs.rs/scales-models
pub enum DeployedBodyConv {
    /// Full-precision convolution (FP method rows).
    Float(FloatConv2d),
    /// SCALES layer with folded scales and FP re-scaling branches.
    Scales(DeployedScalesConv2d),
    /// E2FIF: packed conv → batch-stats BN → FP identity skip.
    E2fif {
        /// Packed binary convolution with XNOR-Net per-channel scales.
        conv: BinaryConv2d,
        /// BN gain `[1, OC, 1, 1]`.
        gamma: Tensor,
        /// BN shift `[1, OC, 1, 1]`.
        beta: Tensor,
        /// Whether the FP identity skip applies (square layers).
        skip: bool,
    },
    /// BTM: per-image mean threshold → packed conv → FP identity skip.
    Btm {
        /// Packed binary convolution.
        conv: BinaryConv2d,
        /// Whether the FP identity skip applies.
        skip: bool,
    },
    /// BAM: packed conv rescaled by the FP accumulation map `mean_c |x|`.
    Bam {
        /// Packed binary convolution.
        conv: BinaryConv2d,
        /// Whether the FP identity skip applies.
        skip: bool,
    },
    /// Plain sign binary conv with identity skip (BiBERT-style bodies).
    Basic {
        /// Packed binary convolution.
        conv: BinaryConv2d,
        /// Whether the FP identity skip applies.
        skip: bool,
    },
}

impl DeployedBodyConv {
    /// Lower a trained [`BodyConv`] of any method to its packed form.
    ///
    /// # Errors
    ///
    /// Returns an error when the trained layer's tensors are malformed.
    pub fn from_trained(layer: &BodyConv) -> Result<Self> {
        Ok(match layer {
            BodyConv::Fp(conv) => DeployedBodyConv::Float(FloatConv2d::new(
                conv.weight().value(),
                conv.params().get(1).map(scales_autograd::Var::value),
                conv.spec(),
            )?),
            BodyConv::Scales(conv) => {
                DeployedBodyConv::Scales(DeployedScalesConv2d::from_trained(conv)?)
            }
            BodyConv::E2fif(conv) => {
                // Stable param order: [weight, bn gamma, bn beta].
                let params = conv.params();
                let weight = params[0].value();
                let square = weight.shape()[0] == weight.shape()[1];
                DeployedBodyConv::E2fif {
                    conv: BinaryConv2d::from_float_weight(&weight)?,
                    gamma: params[1].value(),
                    beta: params[2].value(),
                    skip: square,
                }
            }
            BodyConv::Btm(conv) => {
                let weight = conv.params()[0].value();
                let square = weight.shape()[0] == weight.shape()[1];
                DeployedBodyConv::Btm { conv: BinaryConv2d::from_float_weight(&weight)?, skip: square }
            }
            BodyConv::Bam(conv) => {
                let weight = conv.params()[0].value();
                let square = weight.shape()[0] == weight.shape()[1];
                DeployedBodyConv::Bam { conv: BinaryConv2d::from_float_weight(&weight)?, skip: square }
            }
            BodyConv::Basic(conv) => {
                let weight = conv.params()[0].value();
                let square = weight.shape()[0] == weight.shape()[1];
                DeployedBodyConv::Basic { conv: BinaryConv2d::from_float_weight(&weight)?, skip: square }
            }
        })
    }

    /// Run deployed inference on `[N, C, H, W]`, reproducing the matching
    /// training-path layer (up to f32 rounding in the FP pieces).
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        match self {
            DeployedBodyConv::Float(conv) => conv.forward(input),
            DeployedBodyConv::Scales(conv) => conv.forward(input),
            DeployedBodyConv::E2fif { conv, gamma, beta, skip } => {
                let y = conv.forward(input)?;
                let y = batchnorm_batch_stats(&y, gamma, beta, 1e-5)?;
                if *skip {
                    y.zip_map(input, |a, b| a + b)
                } else {
                    Ok(y)
                }
            }
            DeployedBodyConv::Btm { conv, skip } => {
                let (n, chw) = (input.shape()[0], input.len() / input.shape()[0]);
                let mut shifted = input.clone();
                for b in 0..n {
                    let plane = &mut shifted.data_mut()[b * chw..(b + 1) * chw];
                    let mean: f32 = plane.iter().sum::<f32>() / chw as f32;
                    for v in plane.iter_mut() {
                        *v -= mean;
                    }
                }
                let y = conv.forward(&shifted)?;
                if *skip {
                    y.zip_map(input, |a, b| a + b)
                } else {
                    Ok(y)
                }
            }
            DeployedBodyConv::Bam { conv, skip } => {
                let mut y = conv.forward(input)?;
                let (n, c) = (input.shape()[0], input.shape()[1]);
                let (h, w) = (input.shape()[2], input.shape()[3]);
                let (oc, oh, ow) = (y.shape()[1], y.shape()[2], y.shape()[3]);
                // FP accumulation map K = mean_c |x|, applied per pixel
                // (stride-1 "same" conv keeps oh·ow == h·w).
                if oh * ow != h * w {
                    return Err(TensorError::InvalidArgument(
                        "BAM deployment needs same-size output".into(),
                    ));
                }
                for b in 0..n {
                    for p in 0..h * w {
                        let mut k = 0.0f32;
                        for ci in 0..c {
                            k += input.data()[(b * c + ci) * h * w + p].abs();
                        }
                        k /= c as f32;
                        for co in 0..oc {
                            y.data_mut()[(b * oc + co) * oh * ow + p] *= k;
                        }
                    }
                }
                if *skip {
                    y.zip_map(input, |a, b| a + b)
                } else {
                    Ok(y)
                }
            }
            DeployedBodyConv::Basic { conv, skip } => {
                let y = conv.forward(input)?;
                if *skip {
                    y.zip_map(input, |a, b| a + b)
                } else {
                    Ok(y)
                }
            }
        }
    }

    /// The zero-allocation core of [`DeployedBodyConv::forward`]: serve a
    /// flat `[n, in_channels, h, w]` input into a caller-provided output
    /// buffer (fully overwritten), staging every per-call temporary —
    /// shifted inputs, packed bits, batch-norm reductions, accumulation
    /// maps — in a reusable [`ConvScratch`]. Bit-identical to the
    /// allocating forward for every method variant.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched lengths or geometry.
    pub fn forward_into(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        scratch: &mut ConvScratch,
        out: &mut [f32],
    ) -> Result<()> {
        let (oc, oh, ow) = self.out_shape(h, w)?;
        let c = self.in_channels();
        if input.len() != n * c * h * w {
            return Err(TensorError::LengthMismatch { expected: n * c * h * w, actual: input.len() });
        }
        let in_dims = (n, c, h, w);
        let out_dims = (n, oc, oh, ow);
        match self {
            DeployedBodyConv::Float(conv) => conv.forward_into(input, n, h, w, &mut scratch.col, out),
            DeployedBodyConv::Scales(conv) => conv.forward_into(input, n, h, w, scratch, out),
            DeployedBodyConv::E2fif { conv, gamma, beta, skip } => {
                conv.forward_into(input, n, h, w, &mut scratch.bits, out)?;
                batchnorm_batch_stats_inplace(out, n, oc, oh, ow, gamma, beta, 1e-5, scratch)?;
                if *skip {
                    add_identity_skip(out, out_dims, input, in_dims)?;
                }
                Ok(())
            }
            DeployedBodyConv::Btm { conv, skip } => {
                let chw = c * h * w;
                let ConvScratch { shifted, bits, .. } = scratch;
                let src = sized(shifted, n * chw);
                src.copy_from_slice(input);
                for b in 0..n {
                    let plane = &mut src[b * chw..(b + 1) * chw];
                    let mean: f32 = plane.iter().sum::<f32>() / chw as f32;
                    for v in plane.iter_mut() {
                        *v -= mean;
                    }
                }
                conv.forward_into(src, n, h, w, bits, out)?;
                if *skip {
                    add_identity_skip(out, out_dims, input, in_dims)?;
                }
                Ok(())
            }
            DeployedBodyConv::Bam { conv, skip } => {
                conv.forward_into(input, n, h, w, &mut scratch.bits, out)?;
                // FP accumulation map K = mean_c |x|, applied per pixel
                // (stride-1 "same" conv keeps oh·ow == h·w).
                if oh * ow != h * w {
                    return Err(TensorError::InvalidArgument(
                        "BAM deployment needs same-size output".into(),
                    ));
                }
                for b in 0..n {
                    for p in 0..h * w {
                        let mut k = 0.0f32;
                        for ci in 0..c {
                            k += input[(b * c + ci) * h * w + p].abs();
                        }
                        k /= c as f32;
                        for co in 0..oc {
                            out[(b * oc + co) * oh * ow + p] *= k;
                        }
                    }
                }
                if *skip {
                    add_identity_skip(out, out_dims, input, in_dims)?;
                }
                Ok(())
            }
            DeployedBodyConv::Basic { conv, skip } => {
                conv.forward_into(input, n, h, w, &mut scratch.bits, out)?;
                if *skip {
                    add_identity_skip(out, out_dims, input, in_dims)?;
                }
                Ok(())
            }
        }
    }

    /// Number of input channels this layer consumes.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        match self {
            DeployedBodyConv::Float(c) => c.weight().shape()[1],
            DeployedBodyConv::Scales(c) => c.in_channels(),
            DeployedBodyConv::E2fif { conv, .. }
            | DeployedBodyConv::Btm { conv, .. }
            | DeployedBodyConv::Bam { conv, .. }
            | DeployedBodyConv::Basic { conv, .. } => conv.in_channels(),
        }
    }

    /// Output dimensions `(oc, oh, ow)` for an input of spatial extent
    /// `(h, w)` — the shape-inference hook the planned executor uses.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel does not fit the padded input.
    pub fn out_shape(&self, h: usize, w: usize) -> Result<(usize, usize, usize)> {
        match self {
            DeployedBodyConv::Float(c) => c.out_shape(h, w),
            DeployedBodyConv::Scales(c) => {
                let (k, spec) = (c.conv.kernel(), c.conv.spec());
                Ok((c.out_channels(), spec.out_extent(h, k)?, spec.out_extent(w, k)?))
            }
            DeployedBodyConv::E2fif { conv, .. }
            | DeployedBodyConv::Btm { conv, .. }
            | DeployedBodyConv::Bam { conv, .. }
            | DeployedBodyConv::Basic { conv, .. } => {
                let (k, spec) = (conv.kernel(), conv.spec());
                Ok((conv.out_channels(), spec.out_extent(h, k)?, spec.out_extent(w, k)?))
            }
        }
    }

    /// Number of output channels after this layer.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        match self {
            DeployedBodyConv::Float(c) => c.out_channels(),
            DeployedBodyConv::Scales(c) => c.out_channels(),
            DeployedBodyConv::E2fif { conv, .. }
            | DeployedBodyConv::Btm { conv, .. }
            | DeployedBodyConv::Bam { conv, .. }
            | DeployedBodyConv::Basic { conv, .. } => conv.out_channels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ScalesComponents;
    use scales_autograd::Var;
    use scales_nn::init::rng;
    use scales_nn::Module;

    fn check_equivalence(components: ScalesComponents, skip: bool, seed: u64) {
        let mut r = rng(seed);
        let layer = ScalesConv2d::with_components(6, 6, 3, components, skip, &mut r);
        // Nudge α/β off their init so folding is actually exercised.
        if let Some(lsf) = layer.lsf() {
            lsf.alpha().set_value(Tensor::from_vec(vec![0.8], &[1]).unwrap());
            lsf.beta().update_value(|t| {
                for (i, v) in t.data_mut().iter_mut().enumerate() {
                    *v = (i as f32 - 3.0) * 0.05;
                }
            });
        }
        let deployed = DeployedScalesConv2d::from_trained(&layer).unwrap();
        let input = Tensor::from_vec(
            (0..6 * 64).map(|i| ((i as f32) * 0.29).sin()).collect(),
            &[1, 6, 8, 8],
        )
        .unwrap();
        let reference = layer.forward(&Var::new(input.clone())).unwrap().value();
        let fast = deployed.forward(&input).unwrap();
        assert_eq!(fast.shape(), reference.shape());
        for (a, b) in fast.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn deploy_fallback_composes_as_a_std_error() {
        // The whole point of the Error impl: `?` in examples and bins
        // that return Box<dyn Error>.
        fn surface(f: DeployFallback) -> std::result::Result<(), Box<dyn std::error::Error>> {
            Err(f)?
        }
        let err = surface(DeployFallback::new("no lowering for transformers")).unwrap_err();
        assert!(err.to_string().contains("training path"));
        assert!(err.to_string().contains("no lowering for transformers"));
    }

    #[test]
    fn deployed_full_scales_matches_training_path() {
        check_equivalence(ScalesComponents::full(), true, 91);
    }

    #[test]
    fn deployed_lsf_only_matches_training_path() {
        check_equivalence(ScalesComponents::lsf_only(), true, 92);
    }

    #[test]
    fn deployed_no_skip_matches_training_path() {
        check_equivalence(ScalesComponents::lsf_spatial(), false, 93);
    }

    #[test]
    fn from_parts_rejects_mismatched_branch_geometry() {
        let make_conv = || BinaryConv2d::from_float_weight(&Tensor::ones(&[6, 6, 3, 3])).unwrap();
        // Baseline: well-formed parts are accepted.
        assert!(DeployedScalesConv2d::from_parts(
            make_conv(),
            vec![0.0; 6],
            Some((Tensor::ones(&[1, 6, 1, 1]), 0.1)),
            Some(Tensor::ones(&[1, 1, 5])),
            true,
            6,
        )
        .is_ok());
        // Packed conv consuming a different channel count.
        assert!(DeployedScalesConv2d::from_parts(make_conv(), vec![], None, None, true, 8).is_err());
        // Spatial map that is not a [1, C, 1, 1] 1×1 weight.
        assert!(DeployedScalesConv2d::from_parts(
            make_conv(),
            vec![],
            Some((Tensor::ones(&[1, 6, 3, 3]), 0.0)),
            None,
            true,
            6,
        )
        .is_err());
        // Spatial branch over a non-shape-preserving conv (padding beyond
        // "same") would index the gate map out of bounds at forward.
        let padded = BinaryConv2d::from_float_weight(&Tensor::ones(&[6, 6, 3, 3]))
            .unwrap()
            .with_spec(Conv2dSpec { stride: 1, padding: 2 });
        assert!(DeployedScalesConv2d::from_parts(
            padded,
            vec![],
            Some((Tensor::ones(&[1, 6, 1, 1]), 0.0)),
            None,
            false,
            6,
        )
        .is_err());
        // Channel kernels of the wrong rank / even extent.
        for bad in [Tensor::ones(&[5]), Tensor::ones(&[1, 1, 4])] {
            assert!(DeployedScalesConv2d::from_parts(
                make_conv(),
                vec![],
                None,
                Some(bad),
                true,
                6,
            )
            .is_err());
        }
    }

    #[test]
    fn deployed_rejects_wrong_channels() {
        let mut r = rng(94);
        let layer = ScalesConv2d::new(4, 4, 3, &mut r);
        let deployed = DeployedScalesConv2d::from_trained(&layer).unwrap();
        assert!(deployed.forward(&Tensor::ones(&[1, 8, 4, 4])).is_err());
    }

    fn probe_input(c: usize, hw: usize, seed: f32) -> Tensor {
        Tensor::from_vec(
            (0..c * hw * hw).map(|i| ((i as f32 + seed) * 0.23).sin()).collect(),
            &[1, c, hw, hw],
        )
        .unwrap()
    }

    fn check_body_conv_equivalence(method: crate::Method, in_c: usize, out_c: usize, seed: u64) {
        let mut r = rng(seed);
        let layer = BodyConv::new(method, in_c, out_c, 3, &mut r).unwrap();
        let deployed = DeployedBodyConv::from_trained(&layer).unwrap();
        let input = probe_input(in_c, 8, seed as f32);
        let reference = layer.forward(&Var::new(input.clone())).unwrap().value();
        let fast = deployed.forward(&input).unwrap();
        assert_eq!(fast.shape(), reference.shape(), "{method}");
        assert_eq!(deployed.out_channels(), out_c, "{method}");
        for (a, b) in fast.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{method}: {a} vs {b}");
        }
    }

    #[test]
    fn body_conv_forward_into_is_bit_identical_with_stale_scratch() {
        // One shared scratch across every method and two input shapes, so
        // each call sees stale contents from the previous layer — exactly
        // the planned executor's steady state.
        let mut scratch = ConvScratch::new();
        for (i, m) in [
            crate::Method::FullPrecision,
            crate::Method::E2fif,
            crate::Method::Btm,
            crate::Method::Bam,
            crate::Method::Bibert,
            crate::Method::scales(),
        ]
        .into_iter()
        .enumerate()
        {
            let mut r = rng(400 + i as u64);
            let layer = BodyConv::new(m, 6, 6, 3, &mut r).unwrap();
            let deployed = DeployedBodyConv::from_trained(&layer).unwrap();
            for (n, hw) in [(1usize, 8usize), (2, 8), (1, 5)] {
                let input = Tensor::from_vec(
                    (0..n * 6 * hw * hw).map(|j| ((j as f32 + i as f32) * 0.19).sin()).collect(),
                    &[n, 6, hw, hw],
                )
                .unwrap();
                let want = deployed.forward(&input).unwrap();
                let mut got = vec![f32::NAN; want.len()];
                deployed.forward_into(input.data(), n, hw, hw, &mut scratch, &mut got).unwrap();
                for (a, b) in want.data().iter().zip(got.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{m}, n={n}, hw={hw}");
                }
            }
        }
    }

    #[test]
    fn float_conv_forward_into_matches_forward_bitwise() {
        let mut r = rng(77);
        let conv = scales_nn::layers::Conv2d::new(5, 7, 3, &mut r);
        let lowered = FloatConv2d::new(
            conv.weight().value(),
            conv.params().get(1).map(scales_autograd::Var::value),
            conv.spec(),
        )
        .unwrap();
        let input = Tensor::from_vec(
            (0..2 * 5 * 36).map(|j| ((j as f32) * 0.31).cos()).collect(),
            &[2, 5, 6, 6],
        )
        .unwrap();
        let want = lowered.forward(&input).unwrap();
        let mut col = Vec::new();
        let mut got = vec![f32::NAN; want.len()];
        lowered.forward_into(input.data(), 2, 6, 6, &mut col, &mut got).unwrap();
        for (a, b) in want.data().iter().zip(got.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(lowered.out_shape(6, 6).unwrap(), (7, 6, 6));
    }

    #[test]
    fn deployed_body_conv_matches_every_method() {
        for (i, m) in [
            crate::Method::FullPrecision,
            crate::Method::E2fif,
            crate::Method::Btm,
            crate::Method::Bam,
            crate::Method::Bibert,
            crate::Method::scales(),
        ]
        .into_iter()
        .enumerate()
        {
            check_body_conv_equivalence(m, 6, 6, 200 + i as u64);
        }
    }

    #[test]
    fn deployed_body_conv_handles_channel_change() {
        // Non-square layers drop the skip; equivalence must still hold.
        for (i, m) in
            [crate::Method::FullPrecision, crate::Method::E2fif, crate::Method::Btm].into_iter().enumerate()
        {
            check_body_conv_equivalence(m, 4, 8, 300 + i as u64);
        }
    }
}
