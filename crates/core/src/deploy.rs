//! Deployment: fold a trained [`ScalesConv2d`] into the bit-packed
//! XNOR-popcount inference path.
//!
//! This is the Larq role in the paper's Table VI: after training, the
//! latent FP weights are sign-packed once, the weight scale `s_c` and the
//! learned layer scale `α` fold into the per-channel output scale, the
//! channel threshold `β` folds into an input shift (since
//! `sign((x−β)/α) = sign(x−β)` for `α > 0`), and only the two small
//! re-scaling branches plus the skip run in floating point.
//!
//! [`DeployedScalesConv2d::forward`] is numerically equivalent to the
//! training-path forward (verified by unit and integration tests).

use crate::conv::ScalesConv2d;
use scales_nn::Module as _;
use scales_binary::BinaryConv2d;
use scales_tensor::ops::{conv1d, conv2d, global_avg_pool, Conv2dSpec};
use scales_tensor::{Result, Tensor, TensorError};

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// A trained SCALES convolution lowered to the packed binary kernel.
pub struct DeployedScalesConv2d {
    conv: BinaryConv2d,
    /// Per-input-channel threshold β (empty when LSF was disabled).
    beta: Vec<f32>,
    /// Spatial branch: 1×1 conv weight `[1, C, 1, 1]` and bias.
    spatial: Option<(Tensor, f32)>,
    /// Channel branch: Conv1d weight `[1, 1, k]`.
    channel: Option<Tensor>,
    skip: bool,
    in_channels: usize,
}

impl DeployedScalesConv2d {
    /// Fold a trained layer into packed form.
    ///
    /// # Errors
    ///
    /// Returns an error when the trained layer's tensors are malformed
    /// (cannot happen for layers built by this crate).
    pub fn from_trained(layer: &ScalesConv2d) -> Result<Self> {
        let weight = layer.weight().value();
        let oc = weight.shape()[0];
        let ic = weight.shape()[1];
        let per = weight.len() / oc;
        let mut conv = BinaryConv2d::from_float_weight(&weight)?;
        // Fold α into the per-channel scales: ŷ = α·s_c·(xnor dot).
        let (alpha, beta) = match layer.lsf() {
            Some(lsf) => {
                let a = lsf.alpha().value().data()[0].max(1e-6);
                (a, lsf.beta().value().data().to_vec())
            }
            None => (1.0, Vec::new()),
        };
        let scales: Vec<f32> = (0..oc)
            .map(|c| {
                let chunk = &weight.data()[c * per..(c + 1) * per];
                alpha * chunk.iter().map(|v| v.abs()).sum::<f32>() / per as f32
            })
            .collect();
        conv.set_scales(scales)?;
        let spatial = match layer.spatial() {
            Some(s) => {
                let params = s.params();
                if params.len() != 2 {
                    return Err(TensorError::InvalidArgument(
                        "spatial branch must hold weight and bias".into(),
                    ));
                }
                Some((params[0].value(), params[1].value().data()[0]))
            }
            None => None,
        };
        let channel = layer.channel().map(|c| c.params()[0].value());
        Ok(Self {
            conv,
            beta,
            spatial,
            channel,
            skip: layer.has_skip(),
            in_channels: ic,
        })
    }

    /// Run packed inference on `[N, C, H, W]`, reproducing the training
    /// path exactly (up to f32 rounding in the FP branches).
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "deployed conv" });
        }
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        if c != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![0, self.in_channels, 0, 0],
                op: "deployed conv channels",
            });
        }
        // β folds into an input shift before the sign packing.
        let shifted = if self.beta.is_empty() {
            input.clone()
        } else {
            let mut t = input.clone();
            for b in 0..n {
                for ci in 0..c {
                    let beta = self.beta[ci];
                    for v in &mut t.data_mut()[(b * c + ci) * h * w..(b * c + ci + 1) * h * w] {
                        *v -= beta;
                    }
                }
            }
            t
        };
        let mut y = self.conv.forward(&shifted)?;
        let oc = y.shape()[1];
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        // Spatial re-scaling from the FP input.
        if let Some((wmap, bias)) = &self.spatial {
            let m = conv2d(input, wmap, Conv2dSpec { stride: 1, padding: 0 })?;
            for b in 0..n {
                for p in 0..oh * ow {
                    let g = sigmoid(m.data()[b * oh * ow + p] + bias);
                    for co in 0..oc {
                        y.data_mut()[((b * oc) + co) * oh * ow + p] *= g;
                    }
                }
            }
        }
        // Channel re-scaling from the FP input.
        if let Some(k) = &self.channel {
            let pooled = global_avg_pool(input)?; // [N, C, 1, 1]
            let tokens = pooled.reshape(&[n, 1, c])?;
            let mixed = conv1d(&tokens, k, k.shape()[2] / 2)?;
            for b in 0..n {
                for co in 0..oc {
                    let g = sigmoid(mixed.data()[b * c + co]);
                    for v in &mut y.data_mut()[((b * oc) + co) * oh * ow..((b * oc) + co + 1) * oh * ow] {
                        *v *= g;
                    }
                }
            }
        }
        if self.skip {
            y = y.zip_map(input, |a, b| a + b)?;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ScalesComponents;
    use scales_autograd::Var;
    use scales_nn::init::rng;
    use scales_nn::Module;

    fn check_equivalence(components: ScalesComponents, skip: bool, seed: u64) {
        let mut r = rng(seed);
        let layer = ScalesConv2d::with_components(6, 6, 3, components, skip, &mut r);
        // Nudge α/β off their init so folding is actually exercised.
        if let Some(lsf) = layer.lsf() {
            lsf.alpha().set_value(Tensor::from_vec(vec![0.8], &[1]).unwrap());
            lsf.beta().update_value(|t| {
                for (i, v) in t.data_mut().iter_mut().enumerate() {
                    *v = (i as f32 - 3.0) * 0.05;
                }
            });
        }
        let deployed = DeployedScalesConv2d::from_trained(&layer).unwrap();
        let input = Tensor::from_vec(
            (0..6 * 64).map(|i| ((i as f32) * 0.29).sin()).collect(),
            &[1, 6, 8, 8],
        )
        .unwrap();
        let reference = layer.forward(&Var::new(input.clone())).unwrap().value();
        let fast = deployed.forward(&input).unwrap();
        assert_eq!(fast.shape(), reference.shape());
        for (a, b) in fast.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn deployed_full_scales_matches_training_path() {
        check_equivalence(ScalesComponents::full(), true, 91);
    }

    #[test]
    fn deployed_lsf_only_matches_training_path() {
        check_equivalence(ScalesComponents::lsf_only(), true, 92);
    }

    #[test]
    fn deployed_no_skip_matches_training_path() {
        check_equivalence(ScalesComponents::lsf_spatial(), false, 93);
    }

    #[test]
    fn deployed_rejects_wrong_channels() {
        let mut r = rng(94);
        let layer = ScalesConv2d::new(4, 4, 3, &mut r);
        let deployed = DeployedScalesConv2d::from_trained(&layer).unwrap();
        assert!(deployed.forward(&Tensor::ones(&[1, 8, 4, 4])).is_err());
    }
}
