//! Channel-wise re-scaling — paper §IV-C, Fig. 7.
//!
//! GlobalAvgPool aggregates spatial information from the full-precision
//! pre-binarization activation; a Conv1d (kernel `k`, default 5) captures
//! inter-channel structure with only `k` FP parameters; a sigmoid produces
//! the `B×C×1×1` scale. This is the paper's cheap alternative to the
//! `2C²/r`-parameter SE block of Real-to-Binary networks.

use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::layers::Conv1d;
use scales_nn::Module;
use scales_tensor::Result;

/// Channel re-scaling branch for NCHW activations.
pub struct ChannelRescale {
    conv: Conv1d,
    channels: usize,
    kernel: usize,
}

impl ChannelRescale {
    /// Build with the paper's default kernel size 5.
    #[must_use]
    pub fn new(channels: usize, rng: &mut StdRng) -> Self {
        Self::with_kernel(channels, 5, rng)
    }

    /// Build with an explicit odd Conv1d kernel size (for the kernel-size
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics on an even kernel size, which cannot preserve the channel
    /// axis length with symmetric padding.
    #[must_use]
    pub fn with_kernel(channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        assert!(kernel % 2 == 1, "channel re-scale kernel must be odd");
        Self { conv: Conv1d::new(1, 1, kernel, kernel / 2, rng), channels, kernel }
    }

    /// Conv1d kernel size (the branch's entire FP parameter count).
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Predict the `B×C×1×1` scale from the FP activation (Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns an error when the input channel count differs from the
    /// configured one.
    pub fn scale_map(&self, fp_input: &Var) -> Result<Var> {
        let s = fp_input.shape();
        if s.len() != 4 || s[1] != self.channels {
            return Err(scales_tensor::TensorError::ShapeMismatch {
                lhs: s,
                rhs: vec![0, self.channels, 0, 0],
                op: "channel re-scale",
            });
        }
        let b = s[0];
        let pooled = fp_input.global_avg_pool()?; // [B, C, 1, 1]
        let tokens = pooled.reshape(&[b, 1, self.channels])?; // [B, 1, C]
        let mixed = self.conv.forward(&tokens)?; // [B, 1, C]
        let gated = mixed.sigmoid();
        gated.reshape(&[b, self.channels, 1, 1])
    }

    /// Apply to a binary-branch output: `y ⊙ C(a)` (Eq. 5).
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible geometry.
    pub fn apply(&self, binary_out: &Var, fp_input: &Var) -> Result<Var> {
        binary_out.mul(&self.scale_map(fp_input)?)
    }
}

impl Module for ChannelRescale {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.scale_map(input)
    }

    fn params(&self) -> Vec<Var> {
        self.conv.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;
    use scales_tensor::Tensor;

    #[test]
    fn scale_shape_and_param_count() {
        let mut r = rng(21);
        let c = ChannelRescale::new(16, &mut r);
        assert_eq!(c.param_count(), 5, "only k FP parameters");
        let x = Var::new(Tensor::ones(&[2, 16, 4, 4]));
        let m = c.scale_map(&x).unwrap();
        assert_eq!(m.shape(), vec![2, 16, 1, 1]);
    }

    #[test]
    fn scale_in_sigmoid_range() {
        let mut r = rng(22);
        let c = ChannelRescale::new(8, &mut r);
        let x = Var::new(Tensor::from_vec((0..128).map(|i| (i as f32 * 0.1).sin() * 3.0).collect(), &[1, 8, 4, 4]).unwrap());
        let m = c.scale_map(&x).unwrap().value();
        assert!(m.min() > 0.0 && m.max() < 1.0);
    }

    #[test]
    fn channel_scales_differ_across_channels() {
        let mut r = rng(23);
        let c = ChannelRescale::new(4, &mut r);
        // Channels with very different means should get different scales.
        let mut data = vec![0.0f32; 4 * 4];
        for ch in 0..4 {
            for i in 0..4 {
                data[ch * 4 + i] = ch as f32 * 2.0 - 3.0;
            }
        }
        let x = Var::new(Tensor::from_vec(data, &[1, 4, 2, 2]).unwrap());
        let m = c.scale_map(&x).unwrap().value();
        let vals: Vec<f32> = m.data().to_vec();
        assert!(vals.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut r = rng(24);
        let c = ChannelRescale::new(8, &mut r);
        let x = Var::new(Tensor::ones(&[1, 4, 2, 2]));
        assert!(c.scale_map(&x).is_err());
    }

    #[test]
    fn grads_reach_conv1d_weight() {
        let mut r = rng(25);
        let c = ChannelRescale::new(4, &mut r);
        let x = Var::new(Tensor::ones(&[1, 4, 2, 2]));
        let y = Var::new(Tensor::ones(&[1, 4, 2, 2]));
        let out = c.apply(&y, &x).unwrap().sum_all().unwrap();
        out.backward().unwrap();
        assert!(c.params()[0].grad().is_some());
    }
}
