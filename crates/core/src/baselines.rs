//! Baseline binary layers the paper compares against.
//!
//! These reproduce the *mechanism* of each method at the layer level (how
//! it binarizes and what full-precision machinery it keeps), which is what
//! drives the Table III/IV/V comparisons:
//!
//! * **E2FIF** — sign binarization with the Bi-Real STE, a BatchNorm after
//!   the binary conv, and an end-to-end full-precision identity skip. No
//!   input-dependent scaling of any kind (Table I: all ✗).
//! * **BTM / IBTM** — BN-free; binarizes against a per-image mean threshold
//!   (image-adaptive ✔ but not spatial/channel/layer-adaptive).
//! * **BAM** — bit-accumulation mechanism, approximated here by the
//!   XNOR-Net-style spatial FP accumulation map `K = mean_c |x|` multiplied
//!   onto the binary conv output. This keeps BAM's two signature
//!   properties: spatial adaptivity and the extra FP accumulations at
//!   inference (Table I row).
//! * **BiBERT-style linear** — plain sign for activations and per-tensor
//!   scaled sign for weights, the transformer baseline of Table IV.
//!
//! Deviations from the original implementations (all of which are
//! unpublished or PyTorch-specific) are documented in DESIGN.md.

use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::init::{kaiming_normal, xavier_uniform};
use scales_nn::layers::BatchNorm2d;
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::{Result, Tensor, TensorError};

/// E2FIF body convolution: `x + BN(binconv(sign(x)))`.
pub struct E2fifConv2d {
    weight: Var,
    bn: BatchNorm2d,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    skip: bool,
}

impl E2fifConv2d {
    /// Build a `same`-padded E2FIF conv.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        ));
        Self {
            weight,
            bn: BatchNorm2d::new(out_channels),
            spec: Conv2dSpec::same(kernel),
            in_channels,
            out_channels,
            skip: in_channels == out_channels,
        }
    }
}

impl Module for E2fifConv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        let xb = input.sign_ste_bireal();
        let wb = self.weight.binarize_weight_per_channel()?;
        let y = xb.conv2d(&wb, self.spec)?;
        let y = self.bn.forward(&y)?;
        if self.skip && self.in_channels == self.out_channels {
            y.add(input)
        } else {
            Ok(y)
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        p.extend(self.bn.params());
        p
    }
}

/// BTM body convolution: BN-free, per-image mean threshold, identity skip.
pub struct BtmConv2d {
    weight: Var,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl BtmConv2d {
    /// Build a `same`-padded BTM conv.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        ));
        Self { weight, spec: Conv2dSpec::same(kernel), in_channels, out_channels }
    }
}

impl Module for BtmConv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        // Per-image threshold: mean over C, H, W (detached — BTM computes it
        // from the normalised input, not through the gradient).
        let s = input.shape();
        if s.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: s.len(), op: "btm conv" });
        }
        let t = input.value();
        let (n, chw) = (s[0], s[1] * s[2] * s[3]);
        let mut means = Vec::with_capacity(n);
        for b in 0..n {
            let sum: f32 = t.data()[b * chw..(b + 1) * chw].iter().sum();
            means.push(sum / chw as f32);
        }
        let thresh = Var::new(Tensor::from_vec(means, &[n, 1, 1, 1])?);
        let xb = input.sub(&thresh)?.sign_ste_bireal();
        let wb = self.weight.binarize_weight_per_channel()?;
        let y = xb.conv2d(&wb, self.spec)?;
        if self.in_channels == self.out_channels {
            y.add(input)
        } else {
            Ok(y)
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }
}

/// BAM body convolution: binary conv rescaled by the spatial FP
/// accumulation map `K = mean_c |x|` (extra FP accumulation at inference).
pub struct BamConv2d {
    weight: Var,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl BamConv2d {
    /// Build a `same`-padded BAM conv.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        ));
        Self { weight, spec: Conv2dSpec::same(kernel), in_channels, out_channels }
    }
}

impl Module for BamConv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        let xb = input.sign_ste_bireal();
        let wb = self.weight.binarize_weight_per_channel()?;
        let y = xb.conv2d(&wb, self.spec)?;
        // FP accumulation map over channels, [B,1,H,W] (detached; BAM
        // accumulates it outside the binary datapath).
        let k = input.detach().abs().mean_axis(1)?;
        let y = y.mul(&k)?;
        if self.in_channels == self.out_channels {
            y.add(input)
        } else {
            Ok(y)
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }
}

/// The plain binary convolution used for the convs inside BiBERT-style
/// transformer bodies: clipped-STE sign activations, per-channel scaled
/// sign weights, identity skip — no normalisation, no re-scaling.
pub struct BasicBinaryConv2d {
    weight: Var,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl BasicBinaryConv2d {
    /// Build a `same`-padded plain binary conv.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            in_channels * kernel * kernel,
            rng,
        ));
        Self { weight, spec: Conv2dSpec::same(kernel), in_channels, out_channels }
    }
}

impl Module for BasicBinaryConv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        let xb = input.sign_ste();
        let wb = self.weight.binarize_weight_per_channel()?;
        let y = xb.conv2d(&wb, self.spec)?;
        if self.in_channels == self.out_channels {
            y.add(input)
        } else {
            Ok(y)
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }
}

/// BiBERT-style binary linear for transformer bodies: plain sign
/// activations, per-tensor scaled sign weights, identity skip when square.
pub struct BibertLinear {
    weight: Var,
    bias: Var,
    in_features: usize,
    out_features: usize,
}

impl BibertLinear {
    /// Build a BiBERT-style linear layer.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: Var::param(xavier_uniform(&[out_features, in_features], in_features, out_features, rng)),
            bias: Var::param(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
        }
    }
}

impl Module for BibertLinear {
    fn forward(&self, input: &Var) -> Result<Var> {
        let shape = input.shape();
        let last = *shape.last().ok_or_else(|| {
            TensorError::InvalidArgument("bibert linear needs rank >= 1".into())
        })?;
        if last != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: shape.clone(),
                rhs: vec![self.out_features, self.in_features],
                op: "bibert linear",
            });
        }
        let xb = input.sign_ste();
        let wb = self.weight.binarize_weight_per_channel()?;
        let m: usize = shape[..shape.len() - 1].iter().product();
        let flat = xb.reshape(&[m, self.in_features])?;
        let y = flat.matmul(&wb.permute(&[1, 0])?)?.add(&self.bias)?;
        let mut out_shape = shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_features;
        let y = y.reshape(&out_shape)?;
        if self.in_features == self.out_features {
            y.add(input)
        } else {
            Ok(y)
        }
    }

    fn params(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;

    fn x4() -> Var {
        Var::new(Tensor::from_vec((0..64).map(|i| (i as f32 * 0.37).sin()).collect(), &[1, 4, 4, 4]).unwrap())
    }

    #[test]
    fn e2fif_shape_and_grads() {
        let mut r = rng(51);
        let c = E2fifConv2d::new(4, 4, 3, &mut r);
        let y = c.forward(&x4()).unwrap();
        assert_eq!(y.shape(), vec![1, 4, 4, 4]);
        y.sum_all().unwrap().backward().unwrap();
        assert!(c.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn btm_is_image_adaptive() {
        let mut r = rng(52);
        let c = BtmConv2d::new(4, 4, 3, &mut r);
        // Shift the entire image by a constant: the per-image threshold
        // cancels the shift, so the binary path is unchanged and only the
        // skip moves — outputs differ exactly by the shift.
        let x = x4();
        let shifted = x.add_scalar(0.7);
        let y1 = c.forward(&x).unwrap().value();
        let y2 = c.forward(&shifted).unwrap().value();
        for (a, b) in y1.data().iter().zip(y2.data().iter()) {
            assert!(((b - a) - 0.7).abs() < 1e-4, "{a} {b}");
        }
    }

    #[test]
    fn bam_rescales_by_magnitude() {
        let mut r = rng(53);
        let c = BamConv2d::new(4, 4, 3, &mut r);
        let y = c.forward(&x4()).unwrap();
        assert_eq!(y.shape(), vec![1, 4, 4, 4]);
        y.sum_all().unwrap().backward().unwrap();
        assert!(c.params()[0].grad().is_some());
    }

    #[test]
    fn bibert_linear_shapes_and_grads() {
        let mut r = rng(54);
        let l = BibertLinear::new(8, 8, &mut r);
        let x = Var::new(Tensor::from_vec((0..24).map(|i| (i as f32 * 0.51).cos()).collect(), &[1, 3, 8]).unwrap());
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 3, 8]);
        y.sum_all().unwrap().backward().unwrap();
        assert!(l.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn e2fif_not_image_adaptive_in_binary_path() {
        // Scaling a strictly-positive input leaves sign(x) unchanged, so the
        // E2FIF binary output (pre-skip) is identical — this is the
        // limitation SCALES fixes.
        let mut r = rng(55);
        let c = E2fifConv2d::new(2, 4, 3, &mut r); // no skip (channel change)
        let base: Vec<f32> = (0..32).map(|i| (i as f32 * 0.7).sin() + 2.0).collect();
        let x1 = Var::new(Tensor::from_vec(base.clone(), &[1, 2, 4, 4]).unwrap());
        let x2 = Var::new(Tensor::from_vec(base.iter().map(|v| v * 5.0).collect(), &[1, 2, 4, 4]).unwrap());
        let y1 = c.forward(&x1).unwrap().value();
        let y2 = c.forward(&x2).unwrap().value();
        for (a, b) in y1.data().iter().zip(y2.data().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
