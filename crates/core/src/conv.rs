//! The binary convolution layer integrated with SCALES — paper Fig. 8(a).
//!
//! Pipeline: LSF-binarize the activation (Eq. 1) → binary convolution with
//! per-channel binarized weights → multiply by the spatial and channel
//! re-scaling maps (both predicted from the FP pre-binarization activation)
//! → add the identity skip connection (full-precision information flow,
//! following E2FIF / Bi-Real Net).

use crate::channel::ChannelRescale;
use crate::lsf::LsfBinarizer;
use crate::method::ScalesComponents;
use crate::spatial::SpatialRescale;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::init::kaiming_normal;
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::{Result, TensorError};

/// A drop-in binary replacement for a body `Conv2d`, with SCALES
/// components toggled by [`ScalesComponents`].
pub struct ScalesConv2d {
    weight: Var,
    lsf: Option<LsfBinarizer>,
    spatial: Option<SpatialRescale>,
    channel: Option<ChannelRescale>,
    skip: bool,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl ScalesConv2d {
    /// Build the full published method (`ScalesComponents::full()`).
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, rng: &mut StdRng) -> Self {
        Self::with_components(in_channels, out_channels, kernel, ScalesComponents::full(), true, rng)
    }

    /// Build with an explicit component subset (ablations) and skip flag.
    ///
    /// When `lsf` is disabled the activation falls back to the plain sign
    /// binarizer with the Bi-Real STE.
    #[must_use]
    pub fn with_components(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        components: ScalesComponents,
        skip: bool,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Var::param(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let channel = (components.channel && in_channels == out_channels)
            .then(|| ChannelRescale::with_kernel(in_channels, components.channel_kernel, rng));
        Self {
            weight,
            lsf: components.lsf.then(|| LsfBinarizer::new(in_channels)),
            spatial: components.spatial.then(|| SpatialRescale::new(in_channels, rng)),
            channel,
            skip,
            spec: Conv2dSpec::same(kernel),
            in_channels,
            out_channels,
        }
    }

    /// The underlying (latent full-precision) weight.
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The LSF binarizer, when enabled.
    #[must_use]
    pub fn lsf(&self) -> Option<&LsfBinarizer> {
        self.lsf.as_ref()
    }

    /// The spatial re-scaling branch, when enabled.
    #[must_use]
    pub fn spatial(&self) -> Option<&SpatialRescale> {
        self.spatial.as_ref()
    }

    /// The channel re-scaling branch, when enabled.
    #[must_use]
    pub fn channel(&self) -> Option<&ChannelRescale> {
        self.channel.as_ref()
    }

    /// Whether the layer carries the identity skip.
    #[must_use]
    pub fn has_skip(&self) -> bool {
        self.skip
    }

    /// Clamp the LSF α after an optimizer step (no-op without LSF).
    pub fn clamp_alpha(&self, floor: f32) {
        if let Some(lsf) = &self.lsf {
            lsf.clamp_alpha(floor);
        }
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for ScalesConv2d {
    fn forward(&self, input: &Var) -> Result<Var> {
        // 1. Binarize the activation (LSF when enabled, else plain sign).
        let xb = match &self.lsf {
            Some(lsf) => lsf.forward(input)?,
            None => input.sign_ste_bireal(),
        };
        // 2. Binary convolution: per-channel binarized weight.
        let wb = self.weight.binarize_weight_per_channel()?;
        let mut y = xb.conv2d(&wb, self.spec)?;
        // 3. Input-dependent re-scalings from the FP activation (Eq. 4/5).
        if let Some(sp) = &self.spatial {
            y = sp.apply(&y, input)?;
        }
        if let Some(ch) = &self.channel {
            y = ch.apply(&y, input)?;
        }
        // 4. Full-precision identity skip.
        if self.skip {
            if self.in_channels != self.out_channels {
                return Err(TensorError::InvalidArgument(format!(
                    "skip connection needs matching channels, got {} vs {}",
                    self.in_channels, self.out_channels
                )));
            }
            y = y.add(input)?;
        }
        Ok(y)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(l) = &self.lsf {
            p.extend(l.params());
        }
        if let Some(s) = &self.spatial {
            p.extend(s.params());
        }
        if let Some(c) = &self.channel {
            p.extend(c.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;
    use scales_tensor::Tensor;

    fn input(seed: f32) -> Var {
        Var::new(Tensor::from_vec(
            (0..128).map(|i| ((i as f32 + seed) * 0.37).sin()).collect(),
            &[1, 8, 4, 4],
        ).unwrap())
    }

    #[test]
    fn forward_shape_preserved() {
        let mut r = rng(31);
        let c = ScalesConv2d::new(8, 8, 3, &mut r);
        let y = c.forward(&input(0.0)).unwrap();
        assert_eq!(y.shape(), vec![1, 8, 4, 4]);
    }

    #[test]
    fn all_params_receive_gradients() {
        let mut r = rng(32);
        let c = ScalesConv2d::new(8, 8, 3, &mut r);
        let y = c.forward(&input(1.0)).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        for (i, p) in c.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn components_toggle_param_count() {
        let mut r = rng(33);
        let full = ScalesConv2d::with_components(8, 8, 3, ScalesComponents::full(), true, &mut r);
        let lsf = ScalesConv2d::with_components(8, 8, 3, ScalesComponents::lsf_only(), true, &mut r);
        // full = weight + (α, β) + spatial(8w+1b) + channel(5)
        assert_eq!(full.param_count(), 8 * 8 * 9 + 1 + 8 + 9 + 5);
        assert_eq!(lsf.param_count(), 8 * 8 * 9 + 1 + 8);
    }

    #[test]
    fn skip_requires_equal_channels() {
        let mut r = rng(34);
        let c = ScalesConv2d::with_components(8, 16, 3, ScalesComponents::lsf_only(), true, &mut r);
        let x = input(0.0);
        assert!(c.forward(&x).is_err());
        let no_skip = ScalesConv2d::with_components(8, 16, 3, ScalesComponents::lsf_only(), false, &mut r);
        assert_eq!(no_skip.forward(&x).unwrap().shape(), vec![1, 16, 4, 4]);
    }

    #[test]
    fn output_is_input_dependent_beyond_sign() {
        // Two inputs with identical signs but different magnitudes must give
        // different outputs through the re-scaling branches (image-to-image
        // adaptivity) — the property E2FIF lacks.
        let mut r = rng(35);
        let c = ScalesConv2d::with_components(4, 4, 3, ScalesComponents::full(), false, &mut r);
        let base: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.7).sin() + 1.5).collect(); // all positive
        let x1 = Var::new(Tensor::from_vec(base.clone(), &[1, 4, 4, 4]).unwrap());
        let x2 = Var::new(Tensor::from_vec(base.iter().map(|v| v * 3.0).collect(), &[1, 4, 4, 4]).unwrap());
        let y1 = c.forward(&x1).unwrap().value();
        let y2 = c.forward(&x2).unwrap().value();
        assert_ne!(y1.data(), y2.data());
    }

    #[test]
    fn training_reduces_loss() {
        let mut r = rng(36);
        let c = ScalesConv2d::new(4, 4, 3, &mut r);
        let x = Var::new(Tensor::from_vec((0..64).map(|i| (i as f32 * 0.21).cos()).collect(), &[1, 4, 4, 4]).unwrap());
        let target = Var::new(Tensor::from_vec((0..64).map(|i| (i as f32 * 0.13).sin()).collect(), &[1, 4, 4, 4]).unwrap());
        let mut opt = scales_nn::optim::Adam::new(c.params(), 1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            opt.zero_grad();
            let loss = scales_nn::loss::l1_loss(&c.forward(&x).unwrap(), &target).unwrap();
            last = loss.value().data()[0];
            if first.is_none() {
                first = Some(last);
            }
            loss.backward().unwrap();
            opt.step();
            c.clamp_alpha(1e-3);
        }
        assert!(last < first.unwrap(), "loss should decrease: {first:?} -> {last}");
    }
}
