//! Binarization method registry — the rows of the paper's Table I plus the
//! ablation variants of Table V.

use std::fmt;

/// Which SCALES components are enabled (used directly for the Table V
/// ablation rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalesComponents {
    /// Layer-wise scaling factor + channel-wise threshold (Eq. 1-3).
    pub lsf: bool,
    /// Spatial re-scaling branch (Eq. 4).
    pub spatial: bool,
    /// Channel-wise re-scaling branch (Eq. 5).
    pub channel: bool,
    /// Conv1d kernel size of the channel branch (paper default 5).
    pub channel_kernel: usize,
}

impl ScalesComponents {
    /// The full method as published.
    #[must_use]
    pub fn full() -> Self {
        Self { lsf: true, spatial: true, channel: true, channel_kernel: 5 }
    }

    /// LSF only (Table V row 2).
    #[must_use]
    pub fn lsf_only() -> Self {
        Self { lsf: true, spatial: false, channel: false, channel_kernel: 5 }
    }

    /// LSF + channel re-scaling (Table V row 3).
    #[must_use]
    pub fn lsf_channel() -> Self {
        Self { lsf: true, spatial: false, channel: true, channel_kernel: 5 }
    }

    /// LSF + spatial re-scaling (Table V row 4).
    #[must_use]
    pub fn lsf_spatial() -> Self {
        Self { lsf: true, spatial: true, channel: false, channel_kernel: 5 }
    }
}

/// A binarization method evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Full-precision reference network.
    FullPrecision,
    /// Bicubic interpolation (no network).
    Bicubic,
    /// BAM (Xin et al., ECCV 2020): bit-accumulation mechanism.
    Bam,
    /// BTM / IBTM (Jiang et al., AAAI 2021): BN-free binary training with
    /// image-adaptive normalisation.
    Btm,
    /// E2FIF (Lang et al., 2022): end-to-end full-precision information
    /// flow, the prior art the paper compares against.
    E2fif,
    /// BiBERT-style binarization (Bai et al., 2020), the transformer
    /// baseline of Table IV.
    Bibert,
    /// SCALES with a chosen component subset.
    Scales(ScalesComponents),
}

impl Method {
    /// The full SCALES method.
    #[must_use]
    pub fn scales() -> Self {
        Method::Scales(ScalesComponents::full())
    }

    /// Whether the method binarizes weights and activations (everything
    /// except FP and bicubic).
    #[must_use]
    pub fn is_binary(&self) -> bool {
        !matches!(self, Method::FullPrecision | Method::Bicubic)
    }

    /// Every registry row with a CNN body to build and lower — all
    /// methods except [`Method::Bicubic`] (no network), with each
    /// [`ScalesComponents`] subset the ablation serves. The single source
    /// of truth the cross-cutting equivalence suites (deployment,
    /// serialization, planned execution) iterate, so a new method row is
    /// automatically pulled into every bit-identity contract.
    #[must_use]
    pub fn cnn_registry() -> Vec<Method> {
        vec![
            Method::FullPrecision,
            Method::E2fif,
            Method::Btm,
            Method::Bam,
            Method::Bibert,
            Method::Scales(ScalesComponents::full()),
            Method::Scales(ScalesComponents::lsf_only()),
            Method::Scales(ScalesComponents::lsf_channel()),
            Method::Scales(ScalesComponents::lsf_spatial()),
        ]
    }

    /// Capability row, matching the paper's Table I.
    #[must_use]
    pub fn capabilities(&self) -> Capabilities {
        match self {
            Method::FullPrecision | Method::Bicubic => Capabilities {
                spatial: true,
                channel: true,
                layer: true,
                image: true,
                hw_cost: "FP",
            },
            Method::Bam => Capabilities {
                spatial: true,
                channel: false,
                layer: false,
                image: false,
                hw_cost: "Extra FP Accum.",
            },
            Method::Btm => Capabilities {
                spatial: false,
                channel: false,
                layer: false,
                image: true,
                hw_cost: "Low",
            },
            Method::E2fif => Capabilities {
                spatial: false,
                channel: false,
                layer: false,
                image: false,
                hw_cost: "Low",
            },
            Method::Bibert => Capabilities {
                spatial: false,
                channel: false,
                layer: false,
                image: false,
                hw_cost: "Low",
            },
            Method::Scales(c) => Capabilities {
                spatial: c.spatial,
                channel: c.lsf || c.channel,
                layer: c.lsf,
                image: c.spatial || c.channel,
                hw_cost: "Low",
            },
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::FullPrecision => write!(f, "FP"),
            Method::Bicubic => write!(f, "Bicubic"),
            Method::Bam => write!(f, "BAM"),
            Method::Btm => write!(f, "BTM"),
            Method::E2fif => write!(f, "E2FIF"),
            Method::Bibert => write!(f, "BiBERT"),
            Method::Scales(c) if *c == ScalesComponents::full() => write!(f, "SCALES"),
            Method::Scales(c) => {
                write!(f, "LSF")?;
                if c.channel {
                    write!(f, "+chl")?;
                }
                if c.spatial {
                    write!(f, "+spatial")?;
                }
                Ok(())
            }
        }
    }
}

/// Adaptability capabilities of a binarization method (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Captures pixel-to-pixel variation.
    pub spatial: bool,
    /// Captures channel-to-channel variation.
    pub channel: bool,
    /// Captures layer-to-layer variation.
    pub layer: bool,
    /// Captures image-to-image variation (input-dependent).
    pub image: bool,
    /// Hardware-cost label as the paper writes it.
    pub hw_cost: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scales_row_checks_every_box() {
        let c = Method::scales().capabilities();
        assert!(c.spatial && c.channel && c.layer && c.image);
        assert_eq!(c.hw_cost, "Low");
    }

    #[test]
    fn table1_e2fif_row_is_all_cross() {
        let c = Method::E2fif.capabilities();
        assert!(!c.spatial && !c.channel && !c.layer && !c.image);
    }

    #[test]
    fn table1_btm_is_image_adaptive_only() {
        let c = Method::Btm.capabilities();
        assert!(c.image && !c.spatial && !c.channel && !c.layer);
    }

    #[test]
    fn display_names() {
        assert_eq!(Method::scales().to_string(), "SCALES");
        assert_eq!(Method::Scales(ScalesComponents::lsf_only()).to_string(), "LSF");
        assert_eq!(Method::Scales(ScalesComponents::lsf_channel()).to_string(), "LSF+chl");
        assert_eq!(Method::Scales(ScalesComponents::lsf_spatial()).to_string(), "LSF+spatial");
    }

    #[test]
    fn binary_flag() {
        assert!(!Method::FullPrecision.is_binary());
        assert!(!Method::Bicubic.is_binary());
        assert!(Method::E2fif.is_binary());
        assert!(Method::scales().is_binary());
    }
}
