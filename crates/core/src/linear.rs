//! The binary linear layer integrated with SCALES — paper Fig. 8(b).
//!
//! Transformer variant: LSF-binarize the token activation, binary linear
//! with per-output binarized weights, spatial (token-wise) re-scaling from
//! the FP input, plus an identity skip when the feature count is preserved.
//! There is no channel re-scaling here — LayerNorm already removes
//! channel-to-channel variation in transformers (paper §III-B).

use crate::lsf::LsfBinarizer;
use crate::method::ScalesComponents;
use crate::spatial::SpatialRescaleToken;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::init::xavier_uniform;
use scales_nn::Module;
use scales_tensor::{Result, Tensor, TensorError};

/// A drop-in binary replacement for a transformer body `Linear`.
pub struct ScalesLinear {
    weight: Var,
    bias: Var,
    lsf: Option<LsfBinarizer>,
    spatial: Option<SpatialRescaleToken>,
    skip: bool,
    in_features: usize,
    out_features: usize,
}

impl ScalesLinear {
    /// Build the full method for a `[.., in] → [.., out]` layer. The skip
    /// engages automatically only when `in == out`.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self::with_components(in_features, out_features, ScalesComponents::full(), rng)
    }

    /// Build with a component subset. `channel` is ignored (see module
    /// docs).
    #[must_use]
    pub fn with_components(
        in_features: usize,
        out_features: usize,
        components: ScalesComponents,
        rng: &mut StdRng,
    ) -> Self {
        let weight = Var::param(xavier_uniform(
            &[out_features, in_features],
            in_features,
            out_features,
            rng,
        ));
        Self {
            weight,
            bias: Var::param(Tensor::zeros(&[out_features])),
            lsf: components.lsf.then(|| LsfBinarizer::for_tokens(in_features)),
            spatial: components.spatial.then(|| SpatialRescaleToken::new(in_features, rng)),
            skip: in_features == out_features,
            in_features,
            out_features,
        }
    }

    /// The latent full-precision weight `[out, in]`.
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Clamp the LSF α after an optimizer step (no-op without LSF).
    pub fn clamp_alpha(&self, floor: f32) {
        if let Some(lsf) = &self.lsf {
            lsf.clamp_alpha(floor);
        }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for ScalesLinear {
    fn forward(&self, input: &Var) -> Result<Var> {
        let shape = input.shape();
        let last = *shape.last().ok_or_else(|| {
            TensorError::InvalidArgument("scales linear needs rank >= 1".into())
        })?;
        if last != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: shape.clone(),
                rhs: vec![self.out_features, self.in_features],
                op: "scales linear",
            });
        }
        let xb = match &self.lsf {
            Some(lsf) => lsf.forward(input)?,
            None => input.sign_ste_bireal(),
        };
        let wb = self.weight.binarize_weight_per_channel()?;
        let m: usize = shape[..shape.len() - 1].iter().product();
        let flat = xb.reshape(&[m, self.in_features])?;
        let y = flat.matmul(&wb.permute(&[1, 0])?)?.add(&self.bias)?;
        let mut out_shape = shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_features;
        let mut y = y.reshape(&out_shape)?;
        if let Some(sp) = &self.spatial {
            y = sp.apply(&y, input)?;
        }
        if self.skip {
            y = y.add(input)?;
        }
        Ok(y)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone(), self.bias.clone()];
        if let Some(l) = &self.lsf {
            p.extend(l.params());
        }
        if let Some(s) = &self.spatial {
            p.extend(s.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;

    #[test]
    fn square_layer_keeps_shape_and_skips() {
        let mut r = rng(41);
        let l = ScalesLinear::new(8, 8, &mut r);
        let x = Var::new(Tensor::from_vec((0..48).map(|i| (i as f32 * 0.3).sin()).collect(), &[2, 3, 8]).unwrap());
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 3, 8]);
    }

    #[test]
    fn rectangular_layer_changes_trailing_axis() {
        let mut r = rng(42);
        let l = ScalesLinear::new(8, 16, &mut r);
        let x = Var::new(Tensor::ones(&[1, 4, 8]));
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 4, 16]);
    }

    #[test]
    fn grads_reach_all_params() {
        let mut r = rng(43);
        let l = ScalesLinear::new(4, 4, &mut r);
        let x = Var::new(Tensor::from_vec((0..8).map(|i| (i as f32 * 0.9).cos()).collect(), &[2, 4]).unwrap());
        let y = l.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        for (i, p) in l.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} missing grad");
        }
    }

    #[test]
    fn rejects_wrong_trailing_axis() {
        let mut r = rng(44);
        let l = ScalesLinear::new(8, 8, &mut r);
        assert!(l.forward(&Var::new(Tensor::ones(&[2, 3, 4]))).is_err());
    }
}
