//! Method-parameterised body layers.
//!
//! SR architectures in `scales-models` are written once and instantiated
//! per binarization method; these enums dispatch a "body conv" / "body
//! linear" to the right implementation so every Table III/IV/V row runs the
//! same architecture.

use crate::baselines::{BamConv2d, BasicBinaryConv2d, BibertLinear, BtmConv2d, E2fifConv2d};
use crate::conv::ScalesConv2d;
use crate::linear::ScalesLinear;
use crate::method::Method;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_nn::layers::{Conv2d, Linear};
use scales_nn::Module;
use scales_tensor::{Result, TensorError};

/// A body convolution built for a specific [`Method`].
pub enum BodyConv {
    /// Full-precision convolution.
    Fp(Conv2d),
    /// E2FIF binary convolution (sign + BN + FP skip).
    E2fif(E2fifConv2d),
    /// BTM binary convolution (BN-free, image-adaptive threshold).
    Btm(BtmConv2d),
    /// BAM binary convolution (FP accumulation map).
    Bam(BamConv2d),
    /// SCALES binary convolution (any component subset).
    Scales(ScalesConv2d),
    /// Plain sign binary convolution (BiBERT-style transformer bodies).
    Basic(BasicBinaryConv2d),
}

impl BodyConv {
    /// Build a body conv for `method`.
    ///
    /// # Errors
    ///
    /// Returns an error for [`Method::Bicubic`] (it has no network).
    pub fn new(method: Method, in_c: usize, out_c: usize, kernel: usize, rng: &mut StdRng) -> Result<Self> {
        Ok(match method {
            Method::FullPrecision => BodyConv::Fp(Conv2d::new(in_c, out_c, kernel, rng)),
            Method::E2fif => BodyConv::E2fif(E2fifConv2d::new(in_c, out_c, kernel, rng)),
            Method::Btm => BodyConv::Btm(BtmConv2d::new(in_c, out_c, kernel, rng)),
            Method::Bam => BodyConv::Bam(BamConv2d::new(in_c, out_c, kernel, rng)),
            Method::Scales(c) => {
                BodyConv::Scales(ScalesConv2d::with_components(in_c, out_c, kernel, c, in_c == out_c, rng))
            }
            Method::Bibert => BodyConv::Basic(BasicBinaryConv2d::new(in_c, out_c, kernel, rng)),
            Method::Bicubic => {
                return Err(TensorError::InvalidArgument(format!(
                    "method {method} cannot build a CNN body conv"
                )))
            }
        })
    }

    /// Clamp any learnable layer scale to a positive floor (no-op for
    /// methods without one). Call after each optimizer step.
    pub fn clamp_alpha(&self, floor: f32) {
        if let BodyConv::Scales(c) = self {
            c.clamp_alpha(floor);
        }
    }
}

impl Module for BodyConv {
    fn forward(&self, input: &Var) -> Result<Var> {
        match self {
            BodyConv::Fp(m) => m.forward(input),
            BodyConv::E2fif(m) => m.forward(input),
            BodyConv::Btm(m) => m.forward(input),
            BodyConv::Bam(m) => m.forward(input),
            BodyConv::Scales(m) => m.forward(input),
            BodyConv::Basic(m) => m.forward(input),
        }
    }

    fn params(&self) -> Vec<Var> {
        match self {
            BodyConv::Fp(m) => m.params(),
            BodyConv::E2fif(m) => m.params(),
            BodyConv::Btm(m) => m.params(),
            BodyConv::Bam(m) => m.params(),
            BodyConv::Scales(m) => m.params(),
            BodyConv::Basic(m) => m.params(),
        }
    }
}

/// A body linear layer built for a specific [`Method`] (transformers).
pub enum BodyLinear {
    /// Full-precision linear.
    Fp(Linear),
    /// BiBERT-style binary linear.
    Bibert(BibertLinear),
    /// SCALES binary linear.
    Scales(ScalesLinear),
}

impl BodyLinear {
    /// Build a body linear for `method`.
    ///
    /// # Errors
    ///
    /// Returns an error for CNN-only methods and bicubic.
    pub fn new(method: Method, in_f: usize, out_f: usize, rng: &mut StdRng) -> Result<Self> {
        Ok(match method {
            Method::FullPrecision => BodyLinear::Fp(Linear::new(in_f, out_f, rng)),
            Method::Bibert => BodyLinear::Bibert(BibertLinear::new(in_f, out_f, rng)),
            Method::Scales(c) => BodyLinear::Scales(ScalesLinear::with_components(in_f, out_f, c, rng)),
            other => {
                return Err(TensorError::InvalidArgument(format!(
                    "method {other} cannot build a transformer body linear"
                )))
            }
        })
    }

    /// Clamp any learnable layer scale to a positive floor.
    pub fn clamp_alpha(&self, floor: f32) {
        if let BodyLinear::Scales(l) = self {
            l.clamp_alpha(floor);
        }
    }
}

impl Module for BodyLinear {
    fn forward(&self, input: &Var) -> Result<Var> {
        match self {
            BodyLinear::Fp(m) => m.forward(input),
            BodyLinear::Bibert(m) => m.forward(input),
            BodyLinear::Scales(m) => m.forward(input),
        }
    }

    fn params(&self) -> Vec<Var> {
        match self {
            BodyLinear::Fp(m) => m.params(),
            BodyLinear::Bibert(m) => m.params(),
            BodyLinear::Scales(m) => m.params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;
    use scales_tensor::Tensor;

    #[test]
    fn every_cnn_method_builds_and_runs() {
        let mut r = rng(61);
        let x = Var::new(Tensor::from_vec((0..64).map(|i| (i as f32 * 0.2).sin()).collect(), &[1, 4, 4, 4]).unwrap());
        for m in [Method::FullPrecision, Method::E2fif, Method::Btm, Method::Bam, Method::scales()] {
            let conv = BodyConv::new(m, 4, 4, 3, &mut r).unwrap();
            let y = conv.forward(&x).unwrap();
            assert_eq!(y.shape(), vec![1, 4, 4, 4], "method {m}");
        }
    }

    #[test]
    fn bicubic_rejects_cnn_body_but_bibert_builds_one() {
        let mut r = rng(62);
        assert!(BodyConv::new(Method::Bicubic, 4, 4, 3, &mut r).is_err());
        let conv = BodyConv::new(Method::Bibert, 4, 4, 3, &mut r).unwrap();
        let x = Var::new(Tensor::ones(&[1, 4, 4, 4]));
        assert_eq!(conv.forward(&x).unwrap().shape(), vec![1, 4, 4, 4]);
    }

    #[test]
    fn every_transformer_method_builds_and_runs() {
        let mut r = rng(63);
        let x = Var::new(Tensor::from_vec((0..32).map(|i| (i as f32 * 0.2).cos()).collect(), &[1, 4, 8]).unwrap());
        for m in [Method::FullPrecision, Method::Bibert, Method::scales()] {
            let lin = BodyLinear::new(m, 8, 8, &mut r).unwrap();
            let y = lin.forward(&x).unwrap();
            assert_eq!(y.shape(), vec![1, 4, 8], "method {m}");
        }
        assert!(BodyLinear::new(Method::E2fif, 8, 8, &mut r).is_err());
    }
}
