//! The layer-wise scaling factor (LSF) activation binarizer — paper §IV-A.

use scales_autograd::Var;
use scales_nn::Module;
use scales_tensor::{Result, Tensor};

/// Learnable activation binarizer `x̂ = α · sign((x − β)/α)` (Eq. 1).
///
/// `α` is a single learnable scale per layer; `β` is a learnable
/// per-channel threshold. For NCHW activations `β` has shape
/// `[1, C, 1, 1]`; construct with [`LsfBinarizer::for_tokens`] to get a
/// `[C]`-shaped threshold for `B×L×C` transformer activations.
///
/// Gradients follow the paper's Eq. (2)/(3) (see
/// `scales_autograd::ops::binarize`).
pub struct LsfBinarizer {
    alpha: Var,
    beta: Var,
}

impl LsfBinarizer {
    /// Binarizer for NCHW activations with `channels` input channels.
    /// `α` initialises to 1 and `β` to 0.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        Self {
            alpha: Var::param(Tensor::ones(&[1])),
            beta: Var::param(Tensor::zeros(&[1, channels, 1, 1])),
        }
    }

    /// Binarizer for `B×L×C` token activations.
    #[must_use]
    pub fn for_tokens(channels: usize) -> Self {
        Self {
            alpha: Var::param(Tensor::ones(&[1])),
            beta: Var::param(Tensor::zeros(&[channels])),
        }
    }

    /// The layer-wise scale parameter.
    #[must_use]
    pub fn alpha(&self) -> &Var {
        &self.alpha
    }

    /// The channel-wise threshold parameter.
    #[must_use]
    pub fn beta(&self) -> &Var {
        &self.beta
    }

    /// Clamp `α` to a positive floor. Call after optimizer steps; Eq. (1)
    /// assumes a positive scale.
    pub fn clamp_alpha(&self, floor: f32) {
        self.alpha.update_value(|t| t.map_inplace(|v| v.max(floor)));
    }
}

impl Module for LsfBinarizer {
    fn forward(&self, input: &Var) -> Result<Var> {
        input.lsf_binarize(&self.alpha, &self.beta)
    }

    fn params(&self) -> Vec<Var> {
        vec![self.alpha.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_plus_minus_alpha() {
        let b = LsfBinarizer::new(2);
        let x = Var::new(Tensor::from_vec(vec![0.5, -0.5, 2.0, -2.0], &[1, 2, 1, 2]).unwrap());
        let y = b.forward(&x).unwrap().value();
        for &v in y.data() {
            assert!(v == 1.0 || v == -1.0);
        }
    }

    #[test]
    fn alpha_changes_magnitude() {
        let b = LsfBinarizer::new(1);
        b.alpha().set_value(Tensor::from_vec(vec![0.25], &[1]).unwrap());
        let x = Var::new(Tensor::from_vec(vec![3.0, -3.0], &[1, 1, 1, 2]).unwrap());
        let y = b.forward(&x).unwrap().value();
        assert_eq!(y.data(), &[0.25, -0.25]);
    }

    #[test]
    fn params_trainable_end_to_end() {
        let b = LsfBinarizer::new(2);
        let x = Var::new(Tensor::from_vec(vec![0.5, -0.7, 0.1, -0.2], &[1, 2, 1, 2]).unwrap());
        let y = b.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        assert!(b.alpha().grad().is_some());
        assert!(b.beta().grad().is_some());
    }

    #[test]
    fn clamp_alpha_enforces_floor() {
        let b = LsfBinarizer::new(1);
        b.alpha().set_value(Tensor::from_vec(vec![-0.3], &[1]).unwrap());
        b.clamp_alpha(1e-3);
        assert_eq!(b.alpha().value().data()[0], 1e-3);
    }

    #[test]
    fn token_variant_shapes() {
        let b = LsfBinarizer::for_tokens(4);
        let x = Var::new(Tensor::ones(&[2, 3, 4]));
        let y = b.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 3, 4]);
    }
}
