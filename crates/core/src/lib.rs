//! # scales-core
//!
//! The paper's primary contribution: the **SCALES** binarization method for
//! super-resolution networks (Wei et al., DATE 2025), plus the baseline
//! binary layers it is evaluated against.
//!
//! Components (paper §IV):
//!
//! * [`LsfBinarizer`] — layer-wise scaling factor + channel-wise threshold
//!   activation binarizer (Eq. 1), trained with the Eq. (2)/(3) gradients.
//! * [`SpatialRescale`] / [`SpatialRescaleToken`] — input-dependent
//!   per-pixel re-scaling (Eq. 4, Fig. 6).
//! * [`ChannelRescale`] — GlobalAvgPool → Conv1d(k=5) → sigmoid channel
//!   re-scaling with only `k` FP parameters (Eq. 5, Fig. 7).
//! * [`ScalesConv2d`] / [`ScalesLinear`] — the integrated binary layers of
//!   Fig. 8, drop-in replacements for body convolutions / linears.
//! * [`baselines`] — E2FIF, BTM, BAM and BiBERT-style layers.
//! * [`Method`] / [`BodyConv`] / [`BodyLinear`] — method registry and
//!   factories so one architecture serves every comparison row.
//!
//! ```
//! use scales_core::ScalesConv2d;
//! use scales_nn::{init, Module};
//! use scales_autograd::Var;
//! use scales_tensor::Tensor;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let mut rng = init::rng(0);
//! let conv = ScalesConv2d::new(8, 8, 3, &mut rng);
//! let x = Var::new(Tensor::ones(&[1, 8, 6, 6]));
//! assert_eq!(conv.forward(&x)?.shape(), vec![1, 8, 6, 6]);
//! # Ok(())
//! # }
//! ```

pub mod baselines;
mod channel;
mod conv;
mod deploy;
mod factory;
mod linear;
mod lsf;
mod method;
mod spatial;

pub use channel::ChannelRescale;
pub use conv::ScalesConv2d;
pub use deploy::{DeployFallback, DeployedBodyConv, DeployedScalesConv2d, FloatConv2d};
pub use factory::{BodyConv, BodyLinear};
pub use linear::ScalesLinear;
pub use lsf::LsfBinarizer;
pub use method::{Capabilities, Method, ScalesComponents};
pub use spatial::{SpatialRescale, SpatialRescaleToken};
