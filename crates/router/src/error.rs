//! The router's typed error surface.

use scales_runtime::SubmitError;

/// Everything that can go wrong routing, loading, or reloading a model.
///
/// The variants partition cleanly onto HTTP statuses for the network
/// edge: an unknown name is the caller's 404, a duplicate or
/// non-reloadable name is a 409, a failed load is the server's 500, and
/// submission errors map exactly as the single-runtime front end already
/// maps [`SubmitError`].
#[derive(Debug)]
pub enum RouterError {
    /// No model is registered under this name.
    UnknownModel {
        /// The name the caller asked for.
        name: String,
    },
    /// A model with this name is already registered; names are unique.
    DuplicateModel {
        /// The contested name.
        name: String,
    },
    /// The model name does not satisfy the router's naming rule
    /// (1–64 characters from `[A-Za-z0-9._-]`) — enforced at
    /// registration so names embed safely in URLs, metric labels, and
    /// JSON without escaping.
    InvalidName {
        /// The rejected name.
        name: String,
        /// Which rule it broke.
        reason: &'static str,
    },
    /// The model was registered in-memory (no artifact path), so there is
    /// no source to reload or re-admit it from; it is pinned resident.
    NotReloadable {
        /// The pinned model's name.
        name: String,
    },
    /// Reading, decoding, or spawning a runtime for an artifact failed.
    /// A failed load never disturbs the serving version of the model.
    Load {
        /// The model whose (re)load failed.
        name: String,
        /// The underlying failure, rendered.
        detail: String,
    },
    /// The per-model runtime refused or timed out the request.
    Submit(SubmitError),
    /// [`ModelRouter::shutdown`](crate::ModelRouter::shutdown) has begun:
    /// resident models drain, new work and new models are refused.
    ShuttingDown,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::UnknownModel { name } => write!(f, "no model named {name:?}"),
            RouterError::DuplicateModel { name } => {
                write!(f, "a model named {name:?} is already registered")
            }
            RouterError::InvalidName { name, reason } => {
                write!(f, "invalid model name {name:?}: {reason}")
            }
            RouterError::NotReloadable { name } => {
                write!(f, "model {name:?} was registered in-memory and has no artifact path to reload from")
            }
            RouterError::Load { name, detail } => {
                write!(f, "loading model {name:?} failed: {detail}")
            }
            RouterError::Submit(e) => write!(f, "submitting to the model's runtime failed: {e}"),
            RouterError::ShuttingDown => f.write_str("router is shutting down"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Submit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubmitError> for RouterError {
    fn from(e: SubmitError) -> Self {
        RouterError::Submit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant renders a non-empty, variant-specific message (the
    /// `scales-io` error-surface discipline). Add a row when
    /// `RouterError` grows a variant.
    #[test]
    fn display_is_exhaustive_and_variant_specific() {
        let cases: Vec<(RouterError, &str)> = vec![
            (RouterError::UnknownModel { name: "edsr".into() }, "no model named \"edsr\""),
            (
                RouterError::DuplicateModel { name: "edsr".into() },
                "already registered",
            ),
            (
                RouterError::InvalidName { name: "a b".into(), reason: "spaces" },
                "invalid model name \"a b\": spaces",
            ),
            (
                RouterError::NotReloadable { name: "pinned".into() },
                "no artifact path",
            ),
            (
                RouterError::Load { name: "edsr".into(), detail: "bad magic".into() },
                "loading model \"edsr\" failed: bad magic",
            ),
            (
                RouterError::Submit(SubmitError::ShuttingDown),
                "runtime failed: runtime is shutting down",
            ),
            (RouterError::ShuttingDown, "router is shutting down"),
        ];
        assert_eq!(cases.len(), 7, "add a row when RouterError grows a variant");
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} renders {text:?}, wanted {needle:?}");
            let dyn_err: &dyn std::error::Error = &err;
            match err {
                RouterError::Submit(_) => assert!(dyn_err.source().is_some()),
                _ => assert!(dyn_err.source().is_none(), "{err:?} is a leaf error"),
            }
        }
    }
}
