//! [`ModelRouter`] — named model registry, per-request routing,
//! zero-downtime hot-swap, and byte-budgeted LRU eviction.

use crate::error::RouterError;
use crate::lock;
use scales_models::SrNetwork;
use scales_runtime::{Runtime, RuntimeConfig, RuntimeStats};
use scales_serve::{Engine, SrRequest, SrResponse};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fleet sizing: the per-model runtime configuration every loaded version
/// is spawned with, plus the optional resident-memory budget the LRU
/// eviction enforces.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Byte budget across all resident models (packed weights plus live
    /// planned-executor workspaces). When a load pushes the total over
    /// the budget, the least-recently-used *path-backed* models are
    /// drained and evicted until it fits; in-memory registrations are
    /// pinned (they have no source to reload from) and never evicted, so
    /// a fleet of pinned models can legitimately exceed the budget.
    /// `None` disables eviction.
    pub memory_budget: Option<usize>,
    /// Sizing of each model's private [`Runtime`] worker pool.
    pub runtime: RuntimeConfig,
    /// Transient-read retries during a (re)load: a failed artifact *read*
    /// is retried this many times with doubling backoff before the load
    /// fails. Decode failures never retry — bad bytes are a content
    /// problem, not an IO blip. `0` fails on the first read error.
    /// Default: 2.
    pub reload_retries: u32,
    /// Backoff before the first read retry; doubles on every further
    /// attempt (bounded by `reload_retries`). Default: 20 ms.
    pub reload_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            memory_budget: None,
            runtime: RuntimeConfig::default(),
            reload_retries: 2,
            reload_backoff: Duration::from_millis(20),
        }
    }
}

impl RouterConfig {
    /// Check the configuration is servable.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::Load`] (named `<config>`) when the embedded
    /// [`RuntimeConfig`] is invalid.
    pub fn validate(&self) -> Result<(), RouterError> {
        self.runtime.validate().map_err(|e| RouterError::Load {
            name: "<config>".into(),
            detail: e.to_string(),
        })
    }
}

/// Whether a registered model currently holds a serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// A runtime is resident and accepting requests.
    Serving,
    /// The engine was drained and dropped by the memory budget; the next
    /// request (or an explicit [`ModelRouter::reload`]) reloads it from
    /// its artifact path.
    Evicted,
}

impl std::fmt::Display for ModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelState::Serving => "serving",
            ModelState::Evicted => "evicted",
        })
    }
}

/// One loaded version of a model: its runtime and the weight bytes it
/// was admitted with. Submitters clone the `Arc` for the duration of one
/// request; a swap drains the old version by waiting for those clones to
/// drop before shutting the runtime down.
struct ModelVersion {
    runtime: Runtime,
    weight_bytes: usize,
}

/// The mutable half of a registry entry, behind the entry's own mutex.
struct EntryState {
    /// The serving version; `None` while evicted.
    current: Option<Arc<ModelVersion>>,
    /// Monotonic version counter; 1 is the first load.
    version: u64,
    arch: String,
    scale: usize,
    /// FNV-1a over the serialized artifact bytes of the current version.
    fingerprint: u64,
    weight_bytes: usize,
    /// Times this model was drained by the memory budget.
    evictions: u64,
    /// Successful hot-swaps (reloads that replaced a serving version).
    swaps: u64,
    /// LRU clock stamp of the last routed request (or load).
    last_used: u64,
    /// Folded final stats of every drained version, so a model's serving
    /// record survives hot-swaps and evictions.
    retired: Option<RuntimeStats>,
}

/// One named model in the registry.
struct ModelEntry {
    name: String,
    /// Artifact path for path-backed models; `None` pins an in-memory
    /// registration resident (it cannot be reloaded or evicted).
    source: Option<PathBuf>,
    state: Mutex<EntryState>,
}

struct Inner {
    config: RouterConfig,
    models: Mutex<HashMap<String, Arc<ModelEntry>>>,
    shutdown: AtomicBool,
    /// LRU clock: bumped on every routed request and load.
    clock: AtomicU64,
}

/// A fleet of named serving engines behind one routing surface.
///
/// * **Routing** — [`ModelRouter::submit_wait_timeout`] routes a request
///   to the model it names; an unknown name is a typed
///   [`RouterError::UnknownModel`].
/// * **Hot-swap** — [`ModelRouter::reload`] builds the *new* version
///   completely (read, decode, spawn runtime) before touching the
///   serving one, then swaps the `Arc` so new intake lands on the new
///   version instantly, and only then drains the old runtime to its last
///   in-flight ticket. A failed load returns [`RouterError::Load`] and
///   the serving version keeps serving — zero downtime either way.
/// * **Memory accounting** — each model is charged its packed-weight
///   bytes (the serialized artifact size) plus the live planned-executor
///   workspace bytes of its worker pool; over a configured budget the
///   least-recently-used path-backed models are drained and evicted, and
///   lazily reloaded on their next request.
///
/// Cloning the router clones a handle to the same fleet (the registry is
/// internally `Arc`-shared); [`ModelRouter::shutdown`] drains every model
/// and is idempotent across handles.
#[derive(Clone)]
pub struct ModelRouter {
    inner: Arc<Inner>,
}

/// Everything the router knows about one model: identity, state, memory
/// charges, and the serving counters folded across every version it has
/// run (live and drained).
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// Registered name (unique; the routing key).
    pub name: String,
    /// Architecture name of the loaded model.
    pub arch: String,
    /// Upscaling factor of the loaded model.
    pub scale: usize,
    /// Monotonic version counter; each successful (re)load increments it.
    pub version: u64,
    /// FNV-1a fingerprint of the current version's artifact bytes.
    pub fingerprint: u64,
    /// Whether a runtime is resident.
    pub state: ModelState,
    /// Packed-weight bytes (serialized artifact size) of the current
    /// version.
    pub weight_bytes: usize,
    /// Bytes currently charged against the budget: weight bytes plus the
    /// live worker workspaces. Zero while evicted.
    pub resident_bytes: usize,
    /// Times the memory budget drained this model.
    pub evictions: u64,
    /// Successful hot-swaps.
    pub swaps: u64,
    /// Whether the model can be reloaded (and therefore evicted): true
    /// exactly for path-backed registrations.
    pub reloadable: bool,
    /// Serving counters folded across every version of this model, or
    /// `None` when nothing has ever been loaded (unreachable through the
    /// public API — registration always loads).
    pub runtime: Option<RuntimeStats>,
}

/// A point-in-time (or final, from [`ModelRouter::shutdown`]) fleet
/// report: one [`ModelStats`] per registered model, sorted by name.
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// Per-model reports, sorted by name.
    pub models: Vec<ModelStats>,
}

impl RouterStats {
    /// Fold every model's serving counters into one [`RuntimeStats`] —
    /// the fleet's aggregate record, shaped like a single runtime's so
    /// existing single-model tooling can consume it. Zeroed when the
    /// fleet is empty.
    #[must_use]
    pub fn merged_runtime(&self) -> RuntimeStats {
        let mut acc: Option<RuntimeStats> = None;
        for model in &self.models {
            if let Some(stats) = &model.runtime {
                acc = Some(fold_runtime(acc, stats));
            }
        }
        acc.unwrap_or_else(|| RuntimeStats {
            workers: 0,
            backend: scales_tensor::backend::Backend::Scalar,
            simd: scales_tensor::SimdLevel::None,
            max_batch: 0,
            submitted: 0,
            rejected: 0,
            shed: 0,
            quota_rejected: 0,
            expired: 0,
            deadline_misses: 0,
            completed: 0,
            failed: 0,
            images: 0,
            dispatches: 0,
            coalesced: 0,
            queue_depth: 0,
            queue_high_water: 0,
            workspace_bytes: 0,
            batch_fill: 0.0,
            busy: Duration::ZERO,
            elapsed: Duration::ZERO,
            latency: scales_runtime::LatencyHistogram::default(),
            queue_wait: scales_runtime::LatencyHistogram::default(),
            batch_wait: scales_runtime::LatencyHistogram::default(),
            infer: scales_runtime::LatencyHistogram::default(),
            late_discarded: 0,
            op_profile: scales_telemetry::OpProfile::default(),
            tenants: Vec::new(),
        })
    }
}

/// Fold `s` into `acc`: counters and latency add, high-water marks take
/// the max, `workspace_bytes` takes the latest (`s` wins — callers fold
/// retired versions first, then the live one).
#[allow(clippy::cast_precision_loss)]
fn fold_runtime(acc: Option<RuntimeStats>, s: &RuntimeStats) -> RuntimeStats {
    let Some(mut a) = acc else { return s.clone() };
    a.workers = a.workers.max(s.workers);
    a.max_batch = a.max_batch.max(s.max_batch);
    a.submitted += s.submitted;
    a.rejected += s.rejected;
    a.shed += s.shed;
    a.quota_rejected += s.quota_rejected;
    a.expired += s.expired;
    a.deadline_misses += s.deadline_misses;
    a.completed += s.completed;
    a.failed += s.failed;
    a.images += s.images;
    a.dispatches += s.dispatches;
    a.coalesced += s.coalesced;
    a.queue_depth += s.queue_depth;
    a.queue_high_water = a.queue_high_water.max(s.queue_high_water);
    a.workspace_bytes = s.workspace_bytes;
    for t in &s.tenants {
        match a.tenants.iter_mut().find(|have| have.tenant == t.tenant) {
            Some(have) => {
                have.weight = t.weight; // latest fold wins, like workspace_bytes
                have.queued += t.queued;
                have.submitted += t.submitted;
                have.completed += t.completed;
                have.failed += t.failed;
                have.rejected += t.rejected;
                have.shed += t.shed;
                have.quota_rejected += t.quota_rejected;
                have.expired += t.expired;
                have.deadline_misses += t.deadline_misses;
            }
            None => a.tenants.push(t.clone()),
        }
    }
    a.tenants.sort_by(|x, y| x.tenant.cmp(&y.tenant));
    a.batch_fill = if a.dispatches == 0 || a.max_batch == 0 {
        0.0
    } else {
        a.images as f64 / (a.dispatches as f64 * a.max_batch as f64)
    };
    a.busy += s.busy;
    a.elapsed += s.elapsed;
    a.latency.merge(&s.latency);
    a.queue_wait.merge(&s.queue_wait);
    a.batch_wait.merge(&s.batch_wait);
    a.infer.merge(&s.infer);
    a.late_discarded += s.late_discarded;
    a.op_profile.merge(&s.op_profile);
    a
}

/// What a successful artifact load produced, before it is installed.
struct LoadedVersion {
    version: Arc<ModelVersion>,
    arch: String,
    scale: usize,
    fingerprint: u64,
    weight_bytes: usize,
}

impl ModelRouter {
    /// Create an empty fleet.
    ///
    /// # Errors
    ///
    /// Returns a typed error when the embedded runtime sizing is invalid.
    pub fn new(config: RouterConfig) -> Result<Self, RouterError> {
        config.validate()?;
        Ok(Self {
            inner: Arc::new(Inner {
                config,
                models: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                clock: AtomicU64::new(0),
            }),
        })
    }

    /// The fleet configuration.
    #[must_use]
    pub fn config(&self) -> RouterConfig {
        self.inner.config.clone()
    }

    /// Register a model from a `scales-io` artifact file (checkpoint or
    /// deployed artifact). Path-backed models are **reloadable** — a
    /// later [`ModelRouter::reload`] hot-swaps whatever the file then
    /// holds — and **evictable** under the memory budget.
    ///
    /// # Errors
    ///
    /// [`RouterError::InvalidName`], [`RouterError::DuplicateModel`],
    /// [`RouterError::Load`] when the file cannot be read/decoded or the
    /// runtime cannot spawn, and [`RouterError::ShuttingDown`].
    pub fn register_path(
        &self,
        name: &str,
        path: impl Into<PathBuf>,
    ) -> Result<ModelStats, RouterError> {
        validate_name(name)?;
        let path = path.into();
        let loaded = self.load_version(name, &path)?;
        self.install(name, Some(path), loaded)
    }

    /// Register an in-memory deployed model. In-memory models are
    /// **pinned**: they have no artifact path to reload from, so they are
    /// never evicted and [`ModelRouter::reload`] refuses them with
    /// [`RouterError::NotReloadable`]. The fingerprint and weight bytes
    /// are taken from the model's serialized artifact form.
    ///
    /// # Errors
    ///
    /// [`RouterError::InvalidName`], [`RouterError::DuplicateModel`],
    /// [`RouterError::Load`] when the engine or runtime cannot be built,
    /// and [`RouterError::ShuttingDown`].
    pub fn register_model(
        &self,
        name: &str,
        model: scales_models::DeployedNetwork,
    ) -> Result<ModelStats, RouterError> {
        validate_name(name)?;
        let bytes = scales_io::artifact_to_bytes(&model);
        let fingerprint = scales_io::fingerprint(&bytes);
        let weight_bytes = bytes.len();
        let arch = model.name().to_string();
        let scale = model.scale();
        let version = self.spawn_version(name, model, weight_bytes)?;
        self.install(
            name,
            None,
            LoadedVersion { version, arch, scale, fingerprint, weight_bytes },
        )
    }

    /// Route one request to the model named `name`, bounding the whole
    /// round trip by `timeout` exactly as
    /// [`Runtime::submit_wait_timeout`] does. An evicted path-backed
    /// model is transparently reloaded first (the caller pays the load
    /// latency of its own cold request).
    ///
    /// The nested result separates the layers: the outer
    /// [`RouterError`] is the router or runtime refusing the request, the
    /// inner result is the serving outcome.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`], [`RouterError::Load`] when a lazy
    /// reload fails, [`RouterError::Submit`] for runtime refusals, and
    /// [`RouterError::ShuttingDown`].
    pub fn submit_wait_timeout(
        &self,
        name: &str,
        request: SrRequest,
        timeout: Duration,
    ) -> Result<scales_tensor::Result<SrResponse>, RouterError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        let entry = self.entry(name)?;
        let mut reloaded = false;
        let version = {
            let mut st = lock(&entry.state);
            st.last_used = self.inner.clock.fetch_add(1, Ordering::Relaxed);
            match &st.current {
                Some(v) => Arc::clone(v),
                None => {
                    // Lazily re-admit an evicted model from its source.
                    let source = entry
                        .source
                        .clone()
                        .ok_or_else(|| RouterError::NotReloadable { name: name.into() })?;
                    let loaded = self.load_version(name, &source)?;
                    st.version += 1;
                    st.arch = loaded.arch;
                    st.scale = loaded.scale;
                    st.fingerprint = loaded.fingerprint;
                    st.weight_bytes = loaded.weight_bytes;
                    st.current = Some(Arc::clone(&loaded.version));
                    reloaded = true;
                    loaded.version
                }
            }
        };
        let outcome = version.runtime.submit_wait_timeout(request, timeout);
        // Dropping `version` releases this request's hold on the `Arc` —
        // that is what lets a concurrent swap's drain proceed, and it
        // must happen before any budget sweep this thread runs (draining
        // a version while holding a clone of it would never terminate).
        drop(version);
        if reloaded {
            // The re-admitted bytes may have pushed the fleet back over
            // budget; evict colder models, never the one just used.
            self.enforce_budget(Some(name));
        }
        outcome.map_err(RouterError::Submit)
    }

    /// Hot-swap `name` to whatever its artifact file currently holds,
    /// with zero downtime:
    ///
    /// 1. the new version is built completely first — file read, decode,
    ///    engine build, runtime spawn — while the old version keeps
    ///    serving; a failure at any point returns [`RouterError::Load`]
    ///    and changes nothing;
    /// 2. the serving `Arc` is swapped under the entry lock, so every
    ///    request routed from that instant on lands on the new version;
    /// 3. the old version is drained: the swap waits for in-flight
    ///    submitters to release their clones, then shuts the old runtime
    ///    down and folds its final stats into the model's record. Every
    ///    request the old version accepted is served, never dropped.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`], [`RouterError::NotReloadable`] for
    /// in-memory registrations, [`RouterError::Load`], and
    /// [`RouterError::ShuttingDown`].
    pub fn reload(&self, name: &str) -> Result<ModelStats, RouterError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(RouterError::ShuttingDown);
        }
        let entry = self.entry(name)?;
        let source = entry
            .source
            .clone()
            .ok_or_else(|| RouterError::NotReloadable { name: name.into() })?;
        let loaded = self.load_version(name, &source)?;
        let old = {
            let mut st = lock(&entry.state);
            st.version += 1;
            st.arch = loaded.arch;
            st.scale = loaded.scale;
            st.fingerprint = loaded.fingerprint;
            st.weight_bytes = loaded.weight_bytes;
            st.last_used = self.inner.clock.fetch_add(1, Ordering::Relaxed);
            let old = st.current.replace(loaded.version);
            if old.is_some() {
                st.swaps += 1;
            }
            old
        };
        if let Some(old) = old {
            let final_stats = drain(old);
            let mut st = lock(&entry.state);
            st.retired = Some(fold_runtime(st.retired.take(), &final_stats));
        }
        self.enforce_budget(Some(name));
        Ok(self.snapshot(&entry))
    }

    /// Per-model reports for every registered model, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<ModelStats> {
        let entries: Vec<Arc<ModelEntry>> =
            lock(&self.inner.models).values().cloned().collect();
        let mut models: Vec<ModelStats> =
            entries.iter().map(|e| self.snapshot(e)).collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        models
    }

    /// The report for one model.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownModel`].
    pub fn model(&self, name: &str) -> Result<ModelStats, RouterError> {
        let entry = self.entry(name)?;
        Ok(self.snapshot(&entry))
    }

    /// A live fleet snapshot.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        RouterStats { models: self.list() }
    }

    /// Bytes currently charged against the memory budget across the
    /// fleet (resident models only).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.list().iter().map(|m| m.resident_bytes).sum()
    }

    /// Render the fleet's per-model serving record in the Prometheus
    /// text exposition format: request counters, latency histograms,
    /// eviction/swap counters, memory gauges, and an info series — every
    /// line labeled `model="<name>"`, one `# HELP`/`# TYPE` block per
    /// metric. This is what the HTTP front end's `GET /metrics` serves
    /// in fleet mode (plus its own connection counters). Empty fleet →
    /// empty string.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        /// Metric name, help text, and per-model value extractor.
        type MetricColumn = (&'static str, &'static str, fn(&ModelStats) -> u64);
        let models = self.list();
        if models.is_empty() {
            return String::new();
        }
        let mut out = String::with_capacity(4096 * models.len());
        let counters: [MetricColumn; 10] = [
            (
                "scales_model_requests_submitted_total",
                "Requests accepted for this model across all versions.",
                |m| m.runtime.as_ref().map_or(0, |r| r.submitted),
            ),
            (
                "scales_model_requests_completed_total",
                "Requests served successfully for this model across all versions.",
                |m| m.runtime.as_ref().map_or(0, |r| r.completed),
            ),
            (
                "scales_model_requests_failed_total",
                "Requests resolved with an error for this model.",
                |m| m.runtime.as_ref().map_or(0, |r| r.failed),
            ),
            (
                "scales_model_requests_rejected_total",
                "Requests rejected at submission for this model.",
                |m| m.runtime.as_ref().map_or(0, |r| r.rejected),
            ),
            (
                "scales_model_requests_shed_total",
                "Requests refused early by this model's shed policy.",
                |m| m.runtime.as_ref().map_or(0, |r| r.shed),
            ),
            (
                "scales_model_requests_expired_total",
                "Requests whose deadline passed before this model dispatched them.",
                |m| m.runtime.as_ref().map_or(0, |r| r.expired),
            ),
            (
                "scales_model_deadline_misses_total",
                "Requests this model served after their deadline.",
                |m| m.runtime.as_ref().map_or(0, |r| r.deadline_misses),
            ),
            (
                "scales_model_images_total",
                "Images served by this model across all versions.",
                |m| m.runtime.as_ref().map_or(0, |r| r.images),
            ),
            (
                "scales_model_evictions_total",
                "Times the memory budget drained this model.",
                |m| m.evictions,
            ),
            (
                "scales_model_swaps_total",
                "Hot-swaps that replaced a serving version of this model.",
                |m| m.swaps,
            ),
        ];
        for (metric, help, value) in counters {
            let _ = writeln!(out, "# HELP {metric} {help}\n# TYPE {metric} counter");
            for m in &models {
                let _ = writeln!(out, "{metric}{{model=\"{}\"}} {}", m.name, value(m));
            }
        }
        let gauges: [MetricColumn; 4] = [
            (
                "scales_model_memory_bytes",
                "Bytes charged against the budget (weights + live workspaces).",
                |m| m.resident_bytes as u64,
            ),
            (
                "scales_model_weight_bytes",
                "Packed-weight bytes (serialized artifact size) of the current version.",
                |m| m.weight_bytes as u64,
            ),
            ("scales_model_version", "Monotonic version counter of the model's loads.", |m| {
                m.version
            }),
            ("scales_model_serving", "1 while a runtime is resident, 0 while evicted.", |m| {
                u64::from(m.state == ModelState::Serving)
            }),
        ];
        for (metric, help, value) in gauges {
            let _ = writeln!(out, "# HELP {metric} {help}\n# TYPE {metric} gauge");
            for m in &models {
                let _ = writeln!(out, "{metric}{{model=\"{}\"}} {}", m.name, value(m));
            }
        }
        let _ = writeln!(
            out,
            "# HELP scales_model_info Model identity (constant 1; labels carry the info).\n\
             # TYPE scales_model_info gauge"
        );
        for m in &models {
            let _ = writeln!(
                out,
                "scales_model_info{{model=\"{}\",arch=\"{}\",scale=\"{}\",fingerprint=\"{:016x}\",state=\"{}\"}} 1",
                m.name, m.arch, m.scale, m.fingerprint, m.state
            );
        }
        let name = "scales_model_request_latency_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} End-to-end request latency per model (enqueue to ticket resolution).\n\
             # TYPE {name} histogram"
        );
        for m in &models {
            let Some(stats) = &m.runtime else { continue };
            let mut cumulative = 0u64;
            for (i, &count) in stats.latency.bucket_counts().iter().enumerate() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{model=\"{}\",le=\"{}\"}} {cumulative}",
                    m.name,
                    scales_runtime::LatencyHistogram::bucket_bound(i).as_secs_f64()
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{{model=\"{}\",le=\"+Inf\"}} {}",
                m.name,
                stats.latency.count()
            );
            let _ = writeln!(
                out,
                "{name}_sum{{model=\"{}\"}} {}",
                m.name,
                stats.latency.sum().as_secs_f64()
            );
            let _ =
                writeln!(out, "{name}_count{{model=\"{}\"}} {}", m.name, stats.latency.count());
        }
        out
    }

    /// Drain the whole fleet: refuse new work and new models, shut every
    /// resident runtime down gracefully (every accepted ticket resolves),
    /// and return the final per-model reports. Idempotent across handles:
    /// later calls return the same final record.
    #[must_use = "the final per-model stats are the fleet's serving record"]
    pub fn shutdown(&self) -> RouterStats {
        self.inner.shutdown.store(true, Ordering::Release);
        let entries: Vec<Arc<ModelEntry>> =
            lock(&self.inner.models).values().cloned().collect();
        for entry in &entries {
            let old = lock(&entry.state).current.take();
            if let Some(old) = old {
                let final_stats = drain(old);
                let mut st = lock(&entry.state);
                st.retired = Some(fold_runtime(st.retired.take(), &final_stats));
            }
        }
        self.stats()
    }

    // -- internals ---------------------------------------------------------

    fn entry(&self, name: &str) -> Result<Arc<ModelEntry>, RouterError> {
        lock(&self.inner.models)
            .get(name)
            .cloned()
            .ok_or_else(|| RouterError::UnknownModel { name: name.into() })
    }

    /// Read the artifact bytes, retrying transient IO failures with
    /// bounded doubling backoff
    /// ([`reload_retries`](RouterConfig::reload_retries) /
    /// [`reload_backoff`](RouterConfig::reload_backoff)). Only the *read*
    /// stage retries; decode failures downstream fail fast.
    fn read_artifact(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut backoff = self.inner.config.reload_backoff;
        let mut attempts_left = self.inner.config.reload_retries;
        loop {
            match read_once(path) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => {
                    if attempts_left == 0 {
                        return Err(e);
                    }
                    attempts_left -= 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }

    /// Read + decode + spawn a runtime for the artifact at `path` —
    /// everything a (re)load pays, entirely off the serving path.
    fn load_version(&self, name: &str, path: &Path) -> Result<LoadedVersion, RouterError> {
        let fail = |detail: String| RouterError::Load { name: name.into(), detail };
        let bytes = self
            .read_artifact(path)
            .map_err(|e| fail(format!("reading {}: {e}", path.display())))?;
        let fingerprint = scales_io::fingerprint(&bytes);
        let weight_bytes = bytes.len();
        let kind = scales_io::sniff_kind(&bytes).map_err(|e| fail(e.to_string()))?;
        match kind {
            scales_io::ArtifactKind::Checkpoint => {
                let net =
                    scales_io::checkpoint_from_bytes(&bytes).map_err(|e| fail(e.to_string()))?;
                let arch = net.arch().name().to_string();
                let scale = SrNetwork::scale(&net);
                let version = self.spawn_version(name, net, weight_bytes)?;
                Ok(LoadedVersion { version, arch, scale, fingerprint, weight_bytes })
            }
            scales_io::ArtifactKind::Deployed => {
                let net =
                    scales_io::artifact_from_bytes(&bytes).map_err(|e| fail(e.to_string()))?;
                let arch = net.name().to_string();
                let scale = net.scale();
                let version = self.spawn_version(name, net, weight_bytes)?;
                Ok(LoadedVersion { version, arch, scale, fingerprint, weight_bytes })
            }
        }
    }

    /// Build an engine around `model` (deployed precision by default,
    /// with the builder's documented training fallback) and spawn its
    /// runtime worker pool.
    fn spawn_version<M: scales_models::InferModel + 'static>(
        &self,
        name: &str,
        model: M,
        weight_bytes: usize,
    ) -> Result<Arc<ModelVersion>, RouterError> {
        let fail = |detail: String| RouterError::Load { name: name.into(), detail };
        let engine = Engine::builder().model(model).build().map_err(|e| fail(e.to_string()))?;
        let runtime = Runtime::spawn(engine, self.inner.config.runtime.clone())
            .map_err(|e| fail(e.to_string()))?;
        Ok(Arc::new(ModelVersion { runtime, weight_bytes }))
    }

    /// Insert a freshly loaded model under `name`, then let the budget
    /// sweep evict colder models if the admission pushed the fleet over.
    fn install(
        &self,
        name: &str,
        source: Option<PathBuf>,
        loaded: LoadedVersion,
    ) -> Result<ModelStats, RouterError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            // The fresh runtime served nothing; drain it quietly.
            let _ = drain(loaded.version);
            return Err(RouterError::ShuttingDown);
        }
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            source,
            state: Mutex::new(EntryState {
                current: Some(loaded.version),
                version: 1,
                arch: loaded.arch,
                scale: loaded.scale,
                fingerprint: loaded.fingerprint,
                weight_bytes: loaded.weight_bytes,
                evictions: 0,
                swaps: 0,
                last_used: self.inner.clock.fetch_add(1, Ordering::Relaxed),
                retired: None,
            }),
        });
        {
            let mut models = lock(&self.inner.models);
            if models.contains_key(name) {
                // Lost a registration race: the runtime we spawned for
                // nothing is drained outside the map lock.
                drop(models);
                if let Some(v) = lock(&entry.state).current.take() {
                    let _ = drain(v);
                }
                return Err(RouterError::DuplicateModel { name: name.into() });
            }
            models.insert(name.to_string(), Arc::clone(&entry));
        }
        self.enforce_budget(Some(name));
        Ok(self.snapshot(&entry))
    }

    fn snapshot(&self, entry: &ModelEntry) -> ModelStats {
        let st = lock(&entry.state);
        let (state, resident_bytes, live) = match &st.current {
            Some(v) => {
                let stats = v.runtime.stats();
                (ModelState::Serving, v.weight_bytes + stats.workspace_bytes, Some(stats))
            }
            None => (ModelState::Evicted, 0, None),
        };
        let mut runtime = st.retired.clone();
        if let Some(live) = &live {
            runtime = Some(fold_runtime(runtime, live));
        }
        ModelStats {
            name: entry.name.clone(),
            arch: st.arch.clone(),
            scale: st.scale,
            version: st.version,
            fingerprint: st.fingerprint,
            state,
            weight_bytes: st.weight_bytes,
            resident_bytes,
            evictions: st.evictions,
            swaps: st.swaps,
            reloadable: entry.source.is_some(),
            runtime,
        }
    }

    /// While the fleet's resident bytes exceed the budget, drain the
    /// least-recently-used path-backed model. In-memory registrations are
    /// pinned, and `protect` (the model the caller just loaded or used)
    /// is never the victim — both to keep the hottest model resident and
    /// because the caller may still hold its version `Arc`. When only
    /// pinned/protected models remain over budget the sweep stops: the
    /// budget is a target, not an admission refusal — the newest load
    /// always serves.
    fn enforce_budget(&self, protect: Option<&str>) {
        let Some(budget) = self.inner.config.memory_budget else { return };
        loop {
            let entries: Vec<Arc<ModelEntry>> =
                lock(&self.inner.models).values().cloned().collect();
            let mut total = 0usize;
            let mut coldest: Option<(u64, Arc<ModelEntry>)> = None;
            for entry in &entries {
                let st = lock(&entry.state);
                let Some(v) = &st.current else { continue };
                total += st.weight_bytes + v.runtime.stats().workspace_bytes;
                if entry.source.is_some() && protect != Some(entry.name.as_str()) {
                    let colder = coldest.as_ref().is_none_or(|(used, _)| st.last_used < *used);
                    if colder {
                        coldest = Some((st.last_used, Arc::clone(entry)));
                    }
                }
            }
            if total <= budget {
                return;
            }
            let Some((_, victim)) = coldest else { return };
            let Some(old) = lock(&victim.state).current.take() else { continue };
            let final_stats = drain(old);
            let mut st = lock(&victim.state);
            st.evictions += 1;
            st.retired = Some(fold_runtime(st.retired.take(), &final_stats));
        }
    }
}

/// One artifact read attempt. With the `faults` feature (test builds
/// only) the `"router.read"` injection point runs first, so chaos tests
/// can stage transient IO failures against the retry loop.
#[cfg(feature = "faults")]
fn read_once(path: &Path) -> std::io::Result<Vec<u8>> {
    match scales_faults::fire("router.read") {
        Some(scales_faults::FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(scales_faults::FaultAction::Panic) => panic!("injected fault: router.read"),
        Some(scales_faults::FaultAction::Error(message)) => {
            return Err(std::io::Error::other(format!("injected fault: {message}")));
        }
        None => {}
    }
    std::fs::read(path)
}

#[cfg(not(feature = "faults"))]
fn read_once(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// Wait for every in-flight submitter to release its clone of `version`,
/// then drain the runtime gracefully and return its final stats. This is
/// the zero-drop guarantee: a submitter holding the `Arc` keeps the
/// runtime alive until its request resolves, so a swap or eviction never
/// refuses work that was already routed here.
fn drain(mut version: Arc<ModelVersion>) -> RuntimeStats {
    loop {
        match Arc::try_unwrap(version) {
            Ok(sole) => return sole.runtime.shutdown(),
            Err(shared) => {
                version = shared;
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// Names embed in URLs, Prometheus labels and JSON unescaped, so the
/// alphabet is locked down at registration.
fn validate_name(name: &str) -> Result<(), RouterError> {
    let fail = |reason| RouterError::InvalidName { name: name.into(), reason };
    if name.is_empty() {
        return Err(fail("must not be empty"));
    }
    if name.len() > 64 {
        return Err(fail("must be at most 64 characters"));
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-') {
        return Err(fail("allowed characters are A-Z a-z 0-9 . _ -"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_handle_is_send_sync_and_clonable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ModelRouter>();
    }

    #[test]
    fn names_are_validated_at_registration() {
        for bad in ["", "has space", "sla/sh", "ünïcode", &"x".repeat(65) as &str] {
            assert!(
                matches!(validate_name(bad), Err(RouterError::InvalidName { .. })),
                "{bad:?} must be rejected"
            );
        }
        for good in ["edsr", "edsr-x4.v2", "A_B-c.9"] {
            assert!(validate_name(good).is_ok(), "{good:?} must be accepted");
        }
    }

    #[test]
    fn invalid_runtime_sizing_is_rejected_at_construction() {
        let bad = RouterConfig {
            runtime: RuntimeConfig { workers: 0, ..RuntimeConfig::default() },
            ..RouterConfig::default()
        };
        assert!(ModelRouter::new(bad).is_err());
    }

    #[test]
    fn merged_runtime_of_an_empty_fleet_is_zeroed() {
        let stats = RouterStats { models: Vec::new() }.merged_runtime();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.latency.count(), 0);
    }

    #[test]
    fn folding_runtime_stats_accumulates_counters() {
        let zero = RouterStats { models: Vec::new() }.merged_runtime();
        let mut a = zero.clone();
        a.workers = 2;
        a.max_batch = 8;
        a.submitted = 10;
        a.completed = 9;
        a.images = 18;
        a.dispatches = 3;
        a.queue_high_water = 5;
        a.workspace_bytes = 100;
        let mut b = zero;
        b.workers = 1;
        b.max_batch = 8;
        b.submitted = 5;
        b.completed = 5;
        b.images = 6;
        b.dispatches = 3;
        b.queue_high_water = 2;
        b.workspace_bytes = 700;
        let folded = fold_runtime(Some(a), &b);
        assert_eq!(folded.workers, 2, "workers take the max");
        assert_eq!(folded.submitted, 15);
        assert_eq!(folded.completed, 14);
        assert_eq!(folded.images, 24);
        assert_eq!(folded.queue_high_water, 5);
        assert_eq!(folded.workspace_bytes, 700, "latest fold wins the gauge");
        let expected_fill = 24.0 / (6.0 * 8.0);
        assert!((folded.batch_fill - expected_fill).abs() < 1e-12);
    }

    #[test]
    fn folding_merges_tenant_lanes_by_name() {
        let tenant = |name: &str, submitted: u64, shed: u64| scales_runtime::TenantStats {
            tenant: name.into(),
            weight: 2,
            queued: 1,
            submitted,
            completed: submitted,
            failed: 0,
            rejected: 0,
            shed,
            quota_rejected: 0,
            expired: 0,
            deadline_misses: 0,
        };
        let zero = RouterStats { models: Vec::new() }.merged_runtime();
        let mut a = zero.clone();
        a.shed = 3;
        a.expired = 1;
        a.tenants = vec![tenant("acme", 5, 3)];
        let mut b = zero;
        b.shed = 1;
        b.deadline_misses = 2;
        b.tenants = vec![tenant("zeta", 2, 0), tenant("acme", 4, 1)];
        let folded = fold_runtime(Some(a), &b);
        assert_eq!(folded.shed, 4);
        assert_eq!(folded.expired, 1);
        assert_eq!(folded.deadline_misses, 2);
        assert_eq!(folded.tenants.len(), 2, "lanes merge by tenant name");
        assert_eq!(folded.tenants[0].tenant, "acme");
        assert_eq!(folded.tenants[0].submitted, 9);
        assert_eq!(folded.tenants[0].shed, 4);
        assert_eq!(folded.tenants[0].queued, 2);
        assert_eq!(folded.tenants[1].tenant, "zeta");
        assert_eq!(folded.tenants[1].submitted, 2);
    }
}
