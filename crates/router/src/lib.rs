//! # scales-router
//!
//! Multi-model serving for the SCALES reproduction: a [`ModelRouter`]
//! fronts any number of named engines — different architectures, binary
//! methods, and scales — behind one routing surface, and keeps the fleet
//! alive through version changes and memory pressure. Std-only, like the
//! rest of the serving stack: the registry is a `Mutex<HashMap>`, each
//! model runs its own `scales-runtime` worker pool, and versions are
//! swapped by replacing an `Arc`.
//!
//! The three jobs, in the order a deployment meets them:
//!
//! 1. **Routing** — register models under validated names
//!    ([`ModelRouter::register_path`] for `scales-io` artifact files,
//!    [`ModelRouter::register_model`] for in-memory deployed networks),
//!    then [`ModelRouter::submit_wait_timeout`] routes each request by
//!    name. A routed response is bit-identical (`f32::to_bits`) to what
//!    a dedicated single-model runtime would produce — the router adds
//!    dispatch, never numerics. An unknown name is a typed
//!    [`RouterError::UnknownModel`] (the HTTP front end's 404).
//! 2. **Hot-swap** — [`ModelRouter::reload`] re-reads a path-backed
//!    model's artifact and swaps it in with zero downtime: the new
//!    version is fully built (read, decode, engine, worker pool) before
//!    the serving `Arc` is replaced, new intake moves over instantly,
//!    and the old runtime drains its in-flight requests to completion
//!    before shutting down. A failed load leaves the serving version
//!    untouched, and a transient artifact-*read* failure is retried with
//!    bounded doubling backoff
//!    ([`RouterConfig::reload_retries`] / [`RouterConfig::reload_backoff`])
//!    before the load gives up. No request routed before, during, or
//!    after the swap is dropped.
//! 3. **Memory accounting** — every model is charged its packed-weight
//!    bytes (serialized artifact size) plus its workers' live
//!    planned-executor workspace bytes. Over a configured
//!    [`RouterConfig::memory_budget`] the least-recently-used path-backed
//!    models are drained, evicted, and lazily reloaded on their next
//!    request; in-memory registrations are pinned.
//!
//! Observability rides along: [`ModelRouter::stats`] reports per-model
//! [`ModelStats`] (identity, version, FNV-1a artifact fingerprint, state,
//! memory charges, folded serving counters across every version), and
//! [`ModelRouter::render_prometheus`] renders the same as
//! `model`-labeled Prometheus series for `GET /metrics`.
//!
//! ```no_run
//! use scales_router::{ModelRouter, RouterConfig};
//! use scales_serve::SrRequest;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let router = ModelRouter::new(RouterConfig::default())?;
//! router.register_path("edsr-x2", "models/edsr_x2.sca")?;
//! let lr = scales_data::Image::zeros(8, 8);
//! let sr = router
//!     .submit_wait_timeout("edsr-x2", SrRequest::single(lr), Duration::from_secs(5))??;
//! assert_eq!(sr.images()[0].height(), 16);
//! // Retrain, rewrite models/edsr_x2.sca, then swap it in live:
//! router.reload("edsr-x2")?;
//! let record = router.shutdown();
//! println!("{} models served", record.models.len());
//! # Ok(())
//! # }
//! ```

mod error;
mod router;

pub use error::RouterError;
pub use router::{ModelRouter, ModelState, ModelStats, RouterConfig, RouterStats};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poison-tolerant lock: a panicking submitter must not wedge the
/// registry or an entry's state for every other caller (the shared data
/// are counters and `Arc` handles, valid at every assignment).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
