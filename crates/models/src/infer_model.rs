//! [`InferModel`] — the object-safe model handle the serving layer
//! (`scales-serve`) is built on.
//!
//! Both network kinds implement it:
//!
//! * every training-path [`SrNetwork`] (blanket impl, including
//!   `dyn SrNetwork` and `Box<dyn SrNetwork>` targets), forwarding through
//!   a fresh autograd tape per call;
//! * the packed [`DeployedNetwork`], forwarding through the tape-free
//!   deployed op graph.
//!
//! This lets one engine accept "any model" without a generic parameter per
//! network family, and lets the engine decide at build time whether to
//! lower ([`InferModel::try_lower`]) or serve the model as-is.

use crate::common::SrNetwork;
use crate::deploy::DeployedNetwork;
use scales_autograd::Var;
use scales_tensor::{Result, Tensor, TensorError};

/// An object-safe handle over anything that can serve batched SR
/// inference: a training-path network or a lowered deployment graph.
///
/// `Send + Sync` is a supertrait so a `Box<dyn InferModel>` — and
/// therefore a serving `Engine` holding one — can be shared across
/// threads: the `scales-runtime` worker pool hands one engine to every
/// worker by reference. Both model kinds satisfy it structurally
/// (deployed graphs are plain data; training networks hold their
/// parameters behind `Arc<RwLock>` tape nodes).
pub trait InferModel: Send + Sync {
    /// Upscaling factor.
    fn scale(&self) -> usize;

    /// Forward an input batch `[N, 3, H, W]` to `[N, 3, H·s, W·s]`.
    ///
    /// # Errors
    ///
    /// Propagates forward/geometry errors.
    fn forward_infer(&self, batch: &Tensor) -> Result<Tensor>;

    /// Lower to the packed deployment graph, if this model supports it.
    ///
    /// # Errors
    ///
    /// Returns an error for architectures without a lowering and for
    /// models that already *are* deployed graphs.
    fn try_lower(&self) -> Result<DeployedNetwork>;

    /// Whether this model already runs the tape-free deployed path.
    fn is_deployed(&self) -> bool {
        false
    }

    /// The deployed op graph behind this handle, when it is one — the hook
    /// the serving layer uses to route pre-lowered models through the
    /// planned zero-allocation executor
    /// ([`DeployedNetwork::forward_planned`]).
    fn as_deployed(&self) -> Option<&DeployedNetwork> {
        None
    }
}

impl<T: SrNetwork + ?Sized> InferModel for T {
    fn scale(&self) -> usize {
        SrNetwork::scale(self)
    }

    fn forward_infer(&self, batch: &Tensor) -> Result<Tensor> {
        Ok(self.forward(&Var::new(batch.clone()))?.value())
    }

    fn try_lower(&self) -> Result<DeployedNetwork> {
        self.lower()
    }
}

impl InferModel for DeployedNetwork {
    fn scale(&self) -> usize {
        DeployedNetwork::scale(self)
    }

    fn forward_infer(&self, batch: &Tensor) -> Result<Tensor> {
        self.forward(batch)
    }

    fn try_lower(&self) -> Result<DeployedNetwork> {
        Err(TensorError::InvalidArgument("model is already a deployed network".into()))
    }

    fn is_deployed(&self) -> bool {
        true
    }

    fn as_deployed(&self) -> Option<&DeployedNetwork> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{srresnet, SrConfig};
    use scales_core::Method;
    use scales_nn::Module as _;

    fn probe(h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            (0..3 * h * w).map(|i| ((i as f32) * 0.13).cos() * 0.4 + 0.5).collect(),
            &[1, 3, h, w],
        )
        .unwrap()
    }

    /// Compile-time audit of the serving layer's threading contract:
    /// every model handle — training networks, boxed registry handles,
    /// deployed graphs, and the trait objects over them — must be
    /// `Send + Sync`, so `&Engine` (which boxes a `dyn InferModel`) is
    /// `Send` and one engine can feed a whole worker pool.
    #[test]
    fn engine_surface_is_send_and_sync() {
        fn assert_send<T: Send + ?Sized>() {}
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_send::<DeployedNetwork>();
        assert_sync::<DeployedNetwork>();
        assert_send::<Box<dyn crate::SrNetwork>>();
        assert_sync::<Box<dyn crate::SrNetwork>>();
        assert_send::<Box<dyn InferModel>>();
        assert_sync::<Box<dyn InferModel>>();
        assert_send::<&dyn InferModel>();
    }

    #[test]
    fn training_network_serves_through_the_trait_object() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 3 })
                .unwrap();
        let model: &dyn InferModel = &net;
        assert_eq!(model.scale(), 2);
        assert!(!model.is_deployed());
        let x = probe(6, 6);
        let y = model.forward_infer(&x).unwrap();
        assert_eq!(y.shape(), &[1, 3, 12, 12]);
        // Identical to the direct training forward.
        let reference = net.forward(&Var::new(x.clone())).unwrap().value();
        assert_eq!(y.data(), reference.data());
    }

    #[test]
    fn deployed_network_serves_through_the_trait_object() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 4 })
                .unwrap();
        let deployed = net.lower().unwrap();
        let model: &dyn InferModel = &deployed;
        assert!(model.is_deployed());
        assert!(model.try_lower().is_err(), "a deployed graph cannot lower again");
        let x = probe(6, 6);
        assert_eq!(model.forward_infer(&x).unwrap().data(), deployed.forward(&x).unwrap().data());
    }

    #[test]
    fn lowering_through_the_trait_matches_direct_lowering() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 5 })
                .unwrap();
        let model: &dyn InferModel = &net;
        let lowered = model.try_lower().unwrap();
        let x = probe(6, 6);
        assert_eq!(
            lowered.forward(&x).unwrap().data(),
            net.lower().unwrap().forward(&x).unwrap().data()
        );
    }
}
