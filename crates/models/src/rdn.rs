//! RDN-lite — residual dense network (Zhang et al. 2018) at reduced scale,
//! one of the four CNN architectures the paper evaluates SCALES on.
//!
//! Each dense block runs `layers` 3×3 convs whose input is the
//! concatenation of all previous features (growth `g`), fused back to the
//! base width by a 1×1 conv plus a local residual; block outputs are
//! globally fused by another 1×1 conv and a global residual.

use crate::common::{bicubic_skip, head_cost, tail_cost, Head, SrConfig, SrNetwork, Tail};
use crate::cost::body_conv_cost;
use crate::probe::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::{BodyConv, Method};
use scales_nn::layers::Conv2d;
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::Result;

const LAYERS_PER_BLOCK: usize = 2;

struct DenseBlock {
    convs: Vec<BodyConv>,
    fuse: Conv2d,
    channels: usize,
    growth: usize,
}

impl DenseBlock {
    fn new(channels: usize, growth: usize, method: Method, rng: &mut StdRng) -> Result<Self> {
        let mut convs = Vec::with_capacity(LAYERS_PER_BLOCK);
        for i in 0..LAYERS_PER_BLOCK {
            convs.push(BodyConv::new(method, channels + i * growth, growth, 3, rng)?);
        }
        let spec = Conv2dSpec { stride: 1, padding: 0 };
        let fuse = Conv2d::with_spec(channels + LAYERS_PER_BLOCK * growth, channels, 1, spec, false, rng);
        Ok(Self { convs, fuse, channels, growth })
    }

    fn forward(&self, x: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let mut features = vec![x.clone()];
        for conv in &self.convs {
            let refs: Vec<&Var> = features.iter().collect();
            let cat = Var::concat(&refs, 1)?;
            if let Some(r) = recorder.as_deref_mut() {
                r.record(&cat)?;
            }
            let y = conv.forward(&cat)?.relu();
            features.push(y);
        }
        let refs: Vec<&Var> = features.iter().collect();
        let all = Var::concat(&refs, 1)?;
        self.fuse.forward(&all)?.add(x)
    }

    fn params(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.fuse.params());
        p
    }
}

/// RDN-lite network.
pub struct Rdn {
    head: Head,
    blocks: Vec<DenseBlock>,
    global_fuse: Conv2d,
    tail: Tail,
    config: SrConfig,
}

/// Build an RDN-lite for a configuration (growth = channels/2).
///
/// # Errors
///
/// Returns an error for invalid configurations or methods without a CNN
/// body.
pub fn rdn(config: SrConfig) -> Result<Rdn> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let c = config.channels;
    let head = Head::new(c, &mut rng);
    let growth = (c / 2).max(1);
    let mut blocks = Vec::with_capacity(config.blocks);
    for _ in 0..config.blocks {
        blocks.push(DenseBlock::new(c, growth, config.method, &mut rng)?);
    }
    let spec = Conv2dSpec { stride: 1, padding: 0 };
    let global_fuse = Conv2d::with_spec(c * config.blocks, c, 1, spec, false, &mut rng);
    let tail = Tail::new(c, config.scale, &mut rng);
    Ok(Rdn { head, blocks, global_fuse, tail, config })
}

impl Rdn {
    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let shallow = self.head.forward(input)?;
        let mut x = shallow.clone();
        let mut block_outs = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            x = b.forward(&x, recorder.as_deref_mut())?;
            block_outs.push(x.clone());
        }
        let refs: Vec<&Var> = block_outs.iter().collect();
        let fused = self.global_fuse.forward(&Var::concat(&refs, 1)?)?;
        let deep = fused.add(&shallow)?;
        let out = self.tail.forward(&deep)?;
        out.add(&bicubic_skip(input, self.config.scale)?)
    }
}

impl Module for Rdn {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.head.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.global_fuse.params());
        p.extend(self.tail.params());
        p
    }
}

impl SrNetwork for Rdn {
    fn scale(&self) -> usize {
        self.config.scale
    }

    fn arch(&self) -> crate::Arch {
        crate::Arch::Rdn
    }

    fn lower(&self) -> Result<crate::deploy::DeployedNetwork> {
        use crate::deploy::DeployedNetworkBuilder;
        let mut b = DeployedNetworkBuilder::new("RDN", self.config.scale);
        let input = b.input();
        let shallow = b.float_conv(self.head.conv(), input)?;
        let mut x = shallow;
        let mut block_outs = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let mut features = vec![x];
            for conv in &block.convs {
                let cat = b.concat(features.clone());
                let y = b.body(conv, cat)?;
                features.push(b.relu(y));
            }
            let all = b.concat(features);
            let fused = b.float_conv(&block.fuse, all)?;
            x = b.add(fused, x);
            block_outs.push(x);
        }
        let cat = b.concat(block_outs);
        let fused = b.float_conv(&self.global_fuse, cat)?;
        let deep = b.add(fused, shallow);
        let tail = b.float_conv(self.tail.conv(), deep)?;
        let up = b.pixel_shuffle(self.tail.factor(), tail);
        let skip = b.bicubic_up(self.config.scale, input);
        let out = b.add(up, skip);
        Ok(b.finish(out))
    }

    fn config(&self) -> SrConfig {
        self.config
    }

    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport {
        let c = self.config.channels;
        let mut r = head_cost(c, lr_h, lr_w);
        for b in &self.blocks {
            for (i, _) in b.convs.iter().enumerate() {
                r.add(body_conv_cost(self.config.method, b.channels + i * b.growth, b.growth, 3, lr_h, lr_w));
            }
            // 1×1 FP fusion.
            r.add(scales_binary::count::conv2d_cost(
                b.channels + LAYERS_PER_BLOCK * b.growth,
                b.channels,
                1,
                lr_h,
                lr_w,
                false,
                false,
            ));
        }
        r.add(scales_binary::count::conv2d_cost(
            c * self.blocks.len(),
            c,
            1,
            lr_h,
            lr_w,
            false,
            false,
        ));
        r.add(tail_cost(c, self.config.scale, lr_h, lr_w));
        r
    }

    fn clamp_alphas(&self) {
        for b in &self.blocks {
            for conv in &b.convs {
                conv.clamp_alpha(1e-3);
            }
        }
    }

    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    #[test]
    fn rdn_forward_shapes_all_methods() {
        let x = Var::new(Tensor::from_vec(
            (0..3 * 36).map(|i| (i as f32 * 0.2).sin() * 0.4 + 0.5).collect(),
            &[1, 3, 6, 6],
        ).unwrap());
        for m in [Method::FullPrecision, Method::E2fif, Method::scales()] {
            let net = rdn(SrConfig { channels: 8, blocks: 2, scale: 2, method: m, seed: 3 }).unwrap();
            assert_eq!(net.forward(&x).unwrap().shape(), vec![1, 3, 12, 12], "{m}");
        }
    }

    #[test]
    fn dense_concat_grows_conv_inputs() {
        let net = rdn(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 3 }).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 4, 4]));
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec).unwrap();
        assert_eq!(rec.records()[0].shape()[0], 8);
        assert_eq!(rec.records()[1].shape()[0], 12); // 8 + growth 4
    }

    #[test]
    fn grads_flow() {
        let net = rdn(SrConfig { channels: 4, blocks: 1, scale: 2, method: Method::scales(), seed: 3 }).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 4, 4]));
        net.forward(&x).unwrap().sum_all().unwrap().backward().unwrap();
        assert!(net.params().iter().all(|p| p.grad().is_some()));
    }
}
