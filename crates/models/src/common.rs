//! Shared pieces of every SR architecture: configuration, head/tail
//! modules, the bicubic global skip, and the recording probe used by the
//! motivation study.

use crate::probe::Recorder;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::Method;
use scales_data::{resize_bicubic_tensor, Image};
use scales_nn::layers::Conv2d;
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::{Result, Tensor, TensorError};

/// Configuration shared by every SR network in the zoo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrConfig {
    /// Body feature channels (the paper uses 64; the lite default is 16).
    pub channels: usize,
    /// Number of body blocks.
    pub blocks: usize,
    /// Upscaling factor (2 or 4 in the paper).
    pub scale: usize,
    /// Binarization method for the body.
    pub method: Method,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl SrConfig {
    /// The lite profile used throughout the reproduction's experiments.
    #[must_use]
    pub fn lite(scale: usize, method: Method) -> Self {
        Self { channels: 16, blocks: 2, scale, method, seed: 1234 }
    }

    /// Validate structural constraints.
    ///
    /// # Errors
    ///
    /// Returns an error for zero extents or an unsupported scale.
    pub fn validate(&self) -> Result<()> {
        if self.channels == 0 || self.blocks == 0 {
            return Err(TensorError::InvalidArgument("channels and blocks must be positive".into()));
        }
        if !matches!(self.scale, 1..=4) {
            return Err(TensorError::InvalidArgument(format!("unsupported scale {}", self.scale)));
        }
        Ok(())
    }
}

/// The common interface of every SR network in the zoo.
///
/// `Send + Sync` is part of the contract: networks are plain parameter
/// data (tape nodes behind `Arc<RwLock>`), so a `&dyn SrNetwork` can be
/// shared across serving threads — the property the `scales-runtime`
/// worker pool is built on. The compile-time checks live in
/// `infer_model.rs` (`engine_surface_is_send_and_sync`).
pub trait SrNetwork: Module + Send + Sync {
    /// Upscaling factor.
    fn scale(&self) -> usize;

    /// Which registry entry built this network — the identity persisted by
    /// `scales-io` checkpoints and resolved back through
    /// [`Arch::build`](crate::Arch::build) at load.
    fn arch(&self) -> crate::Arch;

    /// Model configuration.
    fn config(&self) -> SrConfig;

    /// Effective parameter/operation cost at the given LR input size,
    /// using the paper's counting conventions.
    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport;

    /// Clamp learnable layer scales after an optimizer step (no-op for
    /// methods without them).
    fn clamp_alphas(&self) {}

    /// Forward with an activation recorder capturing the input of every
    /// body conv/linear (what the binarizer sees).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the forward pass.
    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var>;

    /// Lower the whole trained network to the packed deployment engine
    /// (see [`crate::deploy`]). The deployed forward matches this
    /// network's training-path forward within `1e-4`.
    ///
    /// # Errors
    ///
    /// Returns an error for architectures without a lowering (the
    /// transformer family, for now).
    fn lower(&self) -> Result<crate::deploy::DeployedNetwork> {
        Err(TensorError::InvalidArgument(
            "deployment lowering is not implemented for this architecture".into(),
        ))
    }

    /// Super-resolve a single image (batch-of-one convenience).
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    fn super_resolve(&self, lr: &Image) -> Result<Image> {
        let t = lr.tensor();
        let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
        let x = Var::new(t.reshape(&[1, c, h, w])?);
        let y = self.forward(&x)?.value();
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        Image::from_tensor(y.reshape(&[3, oh, ow])?)
    }
}

// Boxed networks (e.g. the `Box<dyn SrNetwork>` handles the registry and
// the checkpoint loader hand out) are networks too: forward every method to
// the boxee so they flow into `InferModel` and the serving layer unchanged.
impl<M: SrNetwork + ?Sized> SrNetwork for Box<M> {
    fn scale(&self) -> usize {
        (**self).scale()
    }
    fn arch(&self) -> crate::Arch {
        (**self).arch()
    }
    fn config(&self) -> SrConfig {
        (**self).config()
    }
    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport {
        (**self).cost(lr_h, lr_w)
    }
    fn clamp_alphas(&self) {
        (**self).clamp_alphas();
    }
    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        (**self).forward_recorded(input, recorder)
    }
    fn lower(&self) -> Result<crate::deploy::DeployedNetwork> {
        (**self).lower()
    }
    fn super_resolve(&self, lr: &Image) -> Result<Image> {
        (**self).super_resolve(lr)
    }
}

/// Bicubic-upsample the (constant) LR input batch — the full-precision
/// global skip every model adds to its output, following E2FIF's
/// end-to-end FP information flow.
///
/// # Errors
///
/// Propagates resize errors.
pub fn bicubic_skip(input: &Var, scale: usize) -> Result<Var> {
    let t = input.value();
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let mut data = Vec::with_capacity(n * c * h * w * scale * scale);
    for b in 0..n {
        let img = t.slice_axis(0, b, 1)?.reshape(&[c, h, w])?;
        let up = resize_bicubic_tensor(&img, h * scale, w * scale)?;
        data.extend_from_slice(up.data());
    }
    Ok(Var::new(Tensor::from_vec(data, &[n, c, h * scale, w * scale])?))
}

/// Standard SR head: one FP 3×3 conv from RGB to body channels (never
/// binarized, per the paper's protocol).
pub struct Head {
    conv: Conv2d,
}

impl Head {
    /// Build the head for `channels` body features.
    #[must_use]
    pub fn new(channels: usize, rng: &mut StdRng) -> Self {
        Self { conv: Conv2d::new(3, channels, 3, rng) }
    }

    /// The underlying convolution (for deployment lowering).
    pub(crate) fn conv(&self) -> &Conv2d {
        &self.conv
    }
}

impl Module for Head {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.conv.forward(input)
    }
    fn params(&self) -> Vec<Var> {
        self.conv.params()
    }
}

/// Standard SR tail: FP 3×3 conv to `3·scale²` channels followed by pixel
/// shuffle (never binarized). The ×1 scale degenerates to a plain conv.
pub struct Tail {
    conv: Conv2d,
    scale: usize,
}

impl Tail {
    /// Build the tail for a given body width and upscale factor.
    ///
    /// The conv is zero-initialised so an untrained model starts exactly at
    /// the bicubic-skip baseline and training only ever adds a learned
    /// residual — the standard zero-init-last-layer trick, essential at the
    /// reproduction's small training budgets.
    #[must_use]
    pub fn new(channels: usize, scale: usize, rng: &mut StdRng) -> Self {
        let conv = Conv2d::new(channels, 3 * scale * scale, 3, rng);
        for p in conv.params() {
            p.update_value(|t| t.map_inplace(|_| 0.0));
        }
        Self { conv, scale }
    }

    /// The underlying convolution (for deployment lowering).
    pub(crate) fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// The upscale factor.
    pub(crate) fn factor(&self) -> usize {
        self.scale
    }
}

impl Module for Tail {
    fn forward(&self, input: &Var) -> Result<Var> {
        let y = self.conv.forward(input)?;
        if self.scale == 1 {
            Ok(y)
        } else {
            y.pixel_shuffle(self.scale)
        }
    }
    fn params(&self) -> Vec<Var> {
        self.conv.params()
    }
}

/// SE reduction ratio used by the FP channel-attention gates.
pub const CA_REDUCTION: usize = 4;

/// Full-precision SE-style channel attention gate (RCAN / HAT style):
/// GlobalAvgPool → 1×1 conv down → ReLU → 1×1 conv up → sigmoid → scale.
pub struct ChannelAttention {
    down: Conv2d,
    up: Conv2d,
}

impl ChannelAttention {
    /// Build for a channel count with reduction [`CA_REDUCTION`].
    #[must_use]
    pub fn new(channels: usize, rng: &mut StdRng) -> Self {
        let spec = Conv2dSpec { stride: 1, padding: 0 };
        let mid = (channels / CA_REDUCTION).max(1);
        Self {
            down: Conv2d::with_spec(channels, mid, 1, spec, true, rng),
            up: Conv2d::with_spec(mid, channels, 1, spec, true, rng),
        }
    }

    /// The squeeze (1×1 down) convolution, for deployment lowering.
    pub(crate) fn down(&self) -> &Conv2d {
        &self.down
    }

    /// The excite (1×1 up) convolution, for deployment lowering.
    pub(crate) fn up(&self) -> &Conv2d {
        &self.up
    }

    /// Gate `x` by its own channel statistics.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors.
    pub fn forward(&self, x: &Var) -> Result<Var> {
        let pooled = x.global_avg_pool()?;
        let gate = self.up.forward(&self.down.forward(&pooled)?.relu())?.sigmoid();
        x.mul(&gate)
    }

    /// Trainable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Var> {
        let mut p = self.down.params();
        p.extend(self.up.params());
        p
    }
}


/// Paper-convention cost of the head at a given LR size.
#[must_use]
pub fn head_cost(channels: usize, lr_h: usize, lr_w: usize) -> CostReport {
    scales_binary::count::conv2d_cost(3, channels, 3, lr_h, lr_w, false, true)
}

/// Paper-convention cost of the tail at a given LR size.
#[must_use]
pub fn tail_cost(channels: usize, scale: usize, lr_h: usize, lr_w: usize) -> CostReport {
    scales_binary::count::conv2d_cost(channels, 3 * scale * scale, 3, lr_h, lr_w, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_nn::init::rng;

    #[test]
    fn config_validation() {
        assert!(SrConfig::lite(2, Method::scales()).validate().is_ok());
        assert!(SrConfig { channels: 0, ..SrConfig::lite(2, Method::scales()) }.validate().is_err());
        assert!(SrConfig { scale: 7, ..SrConfig::lite(2, Method::scales()) }.validate().is_err());
    }

    #[test]
    fn head_tail_shapes() {
        let mut r = rng(71);
        let head = Head::new(8, &mut r);
        let tail = Tail::new(8, 2, &mut r);
        let x = Var::new(Tensor::ones(&[1, 3, 6, 6]));
        let f = head.forward(&x).unwrap();
        assert_eq!(f.shape(), vec![1, 8, 6, 6]);
        let y = tail.forward(&f).unwrap();
        assert_eq!(y.shape(), vec![1, 3, 12, 12]);
    }

    #[test]
    fn bicubic_skip_matches_image_resize() {
        let img = scales_data::synth::scene(8, 8, scales_data::synth::SceneConfig::default(), &mut rng(5));
        let x = Var::new(img.tensor().reshape(&[1, 3, 8, 8]).unwrap());
        let up = bicubic_skip(&x, 2).unwrap().value();
        let direct = scales_data::upscale(&img, 2).unwrap();
        for (a, b) in up.data().iter().zip(direct.tensor().data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
