//! Activation recording for the motivation study (Table II, Figs. 1/3/4/5).

use scales_autograd::Var;
use scales_tensor::{Result, Tensor};

/// Collects the input activation of every body layer during a recorded
/// forward pass. Batch dimension is stripped (probes run batch-of-one).
#[derive(Debug, Default)]
pub struct Recorder {
    records: Vec<Tensor>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one activation. `[1, C, H, W]` is stored as `[C, H, W]`;
    /// `[1, L, C]` as `[L, C]`; other shapes are stored as-is.
    ///
    /// # Errors
    ///
    /// Propagates reshape errors (cannot occur for the documented shapes).
    pub fn record(&mut self, v: &Var) -> Result<()> {
        let t = v.value();
        let squeezed = match t.shape() {
            [1, rest @ ..] => t.reshape(rest)?,
            _ => t,
        };
        self.records.push(squeezed);
        Ok(())
    }

    /// Record a token activation, flattening all leading axes so the
    /// stored tensor is canonical `[tokens, C]` regardless of window
    /// grouping.
    ///
    /// # Errors
    ///
    /// Propagates reshape errors (cannot occur for rank ≥ 1 input).
    pub fn record_tokens(&mut self, v: &Var) -> Result<()> {
        let t = v.value();
        let shape = t.shape();
        let c = *shape.last().expect("rank >= 1");
        let l = t.len() / c;
        self.records.push(t.reshape(&[l, c])?);
        Ok(())
    }

    /// Recorded activations in forward order.
    #[must_use]
    pub fn records(&self) -> &[Tensor] {
        &self.records
    }

    /// Consume into the recorded activations.
    #[must_use]
    pub fn into_records(self) -> Vec<Tensor> {
        self.records
    }

    /// Number of recorded activations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_unit_batch() {
        let mut r = Recorder::new();
        r.record(&Var::new(Tensor::ones(&[1, 3, 2, 2]))).unwrap();
        r.record(&Var::new(Tensor::ones(&[1, 5, 4]))).unwrap();
        assert_eq!(r.records()[0].shape(), &[3, 2, 2]);
        assert_eq!(r.records()[1].shape(), &[5, 4]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn keeps_other_shapes() {
        let mut r = Recorder::new();
        r.record(&Var::new(Tensor::ones(&[2, 3]))).unwrap();
        assert_eq!(r.records()[0].shape(), &[2, 3]);
    }
}
