//! Tiny classification networks used only by the motivation study
//! (Fig. 4, Table II): a BatchNorm ResNet and a LayerNorm Swin-style ViT.
//!
//! The paper's observation is that classification networks keep their
//! normalisation layers, which squash pixel/channel/layer/image variation,
//! while modern SR networks (EDSR onwards) removed BN and therefore exhibit
//! variances orders of magnitude larger. These probes exist to reproduce
//! that contrast with the same recording protocol as the SR models.

use crate::probe::Recorder;
use crate::transformer::TransformerBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_autograd::Var;
use scales_core::Method;
use scales_nn::layers::{BatchNorm2d, Conv2d, LayerNorm, Linear};
use scales_nn::Module;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::Result;

/// A tiny BatchNorm ResNet classifier probe (ResNet18 stand-in).
pub struct ResNetTiny {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    blocks: Vec<(Conv2d, BatchNorm2d, Conv2d, BatchNorm2d)>,
    head: Linear,
    classes: usize,
    channels: usize,
}

impl ResNetTiny {
    /// Build with `blocks` BN residual blocks at a fixed width.
    #[must_use]
    pub fn new(channels: usize, blocks: usize, classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let stem = Conv2d::new(3, channels, 3, &mut rng);
        let stem_bn = BatchNorm2d::new(channels);
        let blocks = (0..blocks)
            .map(|_| {
                (
                    Conv2d::new(channels, channels, 3, &mut rng),
                    BatchNorm2d::new(channels),
                    Conv2d::new(channels, channels, 3, &mut rng),
                    BatchNorm2d::new(channels),
                )
            })
            .collect();
        let head = Linear::new(channels, classes, &mut rng);
        Self { stem, stem_bn, blocks, head, classes, channels }
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let mut x = self.stem_bn.forward(&self.stem.forward(input)?)?.relu();
        for (c1, b1, c2, b2) in &self.blocks {
            if let Some(r) = recorder.as_deref_mut() {
                r.record(&x)?;
            }
            let mid = b1.forward(&c1.forward(&x)?)?.relu();
            if let Some(r) = recorder.as_deref_mut() {
                r.record(&mid)?;
            }
            let y = b2.forward(&c2.forward(&mid)?)?;
            x = y.add(&x)?.relu();
        }
        let pooled = x.global_avg_pool()?;
        let n = pooled.shape()[0];
        self.head.forward(&pooled.reshape(&[n, self.channels])?)
    }

    /// Forward recording the input of every body convolution.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

impl Module for ResNetTiny {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.params();
        p.extend(self.stem_bn.params());
        for (c1, b1, c2, b2) in &self.blocks {
            p.extend(c1.params());
            p.extend(b1.params());
            p.extend(c2.params());
            p.extend(b2.params());
        }
        p.extend(self.head.params());
        p
    }
}

/// A tiny Swin-style ViT classifier probe (SwinViT stand-in): patch-embed
/// conv, LayerNorm transformer blocks, pooled linear head.
pub struct SwinVitTiny {
    embed: Conv2d,
    blocks: Vec<TransformerBlock>,
    norm: LayerNorm,
    head: Linear,
    channels: usize,
}

impl SwinVitTiny {
    /// Build with `blocks` full-precision transformer blocks.
    ///
    /// # Panics
    ///
    /// Panics only if the internal full-precision method fails to build,
    /// which cannot happen.
    #[must_use]
    pub fn new(channels: usize, blocks: usize, classes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = Conv2dSpec { stride: 2, padding: 1 };
        let embed = Conv2d::with_spec(3, channels, 4, spec, true, &mut rng);
        let blocks = (0..blocks)
            .map(|_| {
                TransformerBlock::new(channels, 4, Method::FullPrecision, false, &mut rng)
                    .expect("full precision always builds")
            })
            .collect();
        let norm = LayerNorm::new(channels);
        let head = Linear::new(channels, classes, &mut rng);
        Self { embed, blocks, norm, head, channels }
    }

    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let mut x = self.embed.forward(input)?;
        for b in &self.blocks {
            x = b.forward_features(&x, recorder.as_deref_mut())?;
        }
        let pooled = x.global_avg_pool()?;
        let n = pooled.shape()[0];
        let flat = pooled.reshape(&[n, self.channels])?;
        self.head.forward(&self.norm.forward(&flat)?)
    }

    /// Forward recording the transformer body activations.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

impl Module for SwinVitTiny {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.embed.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.norm.params());
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    #[test]
    fn resnet_probe_shapes() {
        let net = ResNetTiny::new(8, 2, 10, 3);
        let x = Var::new(Tensor::from_vec(
            (0..2 * 3 * 64).map(|i| (i as f32 * 0.11).sin()).collect(),
            &[2, 3, 8, 8],
        ).unwrap());
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 10]);
        let mut rec = Recorder::new();
        // Recording path needs batch 1.
        let x1 = Var::new(Tensor::ones(&[1, 3, 8, 8]));
        net.forward_recorded(&x1, &mut rec).unwrap();
        assert_eq!(rec.len(), 4); // 2 blocks × 2 conv inputs
    }

    #[test]
    fn swinvit_probe_shapes() {
        let net = SwinVitTiny::new(8, 1, 10, 4);
        let x = Var::new(Tensor::ones(&[1, 3, 16, 16]));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 10]);
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec).unwrap();
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn resnet_activations_are_bn_squashed() {
        // The BN probe's recorded activations should have bounded variance —
        // the Fig. 4 contrast against EDSR.
        let net = ResNetTiny::new(8, 2, 10, 3);
        let x = Var::new(Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32 * 0.37).sin() * 2.0).collect(),
            &[1, 3, 8, 8],
        ).unwrap());
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec).unwrap();
        for t in rec.records() {
            assert!(t.variance() < 10.0, "variance {}", t.variance());
        }
    }
}
