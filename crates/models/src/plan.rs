//! Planned zero-allocation execution of a [`DeployedNetwork`].
//!
//! [`DeployedNetwork::forward`] allocates a fresh tensor per op and a
//! fresh `Vec<Option<Tensor>>` per call. For serving, that is pure
//! overhead: the graph, the input shape, and therefore every
//! intermediate's size are fixed after the first request. A [`Plan`]
//! captures exactly that invariant structure once:
//!
//! * **shape inference** — the `[n, c, h, w]` of every SSA value;
//! * **liveness** — each value's last consumer (the same table the
//!   allocating forward uses to free tensors early);
//! * **slot assignment** — a linear scan over the live intervals maps
//!   every value to a slot in a shared arena, reusing slots the moment
//!   their previous value dies (best-fit by size, so the arena stays
//!   close to the live-set high-water mark rather than the graph depth).
//!   Elementwise ops (`Relu`, `Prelu`, `Add`) run **in place** on a dying
//!   operand's slot, skipping the copy entirely;
//! * **bicubic taps** — the global-skip resampler's filter weights,
//!   precomputed per axis.
//!
//! [`DeployedNetwork::forward_planned`] then executes the graph through a
//! [`Workspace`] whose slot buffers and [`ConvScratch`] grow on the first
//! request at a given shape and are reused verbatim afterwards: the steady
//! state performs **zero heap allocation** up to the returned output
//! tensor itself. Results are bit-identical to the allocating forward —
//! every kernel the planned path uses (`forward_into` on the conv layers,
//! the in-place elementwise loops, the staged batch-norm and bicubic
//! twins) reproduces its allocating counterpart's per-element arithmetic
//! order exactly, and the property suite in `tests/planned.rs` enforces
//! `f32::to_bits` equality across the whole method registry.
//!
//! A [`Workspace`] belongs to one network (in practice: one serving
//! session). Plans are cached per input shape inside it, so a session
//! serving mixed sizes pays one planning pass per distinct shape.

use crate::deploy::{DeployedNetwork, DeployedOp, ValueId};
use scales_data::BicubicAxisTaps;
use scales_telemetry::OpProfile;
use scales_tensor::workspace::ConvScratch;
use scales_tensor::{Result, Tensor, TensorError};
use std::time::Instant;

/// Flat volume of a rank-4 shape.
fn vol(shape: [usize; 4]) -> usize {
    shape[0] * shape[1] * shape[2] * shape[3]
}

/// The once-per-(graph, input shape) execution schedule: value shapes,
/// arena slot assignment, and precomputed resampler taps. Build via
/// [`DeployedNetwork::plan`]; execute via
/// [`DeployedNetwork::forward_planned`].
pub struct Plan {
    input_shape: [usize; 4],
    /// Per value id (0 = network input): inferred shape.
    shapes: Vec<[usize; 4]>,
    /// Per value id: arena slot (`None` only for the network input, which
    /// is read from the request tensor directly).
    slot_of: Vec<Option<usize>>,
    /// Per slot: element capacity (max over the values it hosts).
    slot_sizes: Vec<usize>,
    /// Per op: precomputed `(y, x)` axis taps for `BicubicUp`.
    bicubic: Vec<Option<(BicubicAxisTaps, BicubicAxisTaps)>>,
    output: ValueId,
}

impl Plan {
    /// The input shape this plan was built for.
    #[must_use]
    pub fn input_shape(&self) -> [usize; 4] {
        self.input_shape
    }

    /// Number of arena slots (the live-value high-water mark, not the
    /// graph depth).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_sizes.len()
    }

    /// Total arena capacity in `f32` elements.
    #[must_use]
    pub fn arena_len(&self) -> usize {
        self.slot_sizes.iter().sum()
    }

    /// Number of values in the graph (ops + the input).
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.shapes.len()
    }

    /// Bytes of bookkeeping this plan holds (shape table, slot map, slot
    /// sizes). The arena buffers themselves belong to the [`Workspace`]
    /// and are accounted by [`Workspace::memory_bytes`].
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.shapes.len() * std::mem::size_of::<[usize; 4]>()
            + self.slot_of.len() * std::mem::size_of::<Option<usize>>()
            + self.slot_sizes.len() * std::mem::size_of::<usize>()
            + self.bicubic.len()
                * std::mem::size_of::<Option<(BicubicAxisTaps, BicubicAxisTaps)>>()
    }

    fn value<'a>(&self, input: &'a [f32], slots: &'a [Vec<f32>], id: ValueId) -> &'a [f32] {
        match self.slot_of[id] {
            None => input,
            Some(s) => &slots[s][..vol(self.shapes[id])],
        }
    }

    /// Execute the plan. `slots`/`scratch` grow on first use at this shape
    /// and are reused verbatim afterwards; the only steady-state
    /// allocation is the returned output tensor.
    fn execute(
        &self,
        net: &DeployedNetwork,
        input: &Tensor,
        slots: &mut Vec<Vec<f32>>,
        scratch: &mut ConvScratch,
        mut profile: Option<&mut OpProfile>,
    ) -> Result<Tensor> {
        if input.shape() != self.input_shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: self.input_shape.to_vec(),
                op: "planned forward input",
            });
        }
        if net.num_ops() + 1 != self.shapes.len() || net.output() != self.output {
            return Err(TensorError::InvalidArgument(
                "plan does not belong to this network (a Workspace serves exactly one model)"
                    .into(),
            ));
        }
        if slots.len() < self.slot_sizes.len() {
            slots.resize_with(self.slot_sizes.len(), Vec::new);
        }
        for (s, &sz) in self.slot_sizes.iter().enumerate() {
            if slots[s].len() < sz {
                slots[s].resize(sz, 0.0);
            }
        }
        if self.output == 0 {
            // Degenerate passthrough graph.
            return Ok(input.clone());
        }
        for (i, op) in net.ops().iter().enumerate() {
            let out_id = i + 1;
            let oshape = self.shapes[out_id];
            let oslot = self.slot_of[out_id].expect("op outputs always have a slot");
            // Move the output buffer out of the arena so the op can read
            // any other value while writing it; in-place ops find their
            // operand's data already inside it.
            let mut out_buf = std::mem::take(&mut slots[oslot]);
            // The profiler branch stamps the clock around the op only
            // when switched on; the off path pays one branch and no
            // clock reads.
            let r = match profile.as_deref_mut() {
                Some(profile) => {
                    let started = Instant::now();
                    let r = self.run_op(op, i, oslot, oshape, input.data(), slots, scratch, &mut out_buf[..vol(oshape)]);
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    profile.record(op.kind(), ns);
                    r
                }
                None => self.run_op(op, i, oslot, oshape, input.data(), slots, scratch, &mut out_buf[..vol(oshape)]),
            };
            slots[oslot] = out_buf;
            r?;
        }
        let oshape = self.shapes[self.output];
        let data = self.value(input.data(), slots, self.output).to_vec();
        Tensor::from_vec(data, &oshape)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_op(
        &self,
        op: &DeployedOp,
        i: usize,
        oslot: usize,
        oshape: [usize; 4],
        input: &[f32],
        slots: &[Vec<f32>],
        scratch: &mut ConvScratch,
        out: &mut [f32],
    ) -> Result<()> {
        match op {
            DeployedOp::FloatConv { conv, src } => {
                let [n, _, h, w] = self.shapes[*src];
                conv.forward_into(self.value(input, slots, *src), n, h, w, &mut scratch.col, out)
            }
            DeployedOp::Body { conv, src } => {
                let [n, _, h, w] = self.shapes[*src];
                conv.forward_into(self.value(input, slots, *src), n, h, w, scratch, out)
            }
            DeployedOp::Relu { src } => {
                if self.slot_of[*src] == Some(oslot) {
                    out.iter_mut().for_each(|v| *v = v.max(0.0));
                } else {
                    for (o, &x) in out.iter_mut().zip(self.value(input, slots, *src)) {
                        *o = x.max(0.0);
                    }
                }
                Ok(())
            }
            DeployedOp::Prelu { slope, src } => {
                let s = *slope;
                let f = |v: f32| if v > 0.0 { v } else { s * v };
                if self.slot_of[*src] == Some(oslot) {
                    out.iter_mut().for_each(|v| *v = f(*v));
                } else {
                    for (o, &x) in out.iter_mut().zip(self.value(input, slots, *src)) {
                        *o = f(x);
                    }
                }
                Ok(())
            }
            DeployedOp::Add { lhs, rhs } => {
                if lhs != rhs && self.slot_of[*lhs] == Some(oslot) {
                    // out already holds lhs.
                    for (o, &bv) in out.iter_mut().zip(self.value(input, slots, *rhs)) {
                        *o += bv;
                    }
                } else if lhs != rhs && self.slot_of[*rhs] == Some(oslot) {
                    // out already holds rhs (IEEE addition commutes
                    // bitwise for the finite values in play).
                    for (o, &av) in out.iter_mut().zip(self.value(input, slots, *lhs)) {
                        *o += av;
                    }
                } else {
                    let l = self.value(input, slots, *lhs);
                    let r = self.value(input, slots, *rhs);
                    for ((o, &av), &bv) in out.iter_mut().zip(l).zip(r) {
                        *o = av + bv;
                    }
                }
                Ok(())
            }
            DeployedOp::Concat { srcs } => {
                let n = oshape[0];
                let mut dst = 0;
                for b in 0..n {
                    for &s in srcs {
                        let p = self.shapes[s];
                        let plen = p[1] * p[2] * p[3];
                        let pdata = self.value(input, slots, s);
                        out[dst..dst + plen].copy_from_slice(&pdata[b * plen..(b + 1) * plen]);
                        dst += plen;
                    }
                }
                Ok(())
            }
            DeployedOp::ChannelAttention { ca, src } => {
                let [n, c, h, w] = self.shapes[*src];
                ca.forward_into(self.value(input, slots, *src), n, c, h, w, scratch, out)
            }
            DeployedOp::PixelShuffle { factor, src } => {
                let [n, cin, h, w] = self.shapes[*src];
                let r = *factor;
                let cout = cin / (r * r);
                let data = self.value(input, slots, *src);
                for b in 0..n {
                    for co in 0..cout {
                        for ry in 0..r {
                            for rx in 0..r {
                                let ci = co * r * r + ry * r + rx;
                                for y in 0..h {
                                    let srow = ((b * cin + ci) * h + y) * w;
                                    let obase =
                                        ((b * cout + co) * (h * r) + y * r + ry) * (w * r) + rx;
                                    for x in 0..w {
                                        out[obase + x * r] = data[srow + x];
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
            DeployedOp::BicubicUp { src, .. } => {
                let (ytaps, xtaps) = self.bicubic[i]
                    .as_ref()
                    .expect("BicubicUp ops carry precomputed taps");
                let [n, c, h, w] = self.shapes[*src];
                let data = self.value(input, slots, *src);
                let (oh, ow) = (ytaps.out_extent(), xtaps.out_extent());
                for b in 0..n {
                    scales_data::resize_bicubic_into(
                        &data[b * c * h * w..(b + 1) * c * h * w],
                        c,
                        h,
                        w,
                        xtaps,
                        ytaps,
                        &mut scratch.col,
                        &mut out[b * c * oh * ow..(b + 1) * c * oh * ow],
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// Infer one op's output shape from its input shapes.
fn infer_shape(op: &DeployedOp, shapes: &[[usize; 4]]) -> Result<[usize; 4]> {
    let same_shape = |ids: &[ValueId]| -> Result<[usize; 4]> {
        let first = shapes[ids[0]];
        for &id in &ids[1..] {
            if shapes[id] != first {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.to_vec(),
                    rhs: shapes[id].to_vec(),
                    op: "planned elementwise shapes",
                });
            }
        }
        Ok(first)
    };
    match op {
        DeployedOp::FloatConv { conv, src } => {
            let [n, c, h, w] = shapes[*src];
            if c != conv.weight().shape()[1] {
                return Err(TensorError::ShapeMismatch {
                    lhs: shapes[*src].to_vec(),
                    rhs: conv.weight().shape().to_vec(),
                    op: "planned conv channels",
                });
            }
            let (oc, oh, ow) = conv.out_shape(h, w)?;
            Ok([n, oc, oh, ow])
        }
        DeployedOp::Body { conv, src } => {
            let [n, c, h, w] = shapes[*src];
            if c != conv.in_channels() {
                return Err(TensorError::ShapeMismatch {
                    lhs: shapes[*src].to_vec(),
                    rhs: vec![conv.out_channels(), conv.in_channels()],
                    op: "planned body conv channels",
                });
            }
            let (oc, oh, ow) = conv.out_shape(h, w)?;
            Ok([n, oc, oh, ow])
        }
        DeployedOp::Relu { src }
        | DeployedOp::Prelu { src, .. }
        | DeployedOp::ChannelAttention { src, .. } => Ok(shapes[*src]),
        DeployedOp::Add { lhs, rhs } => same_shape(&[*lhs, *rhs]),
        DeployedOp::Concat { srcs } => {
            if srcs.is_empty() {
                return Err(TensorError::InvalidArgument("concat of zero values".into()));
            }
            let first = shapes[srcs[0]];
            let mut channels = 0;
            for &s in srcs {
                let p = shapes[s];
                if [p[0], p[2], p[3]] != [first[0], first[2], first[3]] {
                    return Err(TensorError::ShapeMismatch {
                        lhs: first.to_vec(),
                        rhs: p.to_vec(),
                        op: "planned concat extents",
                    });
                }
                channels += p[1];
            }
            Ok([first[0], channels, first[2], first[3]])
        }
        DeployedOp::PixelShuffle { factor, src } => {
            let [n, c, h, w] = shapes[*src];
            let r = *factor;
            if r == 0 || !c.is_multiple_of(r * r) {
                return Err(TensorError::InvalidArgument(format!(
                    "channels {c} not divisible by r^2 = {}",
                    r * r
                )));
            }
            Ok([n, c / (r * r), h * r, w * r])
        }
        DeployedOp::BicubicUp { scale, src } => {
            let [n, c, h, w] = shapes[*src];
            if *scale == 0 {
                return Err(TensorError::InvalidArgument("upscale factor must be positive".into()));
            }
            Ok([n, c, h * scale, w * scale])
        }
    }
}

impl DeployedNetwork {
    /// Build the execution [`Plan`] for an input of the given `[n, c, h,
    /// w]` shape: shape inference over the op graph, liveness-driven arena
    /// slot assignment, and resampler tap precomputation.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-rank-4 input shape or a graph whose ops
    /// cannot accept the inferred intermediate shapes.
    pub fn plan(&self, input_shape: &[usize]) -> Result<Plan> {
        let [n, c, h, w] = match *input_shape {
            [n, c, h, w] => [n, c, h, w],
            _ => {
                return Err(TensorError::RankMismatch {
                    expected: 4,
                    actual: input_shape.len(),
                    op: "planned network input",
                })
            }
        };
        let last_use = self.last_use();
        let nvals = self.num_ops() + 1;
        let mut shapes: Vec<[usize; 4]> = Vec::with_capacity(nvals);
        shapes.push([n, c, h, w]);
        let mut bicubic = Vec::with_capacity(self.num_ops());
        for op in self.ops() {
            shapes.push(infer_shape(op, &shapes)?);
            bicubic.push(match op {
                DeployedOp::BicubicUp { scale, src } => {
                    let [_, _, sh, sw] = shapes[*src];
                    Some((
                        BicubicAxisTaps::new(sh, sh * scale),
                        BicubicAxisTaps::new(sw, sw * scale),
                    ))
                }
                _ => None,
            });
        }
        // Linear-scan slot assignment over the SSA live intervals.
        let mut slot_of: Vec<Option<usize>> = vec![None; nvals];
        let mut slot_sizes: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for (i, op) in self.ops().iter().enumerate() {
            let out_id = i + 1;
            let need = vol(shapes[out_id]);
            // Elementwise ops take over a dying operand's slot and run in
            // place (never the network input or the graph output).
            let steal = |v: ValueId, other: Option<ValueId>| {
                v != 0
                    && v != self.output()
                    && last_use[v] == i
                    && other != Some(v)
                    && slot_of[v].is_some()
            };
            let inplace = match op {
                DeployedOp::Relu { src } | DeployedOp::Prelu { src, .. } => {
                    steal(*src, None).then_some(*src)
                }
                DeployedOp::Add { lhs, rhs } => {
                    if steal(*lhs, Some(*rhs)) {
                        Some(*lhs)
                    } else if steal(*rhs, Some(*lhs)) {
                        Some(*rhs)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let slot = match inplace {
                Some(v) => slot_of[v].expect("steal checked the slot"),
                None => {
                    // Best fit: the smallest free slot that already fits,
                    // else grow the largest free one, else a new slot.
                    let pick = free
                        .iter()
                        .enumerate()
                        .filter(|&(_, &s)| slot_sizes[s] >= need)
                        .min_by_key(|&(_, &s)| slot_sizes[s])
                        .map(|(fi, _)| fi)
                        .or_else(|| {
                            free.iter()
                                .enumerate()
                                .max_by_key(|&(_, &s)| slot_sizes[s])
                                .map(|(fi, _)| fi)
                        });
                    match pick {
                        Some(fi) => free.swap_remove(fi),
                        None => {
                            slot_sizes.push(0);
                            slot_sizes.len() - 1
                        }
                    }
                }
            };
            slot_sizes[slot] = slot_sizes[slot].max(need);
            slot_of[out_id] = Some(slot);
            // Release the slots of values whose last consumer was this op
            // (the stolen slot is already reassigned to the output).
            for &id in op.inputs().as_slice() {
                if id == 0 || id == self.output() || last_use[id] != i {
                    continue;
                }
                if let Some(s) = slot_of[id] {
                    if Some(s) != slot_of[out_id] && !free.contains(&s) {
                        free.push(s);
                    }
                }
            }
        }
        Ok(Plan {
            input_shape: [n, c, h, w],
            shapes,
            slot_of,
            slot_sizes,
            bicubic,
            output: self.output(),
        })
    }

    /// Run deployed inference through the planned zero-allocation
    /// executor. The plan for `input`'s shape is built (and cached in
    /// `ws`) on first use; afterwards the forward reuses the workspace's
    /// arena and scratch verbatim, allocating nothing but the returned
    /// output tensor. Bit-identical to [`DeployedNetwork::forward`].
    ///
    /// A [`Workspace`] must serve exactly one network.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 inputs or mismatched geometry.
    pub fn forward_planned(&self, input: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: input.rank(),
                op: "deployed network input",
            });
        }
        let idx = match ws.plans.iter().position(|p| p.input_shape.as_slice() == input.shape()) {
            Some(i) => {
                ws.plan_hits += 1;
                i
            }
            None => {
                ws.plans.push(self.plan(input.shape())?);
                ws.plans_built += 1;
                ws.plans.len() - 1
            }
        };
        let Workspace { plans, slots, scratch, profile, profile_enabled, .. } = ws;
        plans[idx].execute(self, input, slots, scratch, profile_enabled.then_some(profile))
    }
}

/// The reusable execution state behind [`DeployedNetwork::forward_planned`]:
/// the arena slot buffers, the kernel [`ConvScratch`], and the per-shape
/// [`Plan`] cache, plus counters surfacing plan reuse to serving stats.
///
/// Owned by whoever owns the stream of requests (a `scales-serve`
/// session); serves exactly one network.
#[derive(Default)]
pub struct Workspace {
    slots: Vec<Vec<f32>>,
    scratch: ConvScratch,
    plans: Vec<Plan>,
    plans_built: usize,
    plan_hits: usize,
    /// Cumulative per-op-kind (calls, ns) — populated only while
    /// `profile_enabled` is set.
    profile: OpProfile,
    profile_enabled: bool,
}

impl Workspace {
    /// A fresh, empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans built so far (one per distinct input shape served).
    #[must_use]
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// Forwards that reused an already-built plan.
    #[must_use]
    pub fn plan_hits(&self) -> usize {
        self.plan_hits
    }

    /// The cached plans, in build order.
    #[must_use]
    pub fn plans(&self) -> &[Plan] {
        &self.plans
    }

    /// Switch the per-op profiler on or off. Off (the default) the
    /// planned forward reads no clocks; on, every executed op
    /// accumulates `(calls, ns)` under its
    /// [`DeployedOp::kind`] into [`op_profile`](Workspace::op_profile).
    pub fn enable_profiling(&mut self, on: bool) {
        self.profile_enabled = on;
    }

    /// Whether the per-op profiler is currently on.
    #[must_use]
    pub fn profiling_enabled(&self) -> bool {
        self.profile_enabled
    }

    /// The cumulative per-op profile recorded so far (empty while
    /// profiling has never been on).
    #[must_use]
    pub fn op_profile(&self) -> &OpProfile {
        &self.profile
    }

    /// Forget the recorded profile (the on/off switch is unchanged).
    pub fn reset_op_profile(&mut self) {
        self.profile.clear();
    }

    /// Bytes resident in this workspace: the arena slot buffers (by
    /// allocated capacity) plus every cached plan's bookkeeping. This is
    /// the serving stack's plan-cache memory accounting — what a router
    /// charges a model for beyond its packed weights.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let slots: usize =
            self.slots.iter().map(|s| s.capacity() * std::mem::size_of::<f32>()).sum();
        let plans: usize = self.plans.iter().map(Plan::memory_bytes).sum();
        slots + plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{SrConfig, SrNetwork};
    use crate::{edsr, rcan, rdn, srresnet};
    use scales_core::Method;

    fn probe(n: usize, h: usize, w: usize, seed: f32) -> Tensor {
        Tensor::from_vec(
            (0..n * 3 * h * w).map(|i| ((i as f32 + seed) * 0.17).sin() * 0.4 + 0.5).collect(),
            &[n, 3, h, w],
        )
        .unwrap()
    }

    fn assert_planned_bit_identical(net: &dyn SrNetwork, input: &Tensor, label: &str) {
        let deployed = net.lower().unwrap();
        let want = deployed.forward(input).unwrap();
        let mut ws = Workspace::new();
        // Twice through the same workspace: the second pass runs on warm
        // (stale) buffers.
        for round in 0..2 {
            let got = deployed.forward_planned(input, &mut ws).unwrap();
            assert_eq!(got.shape(), want.shape(), "{label}");
            for (a, b) in want.data().iter().zip(got.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label}, round {round}");
            }
        }
        assert_eq!(ws.plans_built(), 1, "{label}");
        assert_eq!(ws.plan_hits(), 1, "{label}");
    }

    #[test]
    fn planned_matches_allocating_forward_on_every_lowerable_arch() {
        let x = probe(2, 8, 8, 1.0);
        for m in [Method::FullPrecision, Method::scales()] {
            let cfg = |seed| SrConfig { channels: 8, blocks: 2, scale: 2, method: m, seed };
            assert_planned_bit_identical(&srresnet(cfg(51)).unwrap(), &x, "SRResNet");
            assert_planned_bit_identical(&edsr(cfg(52)).unwrap(), &x, "EDSR");
            assert_planned_bit_identical(&rdn(cfg(53)).unwrap(), &x, "RDN");
            assert_planned_bit_identical(&rcan(cfg(54)).unwrap(), &x, "RCAN");
        }
    }

    #[test]
    fn arena_is_far_smaller_than_the_value_count() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 4,
            scale: 2,
            method: Method::scales(),
            seed: 55,
        })
        .unwrap();
        let deployed = net.lower().unwrap();
        let plan = deployed.plan(&[1, 3, 8, 8]).unwrap();
        assert!(
            plan.slot_count() * 2 < plan.num_values(),
            "liveness must reuse slots: {} slots for {} values",
            plan.slot_count(),
            plan.num_values()
        );
        // The arena is bounded by the live-set width (shallow feature +
        // skip + working value), not the op count.
        assert!(plan.slot_count() <= 6, "slot count {}", plan.slot_count());
    }

    #[test]
    fn one_workspace_serves_multiple_input_shapes() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 56,
        })
        .unwrap();
        let deployed = net.lower().unwrap();
        let mut ws = Workspace::new();
        let (a, b) = (probe(1, 8, 8, 2.0), probe(1, 6, 10, 3.0));
        for _ in 0..2 {
            for x in [&a, &b] {
                let got = deployed.forward_planned(x, &mut ws).unwrap();
                let want = deployed.forward(x).unwrap();
                for (p, q) in want.data().iter().zip(got.data().iter()) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
        assert_eq!(ws.plans_built(), 2, "one plan per shape");
        assert_eq!(ws.plan_hits(), 2, "second round reuses both");
    }

    #[test]
    fn profiler_is_off_by_default_and_attributes_wall_time_when_on() {
        // Heavy enough that the op loop dominates the non-profiled
        // overhead (slot sizing, output copy) by a wide margin.
        let net = srresnet(SrConfig {
            channels: 16,
            blocks: 2,
            scale: 2,
            method: Method::scales(),
            seed: 59,
        })
        .unwrap();
        let deployed = net.lower().unwrap();
        let x = probe(1, 32, 32, 6.0);
        let mut ws = Workspace::new();
        assert!(!ws.profiling_enabled());
        let _ = deployed.forward_planned(&x, &mut ws).unwrap();
        assert!(ws.op_profile().is_empty(), "off by default: nothing recorded");

        // Warm run with profiling on (plan already cached, arena warm),
        // then attribute one measured forward.
        ws.enable_profiling(true);
        let _ = deployed.forward_planned(&x, &mut ws).unwrap();
        ws.reset_op_profile();
        let started = std::time::Instant::now();
        let _ = deployed.forward_planned(&x, &mut ws).unwrap();
        let wall = u64::try_from(started.elapsed().as_nanos()).unwrap();
        let profile = ws.op_profile().clone();
        let attributed = profile.total_ns();
        assert!(attributed <= wall, "ops run inside the forward: {attributed} vs {wall}");
        assert!(
            attributed * 100 >= wall * 95,
            "profiler must attribute >= 95% of planned-forward wall time \
             ({attributed} of {wall} ns)"
        );
        // Every op the graph runs is named; SRResNet has binary body
        // convs, float head/tail convs and activations.
        let kinds: Vec<&str> = profile.entries().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"body_conv"), "{kinds:?}");
        assert!(kinds.contains(&"float_conv"), "{kinds:?}");
        let ops_per_forward = profile.total_calls();
        assert_eq!(ops_per_forward, deployed.num_ops() as u64, "every op is counted once");

        // Switching off stops accumulation without clearing.
        ws.enable_profiling(false);
        let _ = deployed.forward_planned(&x, &mut ws).unwrap();
        assert_eq!(ws.op_profile().total_calls(), ops_per_forward);
    }

    #[test]
    fn plan_rejects_wrong_rank_and_wrong_network() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 57,
        })
        .unwrap();
        let deployed = net.lower().unwrap();
        assert!(deployed.plan(&[3, 8, 8]).is_err());
        let mut ws = Workspace::new();
        assert!(deployed
            .forward_planned(&Tensor::zeros(&[3, 8, 8]), &mut ws)
            .is_err());
        // A workspace carrying another (different-sized) network's plan
        // must fail loudly, not read garbage.
        let _ = deployed.forward_planned(&probe(1, 8, 8, 4.0), &mut ws).unwrap();
        let other = srresnet(SrConfig {
            channels: 8,
            blocks: 2,
            scale: 2,
            method: Method::scales(),
            seed: 58,
        })
        .unwrap()
        .lower()
        .unwrap();
        assert!(other.forward_planned(&probe(1, 8, 8, 5.0), &mut ws).is_err());
    }
}
