//! # scales-models
//!
//! The SR network zoo of the SCALES reproduction, each architecture
//! parameterised by a binarization [`Method`](scales_core::Method) so a
//! single implementation serves every comparison row of the paper's
//! Tables III–V:
//!
//! * CNN family — [`srresnet`], [`edsr`], [`rdn`], [`rcan`]
//! * Transformer family — [`swinir`], [`hat`]
//! * Classification probes for the motivation study — [`ResNetTiny`],
//!   [`SwinVitTiny`]
//!
//! All models implement [`SrNetwork`] (forward, cost accounting with the
//! paper's conventions, activation recording for Figs. 1/3/4/5).
//!
//! ```
//! use scales_models::{srresnet, SrConfig, SrNetwork};
//! use scales_core::Method;
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let lr = scales_data::Image::zeros(8, 8);
//! let sr = net.super_resolve(&lr)?;
//! assert_eq!(sr.height(), 16);
//! # Ok(())
//! # }
//! ```

mod arch;
mod classifiers;
mod common;
pub mod cost;
pub mod deploy;
pub mod plan;
mod infer_model;
pub mod probe;
mod rcan;
mod rdn;
mod srresnet;
mod swinir;
pub mod transformer;

pub use arch::Arch;
pub use classifiers::{ResNetTiny, SwinVitTiny};
pub use common::{bicubic_skip, ChannelAttention, Head, SrConfig, SrNetwork, Tail, CA_REDUCTION};
pub use deploy::{DeployedNetwork, DeployedNetworkBuilder, DeployedOp};
pub use infer_model::InferModel;
pub use plan::{Plan, Workspace};
pub use probe::Recorder;
pub use rcan::{rcan, Rcan};
pub use rdn::{rdn, Rdn};
pub use srresnet::{edsr, srresnet, ResidualSr};
pub use swinir::{hat, swinir, SwinSr, WINDOW};
