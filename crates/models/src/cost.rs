//! Per-method cost accounting for body layers, with the paper's counting
//! conventions. Each binarization method pays for its own full-precision
//! machinery: E2FIF its BatchNorm, BAM its FP accumulation map, SCALES its
//! re-scaling branches and LSF parameters.

use scales_binary::count::{channel_rescale_cost, conv2d_cost, linear_cost, spatial_rescale_cost, CostReport};
use scales_core::Method;

/// Cost of one body convolution under `method` at output size `h×w`.
#[must_use]
pub fn body_conv_cost(method: Method, in_c: usize, out_c: usize, kernel: usize, h: usize, w: usize) -> CostReport {
    let hw = (h * w) as u64;
    let mut r = match method {
        Method::FullPrecision | Method::Bicubic => {
            conv2d_cost(in_c, out_c, kernel, h, w, false, true)
        }
        _ => conv2d_cost(in_c, out_c, kernel, h, w, true, false),
    };
    match method {
        Method::E2fif => {
            // BatchNorm: scale+shift params; ~6 FP ops per output element
            // (statistics + normalise + affine). E2FIF's BN cannot be
            // folded into a sign threshold because its output also feeds
            // the full-precision skip — this is the OPs gap the paper's
            // Table V attributes to BN removal.
            r.add(CostReport { fp_params: 2 * out_c as u64, bin_params: 0, fp_ops: 6 * out_c as u64 * hw, bin_ops: 0 });
        }
        Method::Bam => {
            // FP accumulation map: |x| mean over channels + multiply.
            r.add(CostReport { fp_params: 0, bin_params: 0, fp_ops: in_c as u64 * hw + out_c as u64 * hw, bin_ops: 0 });
        }
        Method::Btm => {
            // Per-image threshold: one mean over the input.
            r.add(CostReport { fp_params: 0, bin_params: 0, fp_ops: in_c as u64 * hw, bin_ops: 0 });
        }
        Method::Scales(c) => {
            if c.lsf {
                // α (1) + β (C) params; threshold subtraction per element.
                r.add(CostReport {
                    fp_params: 1 + in_c as u64,
                    bin_params: 0,
                    fp_ops: in_c as u64 * hw,
                    bin_ops: 0,
                });
            }
            if c.spatial {
                r.add(spatial_rescale_cost(in_c, h, w));
            }
            if c.channel && in_c == out_c {
                r.add(channel_rescale_cost(in_c, c.channel_kernel, h, w));
            }
        }
        _ => {}
    }
    r
}

/// Cost of one body linear under `method` over `tokens` positions.
#[must_use]
pub fn body_linear_cost(method: Method, in_f: usize, out_f: usize, tokens: usize) -> CostReport {
    let mut r = match method {
        Method::FullPrecision | Method::Bicubic => linear_cost(in_f, out_f, tokens, false, true),
        _ => linear_cost(in_f, out_f, tokens, true, true),
    };
    if let Method::Scales(c) = method {
        if c.lsf {
            r.add(CostReport {
                fp_params: 1 + in_f as u64,
                bin_params: 0,
                fp_ops: (in_f * tokens) as u64,
                bin_ops: 0,
            });
        }
        if c.spatial {
            // FP linear C→1 + sigmoid + multiply per token.
            r.add(CostReport {
                fp_params: in_f as u64 + 1,
                bin_params: 0,
                fp_ops: (in_f * tokens) as u64 + 2 * tokens as u64,
                bin_ops: 0,
            });
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_conv_is_cheaper_than_fp_and_close_to_e2fif() {
        let fp = body_conv_cost(Method::FullPrecision, 64, 64, 3, 128, 128);
        let e2 = body_conv_cost(Method::E2fif, 64, 64, 3, 128, 128);
        let sc = body_conv_cost(Method::scales(), 64, 64, 3, 128, 128);
        assert!(sc.effective_ops() < fp.effective_ops() / 10.0);
        // SCALES removes BN but adds re-scaling; stays within ~2x of E2FIF.
        assert!(sc.effective_ops() < e2.effective_ops() * 2.0);
    }

    #[test]
    fn full_scales_beats_e2fif_ops_at_paper_width() {
        // Paper Table V: SCALES 1.74G < E2FIF 1.83G despite the re-scaling
        // branches, because BN removal wins.
        let e2 = body_conv_cost(Method::E2fif, 64, 64, 3, 128, 128);
        let sc = body_conv_cost(Method::scales(), 64, 64, 3, 128, 128);
        assert!(sc.effective_ops() < e2.effective_ops(), "{} vs {}", sc.effective_ops(), e2.effective_ops());
    }

    #[test]
    fn lsf_only_beats_e2fif_ops() {
        // Table V: LSF has fewer OPs than E2FIF (BN removal).
        let e2 = body_conv_cost(Method::E2fif, 64, 64, 3, 128, 128);
        let lsf = body_conv_cost(Method::Scales(scales_core::ScalesComponents::lsf_only()), 64, 64, 3, 128, 128);
        assert!(lsf.effective_ops() < e2.effective_ops(), "{} vs {}", lsf.effective_ops(), e2.effective_ops());
    }

    #[test]
    fn binary_linear_much_cheaper_than_fp() {
        let fp = body_linear_cost(Method::FullPrecision, 64, 64, 1000);
        let bi = body_linear_cost(Method::Bibert, 64, 64, 1000);
        assert!(bi.effective_ops() < fp.effective_ops() / 20.0);
    }
}
