//! Whole-network deployment: lower a trained [`SrNetwork`] to a
//! [`DeployedNetwork`] — a flat, tape-free op graph whose body convolutions
//! run on the bit-packed XNOR-popcount kernels of `scales-binary` and whose
//! remaining pieces (head/tail convs, activations, skips, channel
//! attention, the bicubic global skip) run as raw-tensor float ops through
//! the `scales-tensor` backend.
//!
//! This is the whole-graph analogue of the paper's Table VI deployment
//! (Larq on a Snapdragon 870): training builds an autograd tape per call;
//! the deployed graph allocates no tape, packs each binary weight once at
//! lowering time, and is what the serving/bench paths execute.
//!
//! **Numerical-equivalence contract:** for every architecture that
//! implements [`SrNetwork::lower`] and every [`Method`] registry row, the
//! deployed forward matches the training-path forward within `1e-4`
//! per output value (integer-exact binary convolutions; the FP branches
//! round identically up to f32 accumulation order). The contract is
//! enforced by tests in this module, `tests/deploy.rs`, and the examples.
//!
//! [`Method`]: scales_core::Method

use crate::common::SrNetwork;
use scales_core::{DeployedBodyConv, FloatConv2d};
use scales_data::{resize_bicubic_tensor, Image};
use scales_tensor::ops::{global_avg_pool, pixel_shuffle, sigmoid};
use scales_tensor::workspace::ConvScratch;
use scales_tensor::{Result, Tensor, TensorError};

/// Identifies a value in the deployed op graph (0 is the network input;
/// op `i` produces value `i + 1`).
pub type ValueId = usize;

/// SE-style channel attention in deployed form (RCAN blocks).
pub struct DeployedChannelAttention {
    down: FloatConv2d,
    up: FloatConv2d,
}

impl DeployedChannelAttention {
    /// Build from the lowered 1×1 squeeze/excite convolutions.
    #[must_use]
    pub fn new(down: FloatConv2d, up: FloatConv2d) -> Self {
        Self { down, up }
    }

    /// The 1×1 squeeze convolution (for serialization).
    #[must_use]
    pub fn down(&self) -> &FloatConv2d {
        &self.down
    }

    /// The 1×1 excite convolution (for serialization).
    #[must_use]
    pub fn up(&self) -> &FloatConv2d {
        &self.up
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let pooled = global_avg_pool(x)?; // [N, C, 1, 1]
        let gate = self.up.forward(&self.down.forward(&pooled)?.map(|v| v.max(0.0)))?;
        let gate = gate.map(sigmoid);
        x.zip_map(&gate, |a, g| a * g)
    }

    /// Zero-allocation twin of the gate: pooled activations, the two 1×1
    /// convolutions, and the sigmoid gate all stage in [`ConvScratch`];
    /// bit-identical to the allocating forward.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        scratch: &mut ConvScratch,
        out: &mut [f32],
    ) -> Result<()> {
        let cr = self.down.out_channels();
        if self.up.out_channels() != c {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![self.up.out_channels()],
                rhs: vec![c],
                op: "channel attention excite width",
            });
        }
        let hw = h * w;
        if x.len() != n * c * hw {
            return Err(TensorError::LengthMismatch { expected: n * c * hw, actual: x.len() });
        }
        if out.len() != n * c * hw {
            return Err(TensorError::LengthMismatch { expected: n * c * hw, actual: out.len() });
        }
        let ConvScratch { col, chan, chan2, .. } = scratch;
        let pooled = scales_tensor::workspace::sized(chan, n * c);
        scales_tensor::ops::global_avg_pool_into(x, n, c, hw, pooled);
        let mid = scales_tensor::workspace::sized(chan2, n * cr);
        self.down.forward_into(pooled, n, 1, 1, col, mid)?;
        mid.iter_mut().for_each(|v| *v = v.max(0.0));
        // The excite conv writes back over the (now dead) pooled buffer.
        self.up.forward_into(mid, n, 1, 1, col, pooled)?;
        pooled.iter_mut().for_each(|v| *v = sigmoid(*v));
        for b in 0..n {
            for ci in 0..c {
                let g = pooled[b * c + ci];
                let base = (b * c + ci) * hw;
                for (o, &v) in out[base..base + hw].iter_mut().zip(&x[base..base + hw]) {
                    *o = v * g;
                }
            }
        }
        Ok(())
    }
}

/// One node of the deployed graph. Each op reads previously produced
/// values and emits exactly one new value.
pub enum DeployedOp {
    /// Full-precision convolution (head, tail, RDN fusions).
    FloatConv {
        /// The lowered convolution.
        conv: FloatConv2d,
        /// Input value.
        src: ValueId,
    },
    /// A lowered body convolution of any method.
    Body {
        /// The lowered layer.
        conv: Box<DeployedBodyConv>,
        /// Input value.
        src: ValueId,
    },
    /// Elementwise `max(0, x)`.
    Relu {
        /// Input value.
        src: ValueId,
    },
    /// PReLU with a single learned negative slope.
    Prelu {
        /// Negative-region slope.
        slope: f32,
        /// Input value.
        src: ValueId,
    },
    /// Elementwise sum of two values of identical shape.
    Add {
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Channel-axis concatenation.
    Concat {
        /// Operands, in order.
        srcs: Vec<ValueId>,
    },
    /// SE-style channel attention gate.
    ChannelAttention {
        /// The lowered gate.
        ca: DeployedChannelAttention,
        /// Input value.
        src: ValueId,
    },
    /// Sub-pixel upsample.
    PixelShuffle {
        /// Upscale factor.
        factor: usize,
        /// Input value.
        src: ValueId,
    },
    /// Bicubic upsample of a batch (the FP global skip).
    BicubicUp {
        /// Upscale factor.
        scale: usize,
        /// Input value.
        src: ValueId,
    },
}

/// A borrowed, allocation-free view of one op's input values: unary and
/// binary ops store their ids inline, `Concat` hands out its slice. This
/// keeps the per-op hot loops (`forward`, the plan walk) free of the
/// `Vec` clone the old `inputs()` paid on every call.
pub(crate) enum OpInputs<'a> {
    One([ValueId; 1]),
    Two([ValueId; 2]),
    Many(&'a [ValueId]),
}

impl OpInputs<'_> {
    /// The input ids, in op order.
    pub(crate) fn as_slice(&self) -> &[ValueId] {
        match self {
            OpInputs::One(ids) => ids,
            OpInputs::Two(ids) => ids,
            OpInputs::Many(ids) => ids,
        }
    }
}

impl DeployedOp {
    /// Stable kind label of this op — the key the planned executor's
    /// opt-in profiler accumulates under and the `op` label value of the
    /// `scales_plan_op_*` Prometheus series. Distinguishes the serving
    /// cost centers: binary body GEMM vs float GEMM vs activations vs
    /// upsample.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DeployedOp::FloatConv { .. } => "float_conv",
            DeployedOp::Body { .. } => "body_conv",
            DeployedOp::Relu { .. } => "relu",
            DeployedOp::Prelu { .. } => "prelu",
            DeployedOp::Add { .. } => "add",
            DeployedOp::Concat { .. } => "concat",
            DeployedOp::ChannelAttention { .. } => "channel_attention",
            DeployedOp::PixelShuffle { .. } => "pixel_shuffle",
            DeployedOp::BicubicUp { .. } => "bicubic_up",
        }
    }

    pub(crate) fn inputs(&self) -> OpInputs<'_> {
        match self {
            DeployedOp::FloatConv { src, .. }
            | DeployedOp::Body { src, .. }
            | DeployedOp::Relu { src }
            | DeployedOp::Prelu { src, .. }
            | DeployedOp::ChannelAttention { src, .. }
            | DeployedOp::PixelShuffle { src, .. }
            | DeployedOp::BicubicUp { src, .. } => OpInputs::One([*src]),
            DeployedOp::Add { lhs, rhs } => OpInputs::Two([*lhs, *rhs]),
            DeployedOp::Concat { srcs } => OpInputs::Many(srcs),
        }
    }
}

/// A trained SR network lowered whole to its deployment form.
pub struct DeployedNetwork {
    ops: Vec<DeployedOp>,
    output: ValueId,
    scale: usize,
    name: String,
    /// For each value id, the index of the last op consuming it (used to
    /// free intermediates during evaluation).
    last_use: Vec<usize>,
}

impl DeployedNetwork {
    /// Upscaling factor of the lowered network.
    #[must_use]
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Architecture name this graph was lowered from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ops in the graph.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The ops of the graph in execution order (op `i` produces value
    /// `i + 1`; value 0 is the network input). This is the walk the
    /// `scales-io` artifact writer serializes; rebuilding is pushing the
    /// same ops through a [`DeployedNetworkBuilder`] and sealing with
    /// [`DeployedNetwork::output`].
    #[must_use]
    pub fn ops(&self) -> &[DeployedOp] {
        &self.ops
    }

    /// The value id the graph returns.
    #[must_use]
    pub fn output(&self) -> ValueId {
        self.output
    }

    /// For each value id, the index of the last op consuming it
    /// (`usize::MAX` when never consumed) — the liveness table the memory
    /// planner walks.
    pub(crate) fn last_use(&self) -> &[usize] {
        &self.last_use
    }

    /// Number of bit-packed (binary) body convolutions in the graph.
    #[must_use]
    pub fn packed_layers(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    DeployedOp::Body { conv, .. } if !matches!(**conv, DeployedBodyConv::Float(_))
                )
            })
            .count()
    }

    /// Run deployed inference on an input batch `[N, 3, H, W]`.
    ///
    /// Intermediates are freed as soon as their last consumer has run, so
    /// peak memory tracks the network's live-value width rather than its
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: input.rank(),
                op: "deployed network input",
            });
        }
        let mut values: Vec<Option<Tensor>> = vec![None; self.ops.len() + 1];
        values[0] = Some(input.clone());
        for (i, op) in self.ops.iter().enumerate() {
            // Move a value out of the store when this op is its final
            // (single) consumer; clone only when it is still live.
            let inputs = op.inputs();
            let take = |values: &mut Vec<Option<Tensor>>, id: ValueId| -> Result<Tensor> {
                let movable = self.last_use[id] == i
                    && id != self.output
                    && inputs.as_slice().iter().filter(|&&x| x == id).count() == 1;
                let v = if movable { values[id].take() } else { values[id].clone() };
                v.ok_or_else(|| TensorError::InvalidArgument(format!("value {id} freed too early")))
            };
            let out = match op {
                DeployedOp::FloatConv { conv, src } => conv.forward(&take(&mut values, *src)?)?,
                DeployedOp::Body { conv, src } => conv.forward(&take(&mut values, *src)?)?,
                DeployedOp::Relu { src } => take(&mut values, *src)?.map(|v| v.max(0.0)),
                DeployedOp::Prelu { slope, src } => {
                    let s = *slope;
                    take(&mut values, *src)?.map(|v| if v > 0.0 { v } else { s * v })
                }
                DeployedOp::Add { lhs, rhs } => {
                    take(&mut values, *lhs)?.zip_map(&take(&mut values, *rhs)?, |a, b| a + b)?
                }
                DeployedOp::Concat { srcs } => {
                    let parts: Vec<Tensor> =
                        srcs.iter().map(|&s| take(&mut values, s)).collect::<Result<_>>()?;
                    let refs: Vec<&Tensor> = parts.iter().collect();
                    Tensor::concat(&refs, 1)?
                }
                DeployedOp::ChannelAttention { ca, src } => ca.forward(&take(&mut values, *src)?)?,
                DeployedOp::PixelShuffle { factor, src } => {
                    pixel_shuffle(&take(&mut values, *src)?, *factor)?
                }
                DeployedOp::BicubicUp { scale, src } => {
                    let t = take(&mut values, *src)?;
                    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
                    let mut data = Vec::with_capacity(n * c * h * w * scale * scale);
                    for b in 0..n {
                        let img = t.slice_axis(0, b, 1)?.reshape(&[c, h, w])?;
                        let up = resize_bicubic_tensor(&img, h * scale, w * scale)?;
                        data.extend_from_slice(up.data());
                    }
                    Tensor::from_vec(data, &[n, c, h * scale, w * scale])?
                }
            };
            values[i + 1] = Some(out);
            // Free values whose last consumer was this op.
            for (id, &last) in self.last_use.iter().enumerate() {
                if last == i && id != self.output {
                    values[id] = None;
                }
            }
        }
        values[self.output]
            .take()
            .ok_or_else(|| TensorError::InvalidArgument("deployed graph has no output".into()))
    }

    /// Super-resolve a single image (batch-of-one convenience, mirroring
    /// [`SrNetwork::super_resolve`]).
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn super_resolve(&self, lr: &Image) -> Result<Image> {
        let t = lr.tensor();
        let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
        let y = self.forward(&t.reshape(&[1, c, h, w])?)?;
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        Image::from_tensor(y.reshape(&[3, oh, ow])?)
    }
}

/// Incrementally assembles a [`DeployedNetwork`]; used by each
/// architecture's `lower()` implementation.
pub struct DeployedNetworkBuilder {
    ops: Vec<DeployedOp>,
    scale: usize,
    name: String,
}

impl DeployedNetworkBuilder {
    /// Start a graph for a network with the given name and upscale factor.
    #[must_use]
    pub fn new(name: &str, scale: usize) -> Self {
        Self { ops: Vec::new(), scale, name: name.to_string() }
    }

    /// The network-input value.
    #[must_use]
    pub fn input(&self) -> ValueId {
        0
    }

    /// Append an op, returning the id of the value it produces.
    pub fn push(&mut self, op: DeployedOp) -> ValueId {
        self.ops.push(op);
        self.ops.len()
    }

    /// Lower a full-precision `Conv2d` layer (weight, optional bias, spec).
    ///
    /// # Errors
    ///
    /// Propagates malformed-tensor errors.
    pub fn float_conv(&mut self, conv: &scales_nn::layers::Conv2d, src: ValueId) -> Result<ValueId> {
        use scales_nn::Module as _;
        let bias = conv.params().get(1).map(scales_autograd::Var::value);
        let lowered = FloatConv2d::new(conv.weight().value(), bias, conv.spec())?;
        Ok(self.push(DeployedOp::FloatConv { conv: lowered, src }))
    }

    /// Lower a trained body convolution of any method.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn body(&mut self, conv: &scales_core::BodyConv, src: ValueId) -> Result<ValueId> {
        let lowered = DeployedBodyConv::from_trained(conv)?;
        Ok(self.push(DeployedOp::Body { conv: Box::new(lowered), src }))
    }

    /// Append a ReLU.
    pub fn relu(&mut self, src: ValueId) -> ValueId {
        self.push(DeployedOp::Relu { src })
    }

    /// Append a PReLU with the given slope.
    pub fn prelu(&mut self, slope: f32, src: ValueId) -> ValueId {
        self.push(DeployedOp::Prelu { slope, src })
    }

    /// Append an elementwise sum.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push(DeployedOp::Add { lhs, rhs })
    }

    /// Append a channel concat (a single operand passes through without a
    /// copy).
    pub fn concat(&mut self, srcs: Vec<ValueId>) -> ValueId {
        if srcs.len() == 1 {
            return srcs[0];
        }
        self.push(DeployedOp::Concat { srcs })
    }

    /// Append a channel-attention gate.
    pub fn channel_attention(&mut self, ca: DeployedChannelAttention, src: ValueId) -> ValueId {
        self.push(DeployedOp::ChannelAttention { ca, src })
    }

    /// Append the tail upsample (identity at ×1).
    pub fn pixel_shuffle(&mut self, factor: usize, src: ValueId) -> ValueId {
        if factor == 1 {
            return src;
        }
        self.push(DeployedOp::PixelShuffle { factor, src })
    }

    /// Append the bicubic FP global skip.
    pub fn bicubic_up(&mut self, scale: usize, src: ValueId) -> ValueId {
        self.push(DeployedOp::BicubicUp { scale, src })
    }

    /// Seal the graph with its output value.
    #[must_use]
    pub fn finish(self, output: ValueId) -> DeployedNetwork {
        let mut last_use = vec![usize::MAX; self.ops.len() + 1];
        for (i, op) in self.ops.iter().enumerate() {
            for &id in op.inputs().as_slice() {
                last_use[id] = i;
            }
        }
        DeployedNetwork { ops: self.ops, output, scale: self.scale, name: self.name, last_use }
    }
}

/// Lower a trained network behind a `dyn SrNetwork` handle.
///
/// # Errors
///
/// Returns an error for architectures without a lowering (transformers).
pub fn lower(net: &dyn SrNetwork) -> Result<DeployedNetwork> {
    net.lower()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SrConfig;
    use crate::{edsr, rcan, rdn, srresnet};
    use scales_autograd::Var;
    use scales_core::Method;

    fn probe(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            (0..c * h * w).map(|i| ((i as f32) * 0.11).sin() * 0.4 + 0.5).collect(),
            &[1, c, h, w],
        )
        .unwrap()
    }

    fn assert_equiv(net: &dyn SrNetwork, input: &Tensor, label: &str) {
        let deployed = net.lower().unwrap();
        let reference = net.forward(&Var::new(input.clone())).unwrap().value();
        let fast = deployed.forward(input).unwrap();
        assert_eq!(fast.shape(), reference.shape(), "{label}");
        let mut worst = 0.0f32;
        for (a, b) in fast.data().iter().zip(reference.data().iter()) {
            worst = worst.max((a - b).abs());
        }
        assert!(worst < 1e-4, "{label}: worst |err| = {worst}");
    }

    #[test]
    fn lowered_srresnet_matches_training_path() {
        let x = probe(3, 8, 8);
        for m in [Method::FullPrecision, Method::E2fif, Method::scales()] {
            let net =
                srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: m, seed: 11 }).unwrap();
            assert_equiv(&net, &x, &format!("SRResNet/{m}"));
        }
    }

    #[test]
    fn lowered_edsr_matches_training_path() {
        let x = probe(3, 8, 8);
        let net =
            edsr(SrConfig { channels: 8, blocks: 2, scale: 2, method: Method::scales(), seed: 12 })
                .unwrap();
        assert_equiv(&net, &x, "EDSR/SCALES");
    }

    #[test]
    fn lowered_rdn_matches_training_path() {
        let x = probe(3, 8, 8);
        for m in [Method::FullPrecision, Method::scales()] {
            let net = rdn(SrConfig { channels: 8, blocks: 2, scale: 2, method: m, seed: 13 }).unwrap();
            assert_equiv(&net, &x, &format!("RDN/{m}"));
        }
    }

    #[test]
    fn lowered_rcan_matches_training_path() {
        let x = probe(3, 8, 8);
        for m in [Method::FullPrecision, Method::Btm, Method::scales()] {
            let net = rcan(SrConfig { channels: 8, blocks: 1, scale: 2, method: m, seed: 14 }).unwrap();
            assert_equiv(&net, &x, &format!("RCAN/{m}"));
        }
    }

    #[test]
    fn lowered_network_counts_packed_layers() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 2, scale: 2, method: Method::scales(), seed: 15 })
                .unwrap();
        let deployed = net.lower().unwrap();
        // 2 blocks × 2 convs + body-end conv, all binary.
        assert_eq!(deployed.packed_layers(), 5);
        assert_eq!(deployed.scale(), 2);
        assert_eq!(deployed.name(), "SRResNet");
    }

    #[test]
    fn fp_network_has_no_packed_layers() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::FullPrecision,
            seed: 16,
        })
        .unwrap();
        assert_eq!(net.lower().unwrap().packed_layers(), 0);
    }

    #[test]
    fn deployed_super_resolve_roundtrip() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 17 })
                .unwrap();
        let deployed = net.lower().unwrap();
        let img = Image::zeros(8, 8);
        let sr = deployed.super_resolve(&img).unwrap();
        assert_eq!((sr.height(), sr.width()), (16, 16));
    }

    #[test]
    fn deployed_forward_handles_batches() {
        let net =
            srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 18 })
                .unwrap();
        let deployed = net.lower().unwrap();
        let one = probe(3, 6, 6);
        let mut batch_data = one.data().to_vec();
        batch_data.extend(one.data().iter().map(|v| 1.0 - v));
        let batch = Tensor::from_vec(batch_data, &[2, 3, 6, 6]).unwrap();
        let y = deployed.forward(&batch).unwrap();
        assert_eq!(y.shape(), &[2, 3, 12, 12]);
        // First batch entry must match the single-image forward exactly
        // (all ops are batch-local for this config... except the channel
        // re-scaling GAP, which is per-image, so equality holds).
        let y1 = deployed.forward(&one).unwrap();
        for (a, b) in y.data()[..y1.len()].iter().zip(y1.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transformer_lowering_reports_unsupported() {
        let net = crate::swinir(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::FullPrecision,
            seed: 19,
        })
        .unwrap();
        assert!(net.lower().is_err());
    }
}
