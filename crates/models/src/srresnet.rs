//! SRResNet and EDSR — the residual CNN SR architectures of Table III and
//! the motivation study (Fig. 3).
//!
//! Both share the Fig. 2 skeleton: head conv → body of residual blocks →
//! body-end conv → global residual → pixel-shuffle tail, plus the bicubic
//! FP skip from the LR input. They differ in block style:
//!
//! * **SRResNet** — conv → PReLU → conv (BN omitted in the lite FP variant;
//!   binary variants never had it except E2FIF's own BN).
//! * **EDSR** — conv → ReLU → conv, the BN-free standard.
//!
//! For binary methods the block body is two method-parameterised
//! [`BodyConv`]s back-to-back (each carrying its own FP identity skip, per
//! Fig. 8a) — binary SR networks drop the inter-conv activation because a
//! sign binarizer would erase a ReLU'd (all-positive) input.

use crate::arch::Arch;
use crate::common::{bicubic_skip, head_cost, tail_cost, Head, SrConfig, SrNetwork, Tail};
use crate::cost::body_conv_cost;
use crate::probe::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::{BodyConv, Method};
use scales_nn::layers::Prelu;
use scales_nn::Module;
use scales_tensor::Result;

/// Block activation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Style {
    Srresnet,
    Edsr,
}

struct ResBlock {
    conv1: BodyConv,
    conv2: BodyConv,
    prelu: Option<Prelu>,
    style: Style,
    binary: bool,
}

impl ResBlock {
    fn new(style: Style, channels: usize, method: Method, rng: &mut StdRng) -> Result<Self> {
        Ok(Self {
            conv1: BodyConv::new(method, channels, channels, 3, rng)?,
            conv2: BodyConv::new(method, channels, channels, 3, rng)?,
            prelu: (matches!(style, Style::Srresnet) && !method.is_binary()).then(Prelu::new),
            style,
            binary: method.is_binary(),
        })
    }

    fn forward(&self, x: &Var, recorder: Option<&mut Recorder>) -> Result<Var> {
        if let Some(r) = recorder {
            r.record(x)?;
        }
        if self.binary {
            // Binary blocks: two self-skipping binary convs, no inter-conv
            // activation (see module docs).
            let y = self.conv1.forward(x)?;
            self.conv2.forward(&y)
        } else {
            let mut y = self.conv1.forward(x)?;
            y = match (self.style, &self.prelu) {
                (Style::Srresnet, Some(p)) => p.forward(&y)?,
                _ => y.relu(),
            };
            y = self.conv2.forward(&y)?;
            y.add(x)
        }
    }

    fn record_mid(&self, x: &Var, recorder: &mut Recorder) -> Result<Var> {
        // Records the input of each conv separately (used by Fig. 3's
        // layer-wise series: odd/even layers have very different scales).
        recorder.record(x)?;
        if self.binary {
            let y = self.conv1.forward(x)?;
            recorder.record(&y)?;
            self.conv2.forward(&y)
        } else {
            let mut y = self.conv1.forward(x)?;
            y = match (self.style, &self.prelu) {
                (Style::Srresnet, Some(p)) => p.forward(&y)?,
                _ => y.relu(),
            };
            recorder.record(&y)?;
            y = self.conv2.forward(&y)?;
            y.add(x)
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(pr) = &self.prelu {
            p.extend(pr.params());
        }
        p
    }

    fn clamp_alpha(&self) {
        self.conv1.clamp_alpha(1e-3);
        self.conv2.clamp_alpha(1e-3);
    }
}

/// The residual CNN SR network (SRResNet or EDSR skeleton).
pub struct ResidualSr {
    head: Head,
    blocks: Vec<ResBlock>,
    body_end: BodyConv,
    tail: Tail,
    config: SrConfig,
    arch: Arch,
}

impl ResidualSr {
    fn build(style: Style, config: SrConfig, arch: Arch) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let head = Head::new(config.channels, &mut rng);
        let mut blocks = Vec::with_capacity(config.blocks);
        for _ in 0..config.blocks {
            blocks.push(ResBlock::new(style, config.channels, config.method, &mut rng)?);
        }
        let body_end = BodyConv::new(config.method, config.channels, config.channels, 3, &mut rng)?;
        let tail = Tail::new(config.channels, config.scale, &mut rng);
        Ok(Self { head, blocks, body_end, tail, config, arch })
    }

    /// Architecture name (`"SRResNet"` or `"EDSR"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.arch.name()
    }

    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let shallow = self.head.forward(input)?;
        let mut x = shallow.clone();
        for b in &self.blocks {
            x = match recorder.as_deref_mut() {
                Some(r) => b.record_mid(&x, r)?,
                None => b.forward(&x, None)?,
            };
        }
        if let Some(r) = recorder {
            r.record(&x)?;
        }
        let deep = self.body_end.forward(&x)?;
        let fused = deep.add(&shallow)?; // global residual (Fig. 2)
        let out = self.tail.forward(&fused)?;
        out.add(&bicubic_skip(input, self.config.scale)?)
    }
}

/// Build an SRResNet-lite for a configuration.
///
/// # Errors
///
/// Returns an error for invalid configurations or methods without a CNN
/// body.
pub fn srresnet(config: SrConfig) -> Result<ResidualSr> {
    ResidualSr::build(Style::Srresnet, config, Arch::SrResNet)
}

/// Build an EDSR-lite for a configuration.
///
/// # Errors
///
/// Returns an error for invalid configurations or methods without a CNN
/// body.
pub fn edsr(config: SrConfig) -> Result<ResidualSr> {
    ResidualSr::build(Style::Edsr, config, Arch::Edsr)
}

impl Module for ResidualSr {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.head.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.body_end.params());
        p.extend(self.tail.params());
        p
    }
}

impl SrNetwork for ResidualSr {
    fn scale(&self) -> usize {
        self.config.scale
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn lower(&self) -> Result<crate::deploy::DeployedNetwork> {
        use crate::deploy::DeployedNetworkBuilder;
        let mut b = DeployedNetworkBuilder::new(self.arch.name(), self.config.scale);
        let input = b.input();
        let shallow = b.float_conv(self.head.conv(), input)?;
        let mut x = shallow;
        for block in &self.blocks {
            if block.binary {
                // Binary blocks: two self-skipping convs, no activation.
                let y = b.body(&block.conv1, x)?;
                x = b.body(&block.conv2, y)?;
            } else {
                let mut y = b.body(&block.conv1, x)?;
                y = match (block.style, &block.prelu) {
                    (Style::Srresnet, Some(p)) => {
                        let slope = p.params()[0].value().data()[0];
                        b.prelu(slope, y)
                    }
                    _ => b.relu(y),
                };
                y = b.body(&block.conv2, y)?;
                x = b.add(y, x);
            }
        }
        let deep = b.body(&self.body_end, x)?;
        let fused = b.add(deep, shallow); // global residual (Fig. 2)
        let tail = b.float_conv(self.tail.conv(), fused)?;
        let up = b.pixel_shuffle(self.tail.factor(), tail);
        let skip = b.bicubic_up(self.config.scale, input);
        let out = b.add(up, skip);
        Ok(b.finish(out))
    }

    fn config(&self) -> SrConfig {
        self.config
    }

    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport {
        let c = self.config.channels;
        let mut r = head_cost(c, lr_h, lr_w);
        let body_convs = self.blocks.len() * 2 + 1;
        for _ in 0..body_convs {
            r.add(body_conv_cost(self.config.method, c, c, 3, lr_h, lr_w));
        }
        r.add(tail_cost(c, self.config.scale, lr_h, lr_w));
        r
    }

    fn clamp_alphas(&self) {
        for b in &self.blocks {
            b.clamp_alpha();
        }
        self.body_end.clamp_alpha(1e-3);
    }

    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    fn tiny(method: Method, scale: usize) -> SrConfig {
        SrConfig { channels: 8, blocks: 1, scale, method, seed: 7 }
    }

    #[test]
    fn every_method_forward_shape() {
        let x = Var::new(Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32 * 0.1).sin() * 0.5 + 0.5).collect(),
            &[1, 3, 8, 8],
        ).unwrap());
        for m in [Method::FullPrecision, Method::E2fif, Method::Btm, Method::Bam, Method::scales()] {
            let net = srresnet(tiny(m, 2)).unwrap();
            let y = net.forward(&x).unwrap();
            assert_eq!(y.shape(), vec![1, 3, 16, 16], "method {m}");
        }
    }

    #[test]
    fn x4_output_shape() {
        let net = edsr(tiny(Method::scales(), 4)).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 6, 6]));
        assert_eq!(net.forward(&x).unwrap().shape(), vec![1, 3, 24, 24]);
    }

    #[test]
    fn recorder_captures_body_inputs() {
        let net = edsr(tiny(Method::FullPrecision, 2)).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 8, 8]));
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec).unwrap();
        // 1 block × 2 conv inputs + body-end input = 3 records.
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.records()[0].shape(), &[8, 8, 8]);
    }

    #[test]
    fn grads_flow_to_all_params() {
        let net = srresnet(tiny(Method::scales(), 2)).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 4, 4]));
        let y = net.forward(&x).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let with_grad = net.params().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, net.params().len());
    }

    #[test]
    fn binary_cost_is_far_below_fp() {
        // Paper-scale config (64 channels, 8 blocks): at this size the
        // binary body dominates and the Table III ratios appear.
        let big = |m| SrConfig { channels: 64, blocks: 8, scale: 2, method: m, seed: 7 };
        let fp = srresnet(big(Method::FullPrecision)).unwrap();
        let bin = srresnet(big(Method::scales())).unwrap();
        let cf = fp.cost(360, 640);
        let cb = bin.cost(360, 640);
        assert!(cb.effective_ops() < cf.effective_ops() / 10.0);
        assert!(cb.effective_params() < cf.effective_params() / 10.0);
    }

    #[test]
    fn super_resolve_image_roundtrip() {
        let net = srresnet(tiny(Method::E2fif, 2)).unwrap();
        let img = scales_data::Image::zeros(8, 8);
        let sr = net.super_resolve(&img).unwrap();
        assert_eq!((sr.height(), sr.width()), (16, 16));
    }
}
