//! RCAN-lite — residual channel attention network (Zhang et al. 2018) at
//! reduced scale. Blocks are conv → ReLU → conv followed by an SE-style
//! channel attention gate (kept full-precision, as in binary RCAN
//! variants), inside a residual group with its own skip.

use crate::common::{bicubic_skip, head_cost, tail_cost, ChannelAttention, Head, SrConfig, SrNetwork, Tail, CA_REDUCTION as REDUCTION};
use crate::cost::body_conv_cost;
use crate::probe::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::{BodyConv, Method};
use scales_nn::Module;
use scales_tensor::Result;

struct RcabBlock {
    conv1: BodyConv,
    conv2: BodyConv,
    ca: ChannelAttention,
    binary: bool,
}

impl RcabBlock {
    fn new(channels: usize, method: Method, rng: &mut StdRng) -> Result<Self> {
        Ok(Self {
            conv1: BodyConv::new(method, channels, channels, 3, rng)?,
            conv2: BodyConv::new(method, channels, channels, 3, rng)?,
            ca: ChannelAttention::new(channels, rng),
            binary: method.is_binary(),
        })
    }

    fn forward(&self, x: &Var, recorder: Option<&mut Recorder>) -> Result<Var> {
        if let Some(r) = recorder {
            r.record(x)?;
        }
        let y = if self.binary {
            let mid = self.conv1.forward(x)?;
            self.conv2.forward(&mid)?
        } else {
            let mid = self.conv1.forward(x)?.relu();
            self.conv2.forward(&mid)?
        };
        let gated = self.ca.forward(&y)?;
        if self.binary {
            Ok(gated) // body convs already carry identity skips
        } else {
            gated.add(x)
        }
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p.extend(self.ca.params());
        p
    }
}

/// RCAN-lite network (a single residual group of RCAB blocks).
pub struct Rcan {
    head: Head,
    blocks: Vec<RcabBlock>,
    group_end: BodyConv,
    tail: Tail,
    config: SrConfig,
}

/// Build an RCAN-lite for a configuration.
///
/// # Errors
///
/// Returns an error for invalid configurations or methods without a CNN
/// body.
pub fn rcan(config: SrConfig) -> Result<Rcan> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let c = config.channels;
    let head = Head::new(c, &mut rng);
    let mut blocks = Vec::with_capacity(config.blocks);
    for _ in 0..config.blocks {
        blocks.push(RcabBlock::new(c, config.method, &mut rng)?);
    }
    let group_end = BodyConv::new(config.method, c, c, 3, &mut rng)?;
    let tail = Tail::new(c, config.scale, &mut rng);
    Ok(Rcan { head, blocks, group_end, tail, config })
}

impl Rcan {
    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let shallow = self.head.forward(input)?;
        let mut x = shallow.clone();
        for b in &self.blocks {
            x = b.forward(&x, recorder.as_deref_mut())?;
        }
        let deep = self.group_end.forward(&x)?.add(&shallow)?;
        let out = self.tail.forward(&deep)?;
        out.add(&bicubic_skip(input, self.config.scale)?)
    }
}

impl Module for Rcan {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.head.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.group_end.params());
        p.extend(self.tail.params());
        p
    }
}

impl SrNetwork for Rcan {
    fn scale(&self) -> usize {
        self.config.scale
    }

    fn arch(&self) -> crate::Arch {
        crate::Arch::Rcan
    }

    fn lower(&self) -> Result<crate::deploy::DeployedNetwork> {
        use crate::deploy::{DeployedChannelAttention, DeployedNetworkBuilder};
        use scales_core::FloatConv2d;
        let lower_1x1 = |conv: &scales_nn::layers::Conv2d| -> Result<FloatConv2d> {
            let bias = conv.params().get(1).map(scales_autograd::Var::value);
            FloatConv2d::new(conv.weight().value(), bias, conv.spec())
        };
        let mut b = DeployedNetworkBuilder::new("RCAN", self.config.scale);
        let input = b.input();
        let shallow = b.float_conv(self.head.conv(), input)?;
        let mut x = shallow;
        for block in &self.blocks {
            let y = if block.binary {
                let mid = b.body(&block.conv1, x)?;
                b.body(&block.conv2, mid)?
            } else {
                let mid = b.body(&block.conv1, x)?;
                let mid = b.relu(mid);
                b.body(&block.conv2, mid)?
            };
            let ca = DeployedChannelAttention::new(
                lower_1x1(block.ca.down())?,
                lower_1x1(block.ca.up())?,
            );
            let gated = b.channel_attention(ca, y);
            // Binary body convs already carry identity skips.
            x = if block.binary { gated } else { b.add(gated, x) };
        }
        let end = b.body(&self.group_end, x)?;
        let deep = b.add(end, shallow);
        let tail = b.float_conv(self.tail.conv(), deep)?;
        let up = b.pixel_shuffle(self.tail.factor(), tail);
        let skip = b.bicubic_up(self.config.scale, input);
        let out = b.add(up, skip);
        Ok(b.finish(out))
    }

    fn config(&self) -> SrConfig {
        self.config
    }

    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport {
        let c = self.config.channels;
        let mut r = head_cost(c, lr_h, lr_w);
        for _ in &self.blocks {
            r.add(body_conv_cost(self.config.method, c, c, 3, lr_h, lr_w));
            r.add(body_conv_cost(self.config.method, c, c, 3, lr_h, lr_w));
            r.add(scales_binary::count::se_block_cost(c, REDUCTION, lr_h, lr_w));
        }
        r.add(body_conv_cost(self.config.method, c, c, 3, lr_h, lr_w));
        r.add(tail_cost(c, self.config.scale, lr_h, lr_w));
        r
    }

    fn clamp_alphas(&self) {
        for b in &self.blocks {
            b.conv1.clamp_alpha(1e-3);
            b.conv2.clamp_alpha(1e-3);
        }
        self.group_end.clamp_alpha(1e-3);
    }

    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::Tensor;

    #[test]
    fn rcan_forward_all_methods() {
        let x = Var::new(Tensor::from_vec(
            (0..3 * 36).map(|i| (i as f32 * 0.31).cos() * 0.4 + 0.5).collect(),
            &[1, 3, 6, 6],
        ).unwrap());
        for m in [Method::FullPrecision, Method::Btm, Method::scales()] {
            let net = rcan(SrConfig { channels: 8, blocks: 1, scale: 2, method: m, seed: 5 }).unwrap();
            assert_eq!(net.forward(&x).unwrap().shape(), vec![1, 3, 12, 12], "{m}");
        }
    }

    #[test]
    fn grads_flow() {
        let net = rcan(SrConfig { channels: 4, blocks: 1, scale: 2, method: Method::scales(), seed: 5 }).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 4, 4]));
        net.forward(&x).unwrap().sum_all().unwrap().backward().unwrap();
        assert!(net.params().iter().all(|p| p.grad().is_some()));
    }
}
