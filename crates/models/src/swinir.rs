//! SwinIR-lite and HAT-lite — the transformer SR networks of Table IV and
//! the Fig. 5 motivation study.
//!
//! Both follow the Fig. 2 skeleton with transformer basic blocks in the
//! body; HAT-lite additionally activates the channel-attention branch in
//! every block (see [`crate::transformer`]).

use crate::arch::Arch;
use crate::common::{bicubic_skip, head_cost, tail_cost, Head, SrConfig, SrNetwork, Tail};
use crate::probe::Recorder;
use crate::transformer::TransformerBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::BodyConv;
use scales_nn::Module;
use scales_tensor::Result;

/// Default attention window (inputs must be divisible by it).
pub const WINDOW: usize = 4;

/// Transformer SR network (SwinIR-lite skeleton; HAT-lite when built with
/// [`hat`]).
pub struct SwinSr {
    head: Head,
    blocks: Vec<TransformerBlock>,
    body_end: BodyConv,
    tail: Tail,
    config: SrConfig,
    arch: Arch,
}

fn build(config: SrConfig, with_cab: bool, arch: Arch) -> Result<SwinSr> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let c = config.channels;
    let head = Head::new(c, &mut rng);
    let mut blocks = Vec::with_capacity(config.blocks);
    for _ in 0..config.blocks {
        blocks.push(TransformerBlock::new(c, WINDOW, config.method, with_cab, &mut rng)?);
    }
    let body_end = BodyConv::new(config.method, c, c, 3, &mut rng)?;
    let tail = Tail::new(c, config.scale, &mut rng);
    Ok(SwinSr { head, blocks, body_end, tail, config, arch })
}

/// Build a SwinIR-lite network.
///
/// # Errors
///
/// Returns an error for invalid configurations or CNN-only methods.
pub fn swinir(config: SrConfig) -> Result<SwinSr> {
    build(config, false, Arch::SwinIr)
}

/// Build a HAT-lite network (SwinIR-lite + channel-attention branches).
///
/// # Errors
///
/// Returns an error for invalid configurations or CNN-only methods.
pub fn hat(config: SrConfig) -> Result<SwinSr> {
    build(config, true, Arch::Hat)
}

impl SwinSr {
    /// Architecture name (`"SwinIR"` or `"HAT"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.arch.name()
    }

    fn forward_impl(&self, input: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let shallow = self.head.forward(input)?;
        let mut x = shallow.clone();
        for b in &self.blocks {
            x = b.forward_features(&x, recorder.as_deref_mut())?;
        }
        let deep = self.body_end.forward(&x)?;
        let fused = deep.add(&shallow)?;
        let out = self.tail.forward(&fused)?;
        out.add(&bicubic_skip(input, self.config.scale)?)
    }
}

impl Module for SwinSr {
    fn forward(&self, input: &Var) -> Result<Var> {
        self.forward_impl(input, None)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.head.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.body_end.params());
        p.extend(self.tail.params());
        p
    }
}

impl SrNetwork for SwinSr {
    fn scale(&self) -> usize {
        self.config.scale
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn config(&self) -> SrConfig {
        self.config
    }

    fn cost(&self, lr_h: usize, lr_w: usize) -> CostReport {
        let c = self.config.channels;
        let mut r = head_cost(c, lr_h, lr_w);
        for b in &self.blocks {
            r.add(b.cost(self.config.method, lr_h, lr_w));
        }
        r.add(crate::cost::body_conv_cost(self.config.method, c, c, 3, lr_h, lr_w));
        r.add(tail_cost(c, self.config.scale, lr_h, lr_w));
        r
    }

    fn clamp_alphas(&self) {
        for b in &self.blocks {
            b.clamp_alphas();
        }
        self.body_end.clamp_alpha(1e-3);
    }

    fn forward_recorded(&self, input: &Var, recorder: &mut Recorder) -> Result<Var> {
        self.forward_impl(input, Some(recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_tensor::Tensor;

    fn tiny(method: Method, scale: usize) -> SrConfig {
        SrConfig { channels: 8, blocks: 1, scale, method, seed: 11 }
    }

    #[test]
    fn swinir_forward_all_methods() {
        let x = Var::new(Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32 * 0.23).sin() * 0.4 + 0.5).collect(),
            &[1, 3, 8, 8],
        ).unwrap());
        for m in [Method::FullPrecision, Method::Bibert, Method::scales()] {
            let net = swinir(tiny(m, 2)).unwrap();
            assert_eq!(net.forward(&x).unwrap().shape(), vec![1, 3, 16, 16], "{m}");
        }
    }

    #[test]
    fn hat_forward_and_extra_params() {
        let s = swinir(tiny(Method::scales(), 2)).unwrap();
        let h = hat(tiny(Method::scales(), 2)).unwrap();
        assert!(h.param_count() > s.param_count(), "CAB adds parameters");
        let x = Var::new(Tensor::ones(&[1, 3, 8, 8]));
        assert_eq!(h.forward(&x).unwrap().shape(), vec![1, 3, 16, 16]);
    }

    #[test]
    fn recorder_counts_match_structure() {
        let net = swinir(tiny(Method::Bibert, 2)).unwrap();
        let x = Var::new(Tensor::ones(&[1, 3, 8, 8]));
        let mut rec = Recorder::new();
        net.forward_recorded(&x, &mut rec).unwrap();
        assert_eq!(rec.len(), 5); // 1 block × 5 recorded activations
    }

    #[test]
    fn cost_binary_far_below_fp() {
        // Paper-scale config: body linears dominate and the Table IV
        // parameter/ops reductions (~10×) appear.
        let big = |m| SrConfig { channels: 60, blocks: 8, scale: 2, method: m, seed: 11 };
        let fp = swinir(big(Method::FullPrecision)).unwrap();
        let bi = swinir(big(Method::Bibert)).unwrap();
        assert!(bi.cost(320, 320).effective_ops() < fp.cost(320, 320).effective_ops() / 5.0);
        assert!(bi.cost(320, 320).effective_params() < fp.cost(320, 320).effective_params() / 5.0);
    }

    #[test]
    fn grads_flow_end_to_end() {
        let net = hat(tiny(Method::scales(), 2)).unwrap();
        let x = Var::new(Tensor::from_vec(
            (0..3 * 64).map(|i| (i as f32 * 0.7).cos() * 0.3 + 0.5).collect(),
            &[1, 3, 8, 8],
        ).unwrap());
        net.forward(&x).unwrap().sum_all().unwrap().backward().unwrap();
        assert!(net.params().iter().all(|p| p.grad().is_some()));
    }
}
