//! The architecture registry: every SR network of the zoo, addressable by
//! a stable name.
//!
//! This is the factory the persistence layer (`scales-io`) rebuilds
//! checkpoints through: a saved model records its [`Arch::name`] plus its
//! [`SrConfig`](crate::SrConfig), and loading is `Arch::from_name` →
//! [`Arch::build`] → overwrite parameters. The experiment harness in
//! `scales-train` re-exports this enum (it lived there before the
//! registry moved down so `scales-io` could use it without a cycle).

use crate::common::{SrConfig, SrNetwork};
use crate::{edsr, hat, rcan, rdn, srresnet, swinir};
use scales_tensor::Result;

/// Architectures of the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// SRResNet (Table III).
    SrResNet,
    /// EDSR (motivation study).
    Edsr,
    /// RDN-lite.
    Rdn,
    /// RCAN-lite.
    Rcan,
    /// SwinIR-lite (Table IV).
    SwinIr,
    /// HAT-lite (Table IV).
    Hat,
}

impl Arch {
    /// Every architecture, in zoo order (CNN family first).
    pub const ALL: [Arch; 6] =
        [Arch::SrResNet, Arch::Edsr, Arch::Rdn, Arch::Rcan, Arch::SwinIr, Arch::Hat];

    /// The CNN family — every architecture with a deployment lowering.
    pub const CNN: [Arch; 4] = [Arch::SrResNet, Arch::Edsr, Arch::Rdn, Arch::Rcan];

    /// Display name, also the stable identifier persisted by `scales-io`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Arch::SrResNet => "SRResNet",
            Arch::Edsr => "EDSR",
            Arch::Rdn => "RDN",
            Arch::Rcan => "RCAN",
            Arch::SwinIr => "SwinIR",
            Arch::Hat => "HAT",
        }
    }

    /// Resolve a persisted [`Arch::name`] back to the architecture.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Arch> {
        Arch::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Build the architecture for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (e.g. CNN-only method on a
    /// transformer).
    pub fn build(&self, config: SrConfig) -> Result<Box<dyn SrNetwork>> {
        Ok(match self {
            Arch::SrResNet => Box::new(srresnet(config)?),
            Arch::Edsr => Box::new(edsr(config)?),
            Arch::Rdn => Box::new(rdn(config)?),
            Arch::Rcan => Box::new(rcan(config)?),
            Arch::SwinIr => Box::new(swinir(config)?),
            Arch::Hat => Box::new(hat(config)?),
        })
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;

    #[test]
    fn names_round_trip_through_the_registry() {
        for arch in Arch::ALL {
            assert_eq!(Arch::from_name(arch.name()), Some(arch));
        }
        assert_eq!(Arch::from_name("VDSR"), None);
    }

    #[test]
    fn built_networks_report_their_arch() {
        let config = SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::FullPrecision, seed: 3 };
        for arch in Arch::ALL {
            let net = arch.build(config).unwrap();
            assert_eq!(net.arch(), arch, "{arch}");
            assert_eq!(net.config(), config, "{arch}");
        }
    }
}
