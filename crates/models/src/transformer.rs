//! The shared Swin-style transformer block used by SwinIR-lite and
//! HAT-lite (paper Fig. 2, right).
//!
//! Per block: window-partition the feature map into `ws×ws` token groups,
//! run pre-LN window self-attention and a pre-LN MLP (both with
//! method-parameterised linears), merge the windows back, and finish with a
//! 3×3 body convolution. HAT-lite additionally gates the conv output with a
//! full-precision channel-attention branch (its CAB), which is the
//! architectural delta the HAT paper adds over SwinIR.
//!
//! LayerNorm and softmax stay full precision, as in every published binary
//! transformer. Attention here is single-head: at lite widths (≤ 32
//! channels) multiple heads only shrink the per-head dimension without
//! changing the binarization behaviour being studied.

use crate::common::ChannelAttention;
use crate::cost::{body_conv_cost, body_linear_cost};
use crate::probe::Recorder;
use rand::rngs::StdRng;
use scales_autograd::Var;
use scales_binary::CostReport;
use scales_core::{BodyConv, BodyLinear, Method};
use scales_nn::layers::LayerNorm;
use scales_nn::Module;
use scales_tensor::{Result, TensorError};

/// MLP expansion ratio (SwinIR uses 2 for its lightweight variant).
pub const MLP_RATIO: usize = 2;

/// One Swin-style transformer block operating on NCHW features.
pub struct TransformerBlock {
    ln1: LayerNorm,
    q: BodyLinear,
    k: BodyLinear,
    v: BodyLinear,
    proj: BodyLinear,
    ln2: LayerNorm,
    mlp1: BodyLinear,
    mlp2: BodyLinear,
    conv: BodyConv,
    cab: Option<ChannelAttention>,
    channels: usize,
    window: usize,
}

impl TransformerBlock {
    /// Build a block; `with_cab` enables the HAT-style channel-attention
    /// branch.
    ///
    /// # Errors
    ///
    /// Returns an error for methods that cannot build transformer layers.
    pub fn new(
        channels: usize,
        window: usize,
        method: Method,
        with_cab: bool,
        rng: &mut StdRng,
    ) -> Result<Self> {
        Ok(Self {
            ln1: LayerNorm::new(channels),
            q: BodyLinear::new(method, channels, channels, rng)?,
            k: BodyLinear::new(method, channels, channels, rng)?,
            v: BodyLinear::new(method, channels, channels, rng)?,
            proj: BodyLinear::new(method, channels, channels, rng)?,
            ln2: LayerNorm::new(channels),
            mlp1: BodyLinear::new(method, channels, channels * MLP_RATIO, rng)?,
            mlp2: BodyLinear::new(method, channels * MLP_RATIO, channels, rng)?,
            conv: BodyConv::new(method, channels, channels, 3, rng)?,
            cab: with_cab.then(|| ChannelAttention::new(channels, rng)),
            channels,
            window,
        })
    }

    /// Window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    fn attention(&self, tokens: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let normed = self.ln1.forward(tokens)?;
        if let Some(r) = recorder.as_deref_mut() {
            r.record_tokens(&normed)?; // input of the q/k/v linears (Fig. 5c, layer 1)
        }
        let q = self.q.forward(&normed)?;
        let k = self.k.forward(&normed)?;
        let v = self.v.forward(&normed)?;
        let scale = 1.0 / (self.channels as f32).sqrt();
        let scores = q.batched_matmul(&k.permute(&[0, 2, 1])?)?.scale(scale);
        let attn = scores.softmax_last_axis()?;
        let ctx = attn.batched_matmul(&v)?;
        if let Some(r) = recorder {
            r.record_tokens(&ctx)?; // input of the projection linear (layer 2)
        }
        let projected = self.proj.forward(&ctx)?;
        tokens.add(&projected)
    }

    fn mlp(&self, tokens: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let normed = self.ln2.forward(tokens)?;
        if let Some(r) = recorder.as_deref_mut() {
            r.record_tokens(&normed)?; // input of mlp1 (layer 3)
        }
        let mid = self.mlp1.forward(&normed)?.gelu();
        if let Some(r) = recorder {
            r.record_tokens(&mid)?; // input of mlp2 (layer 4)
        }
        let out = self.mlp2.forward(&mid)?;
        tokens.add(&out)
    }

    /// Run the block on NCHW features.
    ///
    /// # Errors
    ///
    /// Returns an error when the spatial extents are not divisible by the
    /// window size.
    pub fn forward_features(&self, x: &Var, mut recorder: Option<&mut Recorder>) -> Result<Var> {
        let s = x.shape();
        if s.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: s.len(), op: "transformer block" });
        }
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let tokens = x.window_partition(self.window)?;
        let t = self.attention(&tokens, recorder.as_deref_mut())?;
        let t = self.mlp(&t, recorder.as_deref_mut())?;
        let merged = t.window_merge(n, c, h, w, self.window)?;
        if let Some(r) = recorder {
            r.record(&merged)?; // input of the block-end conv (Fig. 5d)
        }
        let mut y = self.conv.forward(&merged)?;
        if let Some(cab) = &self.cab {
            y = y.add(&cab.forward(&merged)?.scale(0.1))?;
        }
        y.add(x)
    }

    /// Trainable parameters.
    #[must_use]
    pub fn params(&self) -> Vec<Var> {
        let mut p = self.ln1.params();
        for l in [&self.q, &self.k, &self.v, &self.proj, &self.mlp1, &self.mlp2] {
            p.extend(l.params());
        }
        p.extend(self.ln2.params());
        p.extend(self.conv.params());
        if let Some(cab) = &self.cab {
            p.extend(cab.params());
        }
        p
    }

    /// Clamp LSF scales after optimizer steps.
    pub fn clamp_alphas(&self) {
        for l in [&self.q, &self.k, &self.v, &self.proj, &self.mlp1, &self.mlp2] {
            l.clamp_alpha(1e-3);
        }
        self.conv.clamp_alpha(1e-3);
    }

    /// Paper-convention cost of one block at spatial size `h×w` under
    /// `method`.
    #[must_use]
    pub fn cost(&self, method: Method, h: usize, w: usize) -> CostReport {
        let tokens = h * w;
        let c = self.channels;
        let mut r = CostReport::new();
        for _ in 0..4 {
            r.add(body_linear_cost(method, c, c, tokens));
        }
        r.add(body_linear_cost(method, c, c * MLP_RATIO, tokens));
        r.add(body_linear_cost(method, c * MLP_RATIO, c, tokens));
        // Attention score/context matmuls stay FP (softmax path):
        // 2 · tokens · window² · C MACs.
        let ws2 = (self.window * self.window) as u64;
        r.add(CostReport {
            fp_params: 4 * c as u64, // two LayerNorms
            bin_params: 0,
            fp_ops: 2 * tokens as u64 * ws2 * c as u64 + 6 * tokens as u64 * c as u64,
            bin_ops: 0,
        });
        r.add(body_conv_cost(method, c, c, 3, h, w));
        if self.cab.is_some() {
            r.add(scales_binary::count::se_block_cost(c, crate::common::CA_REDUCTION, h, w));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scales_tensor::Tensor;

    fn block(method: Method, cab: bool) -> TransformerBlock {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        TransformerBlock::new(8, 4, method, cab, &mut rng).unwrap()
    }

    #[test]
    fn block_preserves_shape_all_methods() {
        let x = Var::new(Tensor::from_vec(
            (0..8 * 64).map(|i| (i as f32 * 0.17).sin()).collect(),
            &[1, 8, 8, 8],
        ).unwrap());
        for m in [Method::FullPrecision, Method::Bibert, Method::scales()] {
            let b = block(m, false);
            assert_eq!(b.forward_features(&x, None).unwrap().shape(), vec![1, 8, 8, 8], "{m}");
        }
    }

    #[test]
    fn cab_changes_output() {
        let x = Var::new(Tensor::from_vec(
            (0..8 * 64).map(|i| (i as f32 * 0.17).sin()).collect(),
            &[1, 8, 8, 8],
        ).unwrap());
        let plain = block(Method::FullPrecision, false);
        let hat = block(Method::FullPrecision, true);
        let y1 = plain.forward_features(&x, None).unwrap().value();
        let y2 = hat.forward_features(&x, None).unwrap().value();
        assert_ne!(y1.data(), y2.data());
    }

    #[test]
    fn recorder_captures_five_activations_per_block() {
        let b = block(Method::scales(), false);
        let x = Var::new(Tensor::ones(&[1, 8, 4, 4]));
        let mut rec = Recorder::new();
        b.forward_features(&x, Some(&mut rec)).unwrap();
        // qkv-in, proj-in, mlp1-in, mlp2-in, conv-in.
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn window_divisibility_enforced() {
        let b = block(Method::FullPrecision, false);
        let x = Var::new(Tensor::ones(&[1, 8, 6, 6])); // 6 % 4 != 0
        assert!(b.forward_features(&x, None).is_err());
    }

    #[test]
    fn grads_flow_through_attention() {
        let b = block(Method::scales(), true);
        let x = Var::new(Tensor::from_vec(
            (0..8 * 16).map(|i| (i as f32 * 0.29).cos()).collect(),
            &[1, 8, 4, 4],
        ).unwrap());
        let y = b.forward_features(&x, None).unwrap().sum_all().unwrap();
        y.backward().unwrap();
        let missing = b.params().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0);
    }
}
